"""Soak test: a multi-day simulated run must stay leak-free and sane.

Long-running discrete-event services accumulate subtle leaks — flows never
released, admission slots held, pending advertisements stranded, event
heaps growing without bound.  This test drives the full service through
two simulated days of mixed workload (diurnal background, regional Zipf
requests, a flash crowd, a link flap and a mid-run expansion) and asserts
global conservation at the end.
"""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario, regional_scenario
from repro.workload.traces import DiurnalTrafficShaper

NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


@pytest.fixture(scope="module")
def soaked_service():
    sim = Simulator()
    topology = build_grnet_topology()
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=100.0,
            disk_count=3,
            disk_capacity_mb=400.0,
            max_streams=128,
            snmp_period_s=120.0,
            use_reported_stats=True,
        ),
    )
    catalog = [
        VideoTitle(f"t{i:02d}", size_mb=150.0, duration_s=3600.0) for i in range(12)
    ]
    for index, title in enumerate(catalog):
        service.seed_title(NODES[index % len(NODES)], title)

    DiurnalTrafficShaper(
        sim, topology, base_fraction=0.05, peak_fraction=0.5, update_period_s=300.0
    ).start()
    service.start()

    # Two days of regional requests.
    scenario = regional_scenario(
        NODES,
        requests_per_node=25,
        horizon_s=2 * 86_400.0,
        zipf_exponent=0.9,
        seed=99,
        catalog=catalog,
    )
    for event in scenario.events:
        sim.schedule_at(
            event.time_s,
            lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
        )

    # A flash crowd in the evening of day 1.
    crowd = flash_crowd_scenario(
        "U5", catalog[0], viewer_count=15, start_s=20 * 3600.0, ramp_s=7_200.0
    )
    for event in crowd.events:
        sim.schedule_at(
            event.time_s,
            lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
        )

    # A link flaps for an hour on day 2.
    def flap_down():
        topology.link_named("Thessaloniki-Athens").online = False

    def flap_up():
        topology.link_named("Thessaloniki-Athens").online = True

    sim.schedule_at(30 * 3600.0, flap_down)
    sim.schedule_at(31 * 3600.0, flap_up)

    # A new node joins halfway.
    def expand():
        service.add_server(
            Node("U7", name="Kalamata"),
            [Link("U7", "U2", capacity_mbps=4.0, name="Kalamata-Patra")],
        )

    sim.schedule_at(86_400.0, expand)

    sim.run(until=2 * 86_400.0 + 12 * 3600.0)  # two days + drain
    return service


class TestSoak:
    def test_every_session_reached_a_terminal_state(self, soaked_service):
        unfinished = [
            r for r in soaked_service.sessions if not r.request.finished
        ]
        assert unfinished == []

    def test_overwhelming_majority_completed(self, soaked_service):
        records = soaked_service.sessions
        completed = sum(1 for r in records if r.completed)
        assert len(records) > 200
        assert completed / len(records) > 0.95

    def test_no_leaked_flow_reservations(self, soaked_service):
        assert soaked_service.flows.active_count == 0
        for link in soaked_service.topology.links():
            assert link.reserved_mbps == 0.0

    def test_no_leaked_admission_slots(self, soaked_service):
        for server in soaked_service.servers.values():
            assert server.admission.active_count == 0

    def test_no_stranded_pending_advertisements(self, soaked_service):
        for server in soaked_service.servers.values():
            assert server.pending_title_ids() == []

    def test_catalog_consistency(self, soaked_service):
        # Every advertised (server, title) pair is backed by resident bytes
        # and vice versa.
        database = soaked_service.database
        for uid, server in soaked_service.servers.items():
            advertised = database.server_title_ids(uid)
            resident = set(server.array.stored_title_ids())
            assert advertised == resident, uid

    def test_no_title_lost_from_the_network(self, soaked_service):
        # Seed pinning guarantees at least one copy of everything.
        for title in soaked_service.database.list_titles():
            assert soaked_service.database.servers_with_title(title.title_id), (
                title.title_id
            )

    def test_snmp_kept_reporting_through_the_whole_run(self, soaked_service):
        horizon = soaked_service.sim.now
        for entry in soaked_service.database.link_entries():
            assert entry.latest_stats is not None, entry.link_name
            assert entry.latest_stats.timestamp > horizon - 300.0, entry.link_name

    def test_event_heap_drained(self, soaked_service):
        # Only the periodic tasks (SNMP + shaper) may remain armed.
        assert soaked_service.sim.pending_count <= 4

    def test_expansion_node_active(self, soaked_service):
        assert "U7" in soaked_service.servers
        assert soaked_service.database.link_entry("Kalamata-Patra").latest_stats is not None
