"""Integration tests for runtime dynamics: link failures and network
expansion while the service runs."""

import pytest

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**overrides):
    defaults = dict(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=2_000.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(overrides)
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def movie(title_id="m1", size_mb=400.0, duration_s=3600.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=duration_s)


class TestLinkFailure:
    def test_routing_avoids_failed_link(self, grnet_8am):
        from repro.core.vra import VirtualRoutingAlgorithm

        # Corrected Experiment A picks U2,U3,U4; fail Patra-Ioannina and
        # the VRA must fall back to the Athens route.
        grnet_8am.link_named("Patra-Ioannina").online = False
        decision = VirtualRoutingAlgorithm(grnet_8am).decide(
            "U2", "m", holders=["U4"]
        )
        assert decision.path.nodes == ("U2", "U1", "U4")

    def test_partitioned_holder_unreachable(self, grnet_8am):
        from repro.core.vra import VirtualRoutingAlgorithm
        from repro.errors import RoutingError

        # Cut both of Xanthi's links: U5 is unreachable.
        grnet_8am.link_named("Thessaloniki-Xanthi").online = False
        grnet_8am.link_named("Xanthi-Heraklio").online = False
        with pytest.raises(RoutingError):
            VirtualRoutingAlgorithm(grnet_8am).decide("U2", "m", holders=["U5"])

    def test_session_reroutes_after_link_failure(self):
        service = make_service()
        service.seed_title("U4", movie())
        _, session, _ = service.request_by_home("U2", "m1")

        def cut_route():
            service.topology.link_named("Patra-Ioannina").online = False

        service.sim.schedule(1000.0, cut_route)
        service.sim.run(until=service.sim.now + 4 * 3600.0)
        record = session.record
        assert record.completed
        routes = {c.path_nodes for c in record.clusters}
        assert ("U2", "U3", "U4") in routes  # before the cut
        assert ("U2", "U1", "U4") in routes  # after the cut

    def test_failed_link_excluded_from_node_validation(self, grnet_8am):
        from repro.core.lvn import node_validation

        before = node_validation(grnet_8am, "U1")
        # Fail the hot Thessaloniki-Athens link; Athens' NV must now be
        # computed over its two surviving links only.
        grnet_8am.link_named("Thessaloniki-Athens").online = False
        after = node_validation(grnet_8am, "U1")
        expected = (0.2 + 0.5) / (2.0 + 18.0)
        assert after == pytest.approx(expected)
        assert after != pytest.approx(before)

    def test_fully_isolated_node_validation_is_zero(self, grnet_8am):
        from repro.core.lvn import node_validation

        grnet_8am.link_named("Thessaloniki-Xanthi").online = False
        grnet_8am.link_named("Xanthi-Heraklio").online = False
        assert node_validation(grnet_8am, "U5") == 0.0

    def test_link_recovery_restores_routes(self, grnet_8am):
        from repro.core.vra import VirtualRoutingAlgorithm

        link = grnet_8am.link_named("Patra-Ioannina")
        link.online = False
        vra = VirtualRoutingAlgorithm(grnet_8am)
        assert vra.decide("U2", "m", holders=["U4"]).path.nodes == ("U2", "U1", "U4")
        link.online = True
        assert vra.decide("U2", "m", holders=["U4"]).path.nodes == ("U2", "U3", "U4")


class TestRuntimeExpansion:
    def test_new_server_joins_and_serves(self):
        service = make_service()
        service.start()
        service.sim.run(until=service.sim.now + 100.0)

        # Kalamata joins, hanging off Patra.
        server = service.add_server(
            Node("U7", name="Kalamata"),
            [Link("U7", "U2", capacity_mbps=2.0, name="Kalamata-Patra")],
        )
        service.seed_title("U7", movie())
        request, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 3 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.servers_used == ["U7"]
        # One admission per cluster served.
        assert server.serve_count == len(session.record.clusters)

    def test_new_node_gets_snmp_coverage(self):
        service = make_service(use_reported_stats=True)
        service.start()
        service.sim.run(until=service.sim.now + 100.0)
        service.add_server(
            Node("U7"), [Link("U7", "U2", capacity_mbps=2.0, name="New-Link")]
        )
        service.topology.link_named("New-Link").set_background_mbps(1.0)
        service.sim.run(until=service.sim.now + 200.0)
        entry = service.database.link_entry("New-Link")
        assert entry.latest_stats is not None
        assert entry.used_mbps == pytest.approx(1.0, rel=0.05)

    def test_new_node_participates_in_routing(self):
        service = make_service()
        # U7 bridges Patra and Xanthi with fat idle links: the VRA should
        # route U2 -> U5 through it.
        service.add_server(
            Node("U7"),
            [
                Link("U7", "U2", capacity_mbps=20.0, name="U2-U7"),
                Link("U7", "U5", capacity_mbps=20.0, name="U5-U7"),
            ],
        )
        service.seed_title("U5", movie())
        decision = service.decide("U2", "m1")
        assert decision.path.nodes == ("U2", "U7", "U5")

    def test_expansion_validation(self):
        service = make_service()
        from repro.errors import ServiceError, TopologyError

        with pytest.raises(ServiceError):
            service.add_server(Node("U8"), [])
        with pytest.raises(ServiceError):
            service.add_server(
                Node("U8"), [Link("U1", "U2", capacity_mbps=1.0, name="elsewhere")]
            )
        with pytest.raises(TopologyError):
            service.add_server(
                Node("U1"), [Link("U1", "U2", capacity_mbps=1.0, name="dup-node")]
            )

    def test_existing_agent_tracks_new_interface(self):
        # The SNMP agent at the *existing* endpoint must pick up the new
        # link without being rebuilt.
        service = make_service(use_reported_stats=True)
        service.start()
        service.sim.run(until=service.sim.now + 70.0)  # agents already polled
        service.add_server(
            Node("U7"), [Link("U7", "U2", capacity_mbps=2.0, name="Fresh")]
        )
        service.topology.link_named("Fresh").set_background_mbps(0.5)
        service.sim.run(until=service.sim.now + 200.0)
        assert service.database.link_entry("Fresh").used_mbps == pytest.approx(
            0.5, rel=0.1
        )
