"""Integration tests: the full service across several subsystems."""

import pytest

from repro.client.client import Client
from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(sim_start=8 * 3600.0, **config_overrides):
    config_defaults = dict(
        cluster_mb=50.0,
        disk_count=4,
        disk_capacity_mb=2_000.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    config_defaults.update(config_overrides)
    sim = Simulator(start_time=sim_start)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(sim, topology, ServiceConfig(**config_defaults))
    return service


def movie(title_id="m1", size_mb=400.0, duration_s=3600.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=duration_s)


class TestFullRequestCycle:
    def test_client_to_completion_through_all_layers(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.attach_access_network("10.2.0", "U2")
        client = Client("alice", "10.2.0.42")
        service.register_client(client)
        service.start()

        request, session, process = service.submit(client, "m1")
        service.sim.run(until=service.sim.now + 3 * 3600.0)

        assert request.status is RequestStatus.COMPLETED
        record = session.record
        assert record.servers_used == ["U4"]
        assert record.startup_delay_s > 0.0
        # All 8 clusters crossed the U2,U3,U4 route chosen by the VRA at
        # 8am (corrected Experiment A geometry).
        assert all(c.path_nodes == ("U2", "U3", "U4") for c in record.clusters)

    def test_caching_chain_spreads_copies(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.start()
        service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 3 * 3600.0)
        assert service.database.servers_with_title("m1") == ["U2", "U4"]
        # A request at U3 now picks the closer copy at U2.
        _, session, _ = service.request_by_home("U3", "m1")
        service.sim.run(until=service.sim.now + 3 * 3600.0)
        assert session.record.servers_used == ["U2"]

    def test_concurrent_sessions_share_links(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.seed_title("U4", movie("m2"))
        service.start()
        r1, s1, _ = service.request_by_home("U2", "m1")
        r2, s2, _ = service.request_by_home("U1", "m2")
        service.sim.run(until=service.sim.now + 4 * 3600.0)
        assert r1.status is RequestStatus.COMPLETED
        assert r2.status is RequestStatus.COMPLETED
        assert service.flows.active_count == 0  # all reservations released

    def test_popularity_counts_accumulate_per_home_server(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.start()
        for _ in range(3):
            service.request_by_home("U2", "m1")
            service.sim.run(until=service.sim.now + 3 * 3600.0)
        # First request STOREs at U2 (no point, Figure 2 quirk); the next
        # two are HITs awarding points.
        assert service.servers["U2"].dma.points_of("m1") == 2
        assert service.servers["U4"].dma.points_of("m1") == 0


class TestReportedStatsPath:
    def test_vra_follows_snmp_view_not_ground_truth(self):
        service = make_service(use_reported_stats=True)
        service.seed_title("U1", movie())
        service.seed_title("U4", movie())
        service.start()
        # Before the first SNMP window closes the database says "all idle":
        # every path costs 0 and the tie breaks lexicographically to U1,
        # even though ground truth has traffic on the U5-U6-U1 route.
        decision = service.decide("U5", "m1")
        assert decision.cost == 0.0
        assert decision.chosen_uid == "U1"
        # After the SNMP modules report the 8am sample, the one-hop
        # Thessaloniki-Xanthi route (LVN ~0.168) beats the two-hop route
        # to Athens (~0.233): the informed VRA flips to U4.
        service.sim.run(until=service.sim.now + 150.0)
        decision = service.decide("U5", "m1")
        assert decision.cost > 0.0
        assert decision.chosen_uid == "U4"

    def test_stale_stats_lag_traffic_changes(self):
        service = make_service(use_reported_stats=True, snmp_period_s=300.0)
        service.start()
        service.sim.run(until=service.sim.now + 650.0)
        baseline = service.vra.weights()["Patra-Athens"]
        # Slam the link; the DB view must not change until the next poll.
        service.topology.link_named("Patra-Athens").set_background_mbps(2.0)
        service.sim.run(until=service.sim.now + 100.0)
        assert service.vra.weights()["Patra-Athens"] == pytest.approx(baseline)
        service.sim.run(until=service.sim.now + 300.0)
        assert service.vra.weights()["Patra-Athens"] > baseline


class TestDynamicSwitching:
    def test_session_switches_when_better_source_appears(self):
        # Start a long session from U4 to U2; mid-way, seed the title at
        # U1 and melt the congestion toward it: per-cluster re-decision
        # must switch sources.
        service = make_service()
        big = movie("big", size_mb=1000.0, duration_s=7200.0)
        service.seed_title("U4", big)
        service.start()
        topology = service.topology

        # Make the U2-U3-U4 route initially attractive, then poison it.
        _, session, _ = service.request_by_home("U2", "big")

        def poison_and_seed():
            topology.link_named("Patra-Ioannina").set_background_mbps(1.9)
            topology.link_named("Thessaloniki-Ioannina").set_background_mbps(1.9)
            service.servers["U1"].seed_title(big)

        service.sim.schedule(1800.0, poison_and_seed)
        service.sim.run(until=service.sim.now + 6 * 3600.0)
        record = session.record
        assert record.completed
        assert record.switch_count >= 1
        assert set(record.servers_used) == {"U4", "U1"}
