"""Compiled routing core changes no decision — full-service equivalence.

``ServiceConfig.compiled_routing`` swaps the VRA's weight/Dijkstra kernels
for the array-compiled :class:`~repro.network.compiled.TopologySnapshot`.
The contract is *bit-for-bit* service-level equivalence: the same scenario
run compiled and pure-python must produce identical VRA decisions (server,
path, cost), identical per-cluster delivery records, and identical session
outcomes — across a flash crowd, a link-churn storm, and a seeded chaos
run with fault injection.
"""

import pytest

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, build_service
from repro.experiments.resilience import run_resilience_experiment
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario, regional_scenario

SPECIAL = VideoTitle("special", size_mb=200.0, duration_s=1_200.0)
GRNET_UIDS = ["U1", "U2", "U3", "U4", "U5", "U6"]


def capture_decisions(service, sink):
    def wrap(decide):
        def wrapped():
            decision = decide()
            sink.append(
                (
                    decision.home_uid,
                    decision.title_id,
                    decision.chosen_uid,
                    decision.path.nodes,
                    repr(decision.cost),
                )
            )
            return decision

        return wrapped

    service.decide_wrapper = wrap


def session_fingerprint(service):
    return [
        (
            record.request.client_id,
            record.request.title_id,
            record.request.status.value,
            record.retry_count,
            record.recovered,
            tuple(record.servers_used),
            [(c.index, c.server_uid, c.path_nodes) for c in record.clusters],
        )
        for record in service.sessions
    ]


def run_scenario(scenario, compiled, churn=None, run_until=5 * 3600.0,
                 disk_count=2, disk_capacity_mb=1_000.0):
    experiment = ServiceExperiment(
        name=f"compiled-{compiled}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=50.0,
            disk_count=disk_count,
            disk_capacity_mb=disk_capacity_mb,
            max_streams=64,
            use_reported_stats=True,
            compiled_routing=compiled,
        ),
        seed_origin_uids=["U4"],
        run_until=run_until,
    )
    service = build_service(experiment)
    decisions = []
    capture_decisions(service, decisions)
    service.start()
    service.sim.schedule_many(
        (
            (
                event.time_s,
                lambda e=event: service.request_by_home(
                    e.home_uid, e.title_id, e.client_id
                ),
                (),
                f"request:{event.client_id}",
            )
            for event in scenario.events
        ),
        absolute=True,
    )
    if churn is not None:
        churn(service)
    service.sim.run(until=run_until)
    return decisions, session_fingerprint(service)


def test_flash_crowd_bit_identical():
    def scenario():
        return flash_crowd_scenario(
            "U2", SPECIAL, viewer_count=12, start_s=300.0, ramp_s=1_800.0
        )

    fast = run_scenario(scenario(), compiled=True)
    plain = run_scenario(scenario(), compiled=False)
    assert fast == plain
    assert len(fast[0]) > 0
    assert all(clusters for *_, clusters in fast[1])


def test_link_churn_bit_identical():
    """Regional load with a deterministic link-flap/traffic storm mid-run:
    snapshot refreshes (online-mask and traffic) must track every flip."""

    def scenario():
        return regional_scenario(
            GRNET_UIDS, requests_per_node=3, horizon_s=3_600.0, seed=23
        )

    def churn(service):
        topo = service.topology
        link_names = [link.name for link in topo.links()]

        def flap(name):
            link = topo.link_named(name)
            link.online = not link.online

        def load(name, mbps):
            topo.link_named(name).set_background_mbps(mbps)

        entries = []
        for i, name in enumerate(link_names):
            entries.append((600.0 + 120.0 * i, flap, (name,), f"fail:{name}"))
            entries.append((900.0 + 120.0 * i, flap, (name,), f"heal:{name}"))
            entries.append((1_000.0 + 60.0 * i, load, (name, 2.0 + 0.5 * i), f"load:{name}"))
        service.sim.schedule_many(entries, absolute=True)

    fast = run_scenario(
        scenario(), compiled=True, churn=churn, disk_count=4, disk_capacity_mb=24_000.0
    )
    plain = run_scenario(
        scenario(), compiled=False, churn=churn, disk_count=4, disk_capacity_mb=24_000.0
    )
    assert fast == plain
    assert len(fast[0]) > 0


@pytest.mark.parametrize("seed", [13, 29])
def test_chaos_run_bit_identical(seed):
    """Seeded fault storm (crashes, flaps, degrades, SNMP blackouts):
    compiled and python runs must agree on every session and the report."""

    def config(compiled):
        return ServiceConfig(
            retry_attempts=5,
            retry_backoff_s=20.0,
            compiled_routing=compiled,
        )

    kwargs = dict(
        seed=seed,
        duration_s=1_800.0,
        requests_per_node=3,
        link_flap_rate_per_h=6.0,
        link_degrade_rate_per_h=6.0,
        server_crash_rate_per_h=4.0,
        disk_failure_rate_per_h=2.0,
        snmp_blackout_rate_per_h=2.0,
        mean_fault_duration_s=180.0,
    )
    fast = run_resilience_experiment(config=config(True), **kwargs)
    plain = run_resilience_experiment(config=config(False), **kwargs)
    assert fast.report == plain.report
    assert fast.injector.log == plain.injector.log
    assert session_fingerprint(fast.service) == session_fingerprint(plain.service)
