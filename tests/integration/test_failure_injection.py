"""Integration tests: failures, saturation, and the DMA last-copy hazard."""

import pytest

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.errors import RoutingError, TitleUnavailableError
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**config_overrides):
    defaults = dict(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=1_000.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(config_overrides)
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def movie(title_id="m1", size_mb=400.0, duration_s=3600.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=duration_s)


class TestServerFailure:
    def test_offline_source_excluded_from_decisions(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.seed_title("U5", movie())
        service.servers["U4"].online = False
        decision = service.decide("U2", "m1")
        assert decision.chosen_uid == "U5"

    def test_all_sources_offline_raises(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.servers["U4"].online = False
        with pytest.raises(RoutingError):
            service.decide("U2", "m1")

    def test_source_dies_mid_session(self):
        service = make_service()
        service.seed_title("U4", movie())
        request, session, process = service.request_by_home("U2", "m1")

        def kill_u4():
            service.servers["U4"].online = False

        service.sim.schedule(1000.0, kill_u4)
        service.sim.run(until=service.sim.now + 4 * 3600.0)
        assert request.status is RequestStatus.FAILED
        assert len(session.record.clusters) >= 1  # partial delivery recorded
        assert service.flows.active_count == 0  # no leaked reservations
        # The partially cached copy at U2 was aborted, not advertised.
        assert service.database.servers_with_title("m1") == ["U4"]
        assert not service.servers["U2"].array.has_video("m1")

    def test_failover_to_surviving_replica_mid_session(self):
        service = make_service()
        service.seed_title("U4", movie())
        service.seed_title("U5", movie())
        request, session, _ = service.request_by_home("U2", "m1")

        def kill_primary():
            # Kill whichever server the session is currently using.
            current = session.record.clusters[-1].server_uid if session.record.clusters else "U4"
            service.servers[current].online = False

        service.sim.schedule(1000.0, kill_primary)
        service.sim.run(until=service.sim.now + 4 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert len(set(session.record.servers_used)) == 2


class TestUnavailableTitles:
    def test_title_nowhere_raises_title_unavailable(self):
        service = make_service()
        service.database.register_title(
            __import__("repro.database.records", fromlist=["TitleInfo"]).TitleInfo(
                "ghost", "Ghost", 100.0, 600.0
            )
        )
        with pytest.raises(TitleUnavailableError):
            service.decide("U2", "ghost")

    def test_dma_can_evict_last_network_copy(self):
        # The Figure 2 hazard: nothing stops a server from evicting the
        # only copy in the network.  Documented behaviour, pinned here
        # (seed-pinning disabled to get exact Figure 2 semantics).
        service = make_service(
            disk_count=1, disk_capacity_mb=450.0, pin_seeded_titles=False
        )
        service.seed_title("U4", movie("only", size_mb=400.0))
        server = service.servers["U4"]
        # Hammer a different title until it out-scores "only" (0 points).
        rival = movie("rival", size_mb=400.0)
        result = server.on_download_begins(rival)
        assert "only" in result.evicted
        assert service.database.servers_with_title("only") == []
        with pytest.raises(RoutingError):
            service.decide("U2", "only")

    def test_seed_pinning_prevents_last_copy_loss(self):
        # The deployable default: seeded titles are pinned, so the rival
        # cannot evict the only copy no matter how popular it gets.
        service = make_service(disk_count=1, disk_capacity_mb=450.0)
        service.seed_title("U4", movie("only", size_mb=400.0))
        server = service.servers["U4"]
        rival = movie("rival", size_mb=400.0)
        for _ in range(5):
            result = server.on_download_begins(rival)
            assert result.evicted == ()
            assert not result.cached
        assert service.database.servers_with_title("only") == ["U4"]
        assert service.decide("U2", "only").chosen_uid == "U4"


class TestSaturation:
    def test_saturated_links_degrade_but_complete(self):
        service = make_service()
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        service.seed_title("U4", movie("m1", size_mb=150.0, duration_s=900.0))
        request, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 5 * 24 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.qos_violation_count == len(session.record.clusters)
        assert session.record.stall_s > 0.0

    def test_admission_exhaustion_fails_over(self):
        service = make_service(max_streams=1)
        service.seed_title("U4", movie())
        service.seed_title("U5", movie())
        lease = service.servers["U4"].begin_serving("m1")
        decision = service.decide("U2", "m1")
        assert decision.chosen_uid == "U5"
        service.servers["U4"].end_serving(lease)

    def test_admission_exhaustion_everywhere_raises(self):
        service = make_service(max_streams=1)
        service.seed_title("U4", movie())
        lease = service.servers["U4"].begin_serving("m1")
        with pytest.raises(RoutingError):
            service.decide("U2", "m1")
        service.servers["U4"].end_serving(lease)
