"""Integration tests: counters -> agent -> collector -> database -> VRA."""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.traces import Table2Replayer


class TestSnmpToVraPipeline:
    def test_reported_weights_track_replayed_day(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        service = VoDService(
            sim,
            topology,
            ServiceConfig(snmp_period_s=120.0, use_reported_stats=True),
        )
        Table2Replayer(sim, topology, update_period_s=60.0).start()
        service.start()

        sim.run(until=8 * 3600.0 + 400.0)
        morning = service.vra.weights()["Patra-Athens"]
        sim.run(until=10 * 3600.0 + 400.0)
        midmorning = service.vra.weights()["Patra-Athens"]
        # Table 2: Patra-Athens jumps from 10% to 91% between 8am and 10am.
        assert morning < midmorning
        assert midmorning > 0.4

    def test_reported_and_ground_truth_converge_on_static_network(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        from repro.network.grnet import apply_traffic_sample

        apply_traffic_sample(topology, "8am")
        service = VoDService(
            sim,
            topology,
            ServiceConfig(snmp_period_s=60.0, use_reported_stats=True),
        )
        service.start()
        sim.run(until=8 * 3600.0 + 150.0)
        from repro.core.lvn import weight_table

        reported = service.vra.weights()
        truth = weight_table(topology)
        for name, value in truth.items():
            assert reported[name] == pytest.approx(value, rel=1e-2, abs=1e-4), name

    def test_vod_streams_show_up_in_reported_stats(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()  # idle background
        service = VoDService(
            sim,
            topology,
            ServiceConfig(
                cluster_mb=400.0,
                snmp_period_s=60.0,
                use_reported_stats=True,
            ),
        )
        # 2 Mbps stream U4 -> U2 pins the whole Patra-Ioannina link.
        service.seed_title("U4", VideoTitle("m", size_mb=900.0, duration_s=3600.0))
        service.start()
        service.request_by_home("U2", "m")
        sim.run(until=8 * 3600.0 + 300.0)
        # The stream's own reservation is visible through SNMP: its route
        # links report non-trivial utilisation in the database.
        entries = {
            e.link_name: e.utilization for e in service.database.link_entries()
        }
        assert max(entries.values()) > 0.3
