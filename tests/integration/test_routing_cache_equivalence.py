"""Equivalence of the epoch-versioned routing cache.

The whole point of the cache is that it changes *nothing* about routed
decisions — only how often they are recomputed.  These tests run a full
flash-crowd service experiment (dynamic per-cluster switching on) twice,
with the cache enabled and disabled, and require every VRA decision —
chosen server, path and cost — and every delivered cluster to be
identical.
"""

import pytest

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, build_service
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

SPECIAL = VideoTitle("special", size_mb=200.0, duration_s=1_200.0)


def run_flash_crowd(cache_size: int, use_reported_stats: bool):
    """One flash-crowd run; returns (decision log, session records)."""
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=12, start_s=300.0, ramp_s=1_800.0
    )
    experiment = ServiceExperiment(
        name=f"equiv-cache{cache_size}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=50.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=64,
            use_reported_stats=use_reported_stats,
            routing_cache_size=cache_size,
        ),
        seed_origin_uids=["U4"],
        run_until=5 * 3600.0,
    )
    service = build_service(experiment)
    decisions = []

    def capture(decide):
        def wrapped():
            decision = decide()
            decisions.append(
                (
                    decision.home_uid,
                    decision.title_id,
                    decision.chosen_uid,
                    decision.path.nodes,
                    decision.cost,
                )
            )
            return decision

        return wrapped

    service.decide_wrapper = capture
    service.start()
    for event in scenario.events:
        service.sim.schedule_at(
            event.time_s,
            lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
            name=f"request:{event.client_id}",
        )
    service.sim.run(until=5 * 3600.0)
    clusters = [
        [
            (record.index, record.server_uid, record.path_nodes)
            for record in session.clusters
        ]
        for session in service.sessions
    ]
    return decisions, clusters, service


@pytest.mark.parametrize("use_reported_stats", [True, False])
def test_flash_crowd_decisions_identical_with_and_without_cache(use_reported_stats):
    cached_decisions, cached_clusters, cached_service = run_flash_crowd(
        128, use_reported_stats
    )
    plain_decisions, plain_clusters, plain_service = run_flash_crowd(
        0, use_reported_stats
    )

    assert len(cached_decisions) == len(plain_decisions) > 0
    assert cached_decisions == plain_decisions
    assert cached_clusters == plain_clusters
    # Every session actually streamed (the scenario is feasible).
    assert all(cached_clusters)

    stats = cached_service.vra.cache_stats
    assert plain_service.vra.cache_stats is None
    if use_reported_stats:
        # Between SNMP rounds every per-cluster recomputation is a hit.
        assert stats.hits > 0
        assert stats.invalidations > 0  # SNMP rounds landed during the run
