"""Unit tests for the embedded GRNET case-study data."""

import pytest

from repro.network import grnet as grnet_data
from repro.network.grnet import apply_traffic_sample, build_grnet_topology, traffic_at


class TestTopology:
    def test_six_nodes_seven_links(self, grnet):
        assert grnet.node_count == 6
        assert grnet.link_count == 7

    def test_city_names(self, grnet):
        assert grnet.node("U1").name == "Athens"
        assert grnet.node("U2").name == "Patra"
        assert grnet.node("U4").name == "Thessaloniki"

    def test_link_capacities_match_table2_headers(self, grnet):
        assert grnet.link_named("Patra-Athens").capacity_mbps == 2.0
        assert grnet.link_named("Thessaloniki-Athens").capacity_mbps == 18.0
        assert grnet.link_named("Athens-Heraklio").capacity_mbps == 18.0
        assert grnet.link_named("Xanthi-Heraklio").capacity_mbps == 2.0

    def test_adjacency_matches_figure6(self, grnet):
        assert sorted(grnet.neighbors("U1")) == ["U2", "U4", "U6"]
        assert sorted(grnet.neighbors("U2")) == ["U1", "U3"]
        assert sorted(grnet.neighbors("U3")) == ["U2", "U4"]
        assert sorted(grnet.neighbors("U4")) == ["U1", "U3", "U5"]
        assert sorted(grnet.neighbors("U5")) == ["U4", "U6"]
        assert sorted(grnet.neighbors("U6")) == ["U1", "U5"]

    def test_topology_validates(self, grnet):
        grnet.validate()  # must not raise

    def test_fresh_topology_is_idle(self, grnet):
        assert all(link.used_mbps == 0.0 for link in grnet.links())


class TestTrafficSamples:
    def test_apply_sample_sets_background(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        assert topology.link_named("Patra-Athens").used_mbps == pytest.approx(0.2)
        assert topology.link_named("Thessaloniki-Athens").used_mbps == pytest.approx(1.7)

    def test_samples_overwrite_previous_column(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        apply_traffic_sample(topology, "4pm")
        assert topology.link_named("Patra-Athens").used_mbps == pytest.approx(1.82)

    def test_sample_times_cover_four_instants(self):
        assert grnet_data.SAMPLE_TIMES == ["8am", "10am", "4pm", "6pm"]

    def test_unknown_time_label_rejected(self):
        topology = build_grnet_topology()
        with pytest.raises(KeyError):
            apply_traffic_sample(topology, "noon")
        with pytest.raises(KeyError):
            traffic_at("noon")

    def test_traffic_at_returns_column(self):
        column = traffic_at("4pm")
        assert column["Patra-Ioannina"] == pytest.approx(0.2)
        assert column["Athens-Heraklio"] == pytest.approx(5.5)

    def test_utilization_matches_printed_percentages(self):
        # eq. (5): used / capacity; e.g. "100 bits" on 2 Mb = 0.005 %.
        traffic = grnet_data.TABLE2_TRAFFIC_MBPS
        assert 100 * traffic["Patra-Ioannina"]["8am"] / 2.0 == pytest.approx(0.005)
        assert 100 * traffic["Patra-Athens"]["10am"] / 2.0 == pytest.approx(91.0)
        assert 100 * traffic["Thessaloniki-Xanthi"]["4pm"] / 2.0 == pytest.approx(37.5)

    def test_every_link_has_all_four_samples(self):
        for name, samples in grnet_data.TABLE2_TRAFFIC_MBPS.items():
            assert sorted(samples) == sorted(grnet_data.SAMPLE_TIMES), name


class TestInterpolation:
    def test_exact_sample_instants(self):
        assert grnet_data.interpolated_traffic(8 * 3600.0) == traffic_at("8am")
        assert grnet_data.interpolated_traffic(18 * 3600.0) == traffic_at("6pm")

    def test_midpoint_interpolates_linearly(self):
        at_9am = grnet_data.interpolated_traffic(9 * 3600.0)
        assert at_9am["Patra-Athens"] == pytest.approx((0.2 + 1.82) / 2.0)

    def test_clamped_before_first_sample(self):
        assert grnet_data.interpolated_traffic(0.0) == traffic_at("8am")

    def test_clamped_after_last_sample(self):
        assert grnet_data.interpolated_traffic(23 * 3600.0) == traffic_at("6pm")

    def test_interpolation_monotone_on_rising_link(self):
        # Athens-Heraklio rises all day: 0.5 -> 2.5 -> 5.5 -> 6.0.
        values = [
            grnet_data.interpolated_traffic(t * 3600.0)["Athens-Heraklio"]
            for t in (8, 9, 10, 13, 16, 17, 18)
        ]
        assert values == sorted(values)
