"""Unit tests for Link bandwidth accounting."""

import pytest

from repro.errors import LinkCapacityError
from repro.network.link import Link, link_key


class TestLinkKey:
    def test_key_is_sorted(self):
        assert link_key("U2", "U1") == ("U1", "U2")
        assert link_key("U1", "U2") == ("U1", "U2")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            link_key("U1", "U1")


class TestLinkConstruction:
    def test_endpoints_canonicalised(self):
        link = Link("U2", "U1", capacity_mbps=2.0)
        assert link.key == ("U1", "U2")

    def test_default_name(self):
        assert Link("B", "A", capacity_mbps=1.0).name == "A-B"

    def test_explicit_name(self):
        link = Link("U2", "U1", capacity_mbps=2.0, name="Patra-Athens")
        assert link.name == "Patra-Athens"

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(LinkCapacityError):
            Link("A", "B", capacity_mbps=0.0)
        with pytest.raises(LinkCapacityError):
            Link("A", "B", capacity_mbps=-2.0)

    def test_other_end(self):
        link = Link("A", "B", capacity_mbps=1.0)
        assert link.other_end("A") == "B"
        assert link.other_end("B") == "A"
        with pytest.raises(ValueError):
            link.other_end("C")

    def test_touches(self):
        link = Link("A", "B", capacity_mbps=1.0)
        assert link.touches("A") and link.touches("B")
        assert not link.touches("C")


class TestBandwidthAccounting:
    def test_initially_idle(self):
        link = Link("A", "B", capacity_mbps=10.0)
        assert link.used_mbps == 0.0
        assert link.free_mbps == 10.0
        assert link.utilization == 0.0

    def test_background_traffic(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.set_background_mbps(4.0)
        assert link.used_mbps == 4.0
        assert link.utilization == pytest.approx(0.4)

    def test_background_clamped_to_capacity(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.set_background_mbps(25.0)
        assert link.used_mbps == 10.0
        assert link.utilization == 1.0

    def test_negative_background_rejected(self):
        link = Link("A", "B", capacity_mbps=10.0)
        with pytest.raises(LinkCapacityError):
            link.set_background_mbps(-1.0)

    def test_reserve_and_release(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.reserve(3.0)
        assert link.reserved_mbps == 3.0
        assert link.free_mbps == 7.0
        link.release(3.0)
        assert link.reserved_mbps == 0.0

    def test_background_plus_reserved_is_used(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.set_background_mbps(4.0)
        link.reserve(2.0)
        assert link.used_mbps == pytest.approx(6.0)
        assert link.utilization == pytest.approx(0.6)

    def test_over_reservation_rejected(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.set_background_mbps(8.0)
        with pytest.raises(LinkCapacityError):
            link.reserve(3.0)
        # failed reserve leaves accounting untouched
        assert link.reserved_mbps == 0.0

    def test_release_more_than_reserved_rejected(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.reserve(1.0)
        with pytest.raises(LinkCapacityError):
            link.release(2.0)

    def test_negative_reserve_release_rejected(self):
        link = Link("A", "B", capacity_mbps=10.0)
        with pytest.raises(LinkCapacityError):
            link.reserve(-1.0)
        with pytest.raises(LinkCapacityError):
            link.release(-1.0)

    def test_reserve_exactly_free_capacity(self):
        link = Link("A", "B", capacity_mbps=10.0)
        link.set_background_mbps(4.0)
        link.reserve(6.0)
        assert link.free_mbps == pytest.approx(0.0)
