"""Unit tests for the Path value object."""

import pytest

from repro.network.routing.paths import Path


class TestPath:
    def test_basic_properties(self):
        path = Path(nodes=("U2", "U1", "U6", "U5"), cost=0.315)
        assert path.source == "U2"
        assert path.destination == "U5"
        assert path.hop_count == 3

    def test_single_node_path(self):
        path = Path(nodes=("U1",), cost=0.0)
        assert path.source == path.destination == "U1"
        assert path.hop_count == 0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(nodes=(), cost=0.0)

    def test_reversed_preserves_cost(self):
        path = Path(nodes=("A", "B", "C"), cost=2.5)
        reverse = path.reversed()
        assert reverse.nodes == ("C", "B", "A")
        assert reverse.cost == 2.5

    def test_as_label_matches_paper_format(self):
        assert Path(nodes=("U2", "U1", "U6", "U5"), cost=0.0).as_label() == "U2,U1,U6,U5"

    def test_frozen(self):
        path = Path(nodes=("A",), cost=0.0)
        with pytest.raises(AttributeError):
            path.cost = 1.0  # type: ignore[misc]
