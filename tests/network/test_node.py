"""Unit tests for Node."""

import pytest

from repro.network.node import Node


class TestNode:
    def test_name_defaults_to_uid(self):
        assert Node("U1").name == "U1"

    def test_explicit_name(self):
        assert Node("U1", name="Athens").name == "Athens"

    def test_empty_uid_rejected(self):
        with pytest.raises(ValueError):
            Node("")

    def test_equality_by_uid(self):
        assert Node("U1", name="Athens") == Node("U1", name="Other")
        assert Node("U1") != Node("U2")

    def test_hashable_by_uid(self):
        assert len({Node("U1"), Node("U1", name="Athens"), Node("U2")}) == 2

    def test_attributes_dict_is_per_instance(self):
        a, b = Node("A"), Node("B")
        a.attributes["x"] = 1
        assert "x" not in b.attributes

    def test_repr_shows_name_when_distinct(self):
        assert "Athens" in repr(Node("U1", name="Athens"))
        assert repr(Node("U1")) == "Node('U1')"
