"""Unit tests for the Topology container."""

import pytest

from repro.errors import TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology


class TestConstruction:
    def test_add_and_lookup_nodes(self, triangle):
        assert triangle.node_count == 3
        assert triangle.node("A").uid == "A"
        assert triangle.has_node("B")
        assert not triangle.has_node("Z")

    def test_duplicate_node_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_node(Node("A"))

    def test_unknown_node_lookup_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.node("Z")

    def test_link_before_nodes_rejected(self):
        topology = Topology()
        topology.add_node(Node("A"))
        with pytest.raises(TopologyError):
            topology.add_link(Link("A", "B", capacity_mbps=1.0))

    def test_parallel_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link(Link("A", "B", capacity_mbps=5.0))

    def test_duplicate_link_name_rejected(self):
        topology = Topology()
        for uid in "ABC":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0, name="trunk"))
        with pytest.raises(TopologyError):
            topology.add_link(Link("B", "C", capacity_mbps=1.0, name="trunk"))


class TestLookup:
    def test_link_between_either_direction(self, triangle):
        assert triangle.link_between("A", "B") is triangle.link_between("B", "A")

    def test_link_between_missing_raises(self, line):
        with pytest.raises(TopologyError):
            line.link_between("A", "D")

    def test_has_link_between(self, triangle):
        assert triangle.has_link_between("A", "C")
        assert not triangle.has_link_between("A", "A")

    def test_link_named(self, triangle):
        assert triangle.link_named("A-B").key == ("A", "B")
        with pytest.raises(TopologyError):
            triangle.link_named("nope")

    def test_links_at_and_degree(self, triangle, line):
        assert triangle.degree("A") == 2
        assert {l.name for l in triangle.links_at("B")} == {"A-B", "B-C"}
        assert line.degree("A") == 1
        assert line.degree("B") == 2

    def test_neighbors(self, line):
        assert sorted(line.neighbors("B")) == ["A", "C"]
        assert line.neighbors("A") == ["B"]

    def test_links_at_unknown_node(self, triangle):
        with pytest.raises(TopologyError):
            triangle.links_at("Z")

    def test_node_uids_order(self, line):
        assert line.node_uids() == ["A", "B", "C", "D"]


class TestAnalysis:
    def test_connected(self, triangle, line):
        assert triangle.is_connected()
        assert line.is_connected()

    def test_disconnected_detected(self):
        topology = Topology()
        for uid in "ABCD":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0))
        topology.add_link(Link("C", "D", capacity_mbps=1.0))
        assert not topology.is_connected()
        with pytest.raises(TopologyError):
            topology.validate()

    def test_isolated_node_fails_validation(self):
        topology = Topology()
        for uid in "ABC":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0))
        with pytest.raises(TopologyError, match="no links"):
            topology.validate()

    def test_empty_topology_is_connected(self):
        assert Topology().is_connected()

    def test_path_links(self, line):
        links = line.path_links(["A", "B", "C"])
        assert [l.name for l in links] == ["A-B", "B-C"]

    def test_path_links_invalid_hop(self, line):
        with pytest.raises(TopologyError):
            line.path_links(["A", "C"])

    def test_path_links_single_node_is_empty(self, line):
        assert line.path_links(["A"]) == []

    def test_total_capacity(self, triangle):
        assert triangle.total_capacity_mbps() == pytest.approx(22.0)
