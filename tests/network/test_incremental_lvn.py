"""Unit tests: incremental LVN table, tree revalidation, delta cache."""

from repro.core.lvn import weight_table
from repro.core.lvn_delta import IncrementalLvnTable
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.network.routing.cache import RoutingCache
from repro.network.routing.dijkstra import LinkDelta, dijkstra, tree_unaffected
from repro.network.topology import Topology


def drain_all(topology):
    """Fresh dirty-set from the topology journal (test convenience)."""
    _, keys = topology.change_journal.since(0)
    return keys


class TestIncrementalLvnTable:
    def test_patch_before_rebuild_returns_none(self):
        topology = build_grnet_topology()
        table = IncrementalLvnTable(topology)
        assert table.patch({"Patra-Athens"}) is None

    def test_rebuild_matches_cold_weight_table(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        table = IncrementalLvnTable(topology)
        assert table.rebuild() == weight_table(topology)

    def test_patch_after_traffic_change_is_bit_for_bit(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        incremental.rebuild()
        topology.link_named("Patra-Athens").set_background_mbps(1.7)
        patched, deltas = incremental.patch({"Patra-Athens"})
        assert patched == weight_table(topology)
        assert any(d.link.name == "Patra-Athens" for d in deltas)

    def test_patch_recomputes_neighbors_of_affected_nodes(self):
        # Patra-Athens traffic moves NV(U1) and NV(U2), so every link at
        # U1/U2 must be repriced even though only one link was dirty.
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        before = incremental.rebuild()
        topology.link_named("Patra-Athens").set_background_mbps(1.9)
        patched, _ = incremental.patch({"Patra-Athens"})
        cold = weight_table(topology)
        assert patched == cold
        assert patched["Patra-Ioannina"] != before["Patra-Ioannina"]
        assert patched["Athens-Heraklio"] != before["Athens-Heraklio"]

    def test_unchanged_dirty_link_yields_same_table_object(self):
        # The SNMP drumbeat: a journaled link whose value did not actually
        # move must cost nothing — same dict object, zero deltas.
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        base = incremental.rebuild()
        patched, deltas = incremental.patch({"Patra-Athens"})
        assert patched is base
        assert deltas == []

    def test_patch_is_copy_on_write(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        base = incremental.rebuild()
        snapshot = dict(base)
        topology.link_named("Patra-Athens").set_background_mbps(1.9)
        patched, _ = incremental.patch({"Patra-Athens"})
        assert patched is not base
        assert base == snapshot  # past decisions' audit state untouched

    def test_offline_flip_produces_delta_even_at_same_weight(self):
        topology = build_grnet_topology()
        incremental = IncrementalLvnTable(topology)
        incremental.rebuild()
        link = topology.link_named("Patra-Athens")
        link.online = False
        patched, deltas = incremental.patch({"Patra-Athens"})
        assert patched == weight_table(topology)
        flip = [d for d in deltas if d.link.name == "Patra-Athens"]
        assert flip and flip[0].was_online and not flip[0].now_online

    def test_new_link_patches_to_cold_result(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        incremental.rebuild()
        topology.add_node(Node("U7", name="Larissa"))
        topology.add_link(Link("U7", "U1", capacity_mbps=4.0, name="Larissa-Athens"))
        patched, deltas = incremental.patch({"Larissa-Athens"})
        assert patched == weight_table(topology)
        new = [d for d in deltas if d.link.name == "Larissa-Athens"]
        assert new and new[0].old_weight is None and new[0].now_online

    def test_unknown_dirty_name_falls_back_to_none(self):
        topology = build_grnet_topology()
        incremental = IncrementalLvnTable(topology)
        incremental.rebuild()
        assert incremental.patch({"no-such-link"}) is None

    def test_journal_driven_patch_matches_cold_after_churn(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        incremental = IncrementalLvnTable(topology)
        incremental.rebuild()
        cursor = topology.change_journal.head
        topology.link_named("Xanthi-Heraklio").set_background_mbps(1.2)
        topology.link_named("Thessaloniki-Ioannina").online = False
        cursor, dirty = topology.change_journal.since(cursor)
        patched, _ = incremental.patch(dirty)
        assert patched == weight_table(topology)


def grnet_tree(source="U2"):
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    weights = weight_table(topology)
    return topology, weights, dijkstra(topology, source, lambda l: weights[l.name])


class TestTreeUnaffected:
    def test_offline_before_and_after_survives(self):
        topology, weights, tree = grnet_tree()
        link = topology.link_named("Patra-Athens")
        delta = LinkDelta(link, weights[link.name], 99.0, was_online=False, now_online=False)
        assert tree_unaffected(tree, delta)

    def test_removal_of_tree_edge_fails(self):
        topology, weights, tree = grnet_tree("U2")
        # Patra's links are tree edges of any tree rooted at Patra.
        link = topology.link_named("Patra-Athens")
        delta = LinkDelta(link, weights[link.name], weights[link.name], True, False)
        assert not tree_unaffected(tree, delta)

    def test_removal_of_non_tree_edge_survives(self):
        topology, weights, tree = grnet_tree("U2")
        non_tree = [
            link for link in topology.links()
            if tree.predecessors.get(link.a_uid) != link.b_uid
            and tree.predecessors.get(link.b_uid) != link.a_uid
        ]
        assert non_tree  # GRNET has a cycle, so some edge is non-tree
        link = non_tree[0]
        delta = LinkDelta(link, weights[link.name], weights[link.name], True, False)
        assert tree_unaffected(tree, delta)
        # Soundness: a fresh run without the link really is identical.
        link.online = False
        fresh = dijkstra(topology, "U2", lambda l: weights[l.name])
        assert fresh.distances == tree.distances
        assert fresh.predecessors == tree.predecessors

    def test_weight_change_on_tree_edge_fails(self):
        topology, weights, tree = grnet_tree("U2")
        link = topology.link_named("Patra-Athens")
        delta = LinkDelta(link, weights[link.name], weights[link.name] + 0.5, True, True)
        assert not tree_unaffected(tree, delta)

    def test_insertion_strict_bound(self):
        topology, weights, tree = grnet_tree("U2")
        link = topology.link_named("Xanthi-Heraklio")
        du, dv = tree.distances[link.a_uid], tree.distances[link.b_uid]
        gap = abs(du - dv)
        heavy = LinkDelta(link, None, gap + 1.0, was_online=False, now_online=True)
        assert tree_unaffected(tree, heavy)
        light = LinkDelta(link, None, max(gap - 1e-6, 0.0), was_online=False, now_online=True)
        assert not tree_unaffected(tree, light)

    def test_insertion_reaching_unreached_node_fails(self):
        topology = Topology(name="line")
        for uid in ("A", "B", "C"):
            topology.add_node(Node(uid))
        ab = topology.add_link(Link("A", "B", capacity_mbps=10.0, name="A-B"))
        bc = topology.add_link(Link("B", "C", capacity_mbps=10.0, name="B-C"))
        bc.online = False
        weights = {"A-B": 1.0, "B-C": 1.0}
        tree = dijkstra(topology, "A", lambda l: weights[l.name])
        assert not tree.reaches("C")
        delta = LinkDelta(bc, 1.0, 1.0, was_online=False, now_online=True)
        assert not tree_unaffected(tree, delta)
        # A live change on the tree edge A-B is conservatively rejected too.
        assert not tree_unaffected(tree, LinkDelta(ab, 1.0, 2.0, True, True))


class TestRoutingCacheDeltas:
    def _weights(self):
        return {"A-B": 1.0}

    def test_probe_success_counts_partial_and_keeps_trees(self):
        topology = Topology(name="pair")
        topology.add_node(Node("A"))
        topology.add_node(Node("B"))
        topology.add_link(Link("A", "B", capacity_mbps=10.0, name="A-B"))
        weights = self._weights()
        cache = RoutingCache(max_trees=4, delta_probe=lambda: (weights, []))
        cache.weights(1, lambda: weights)
        tree = cache.tree(1, "A", lambda: dijkstra(topology, "A", lambda l: weights[l.name]))
        # Epoch advances; the probe absorbs it with zero deltas.
        computes = []
        again = cache.tree(2, "A", lambda: computes.append(1))
        assert again is tree
        assert not computes
        assert cache.stats.partial_invalidations == 1
        assert cache.stats.full_invalidations == 0
        assert cache.stats.invalidations == 1

    def test_probe_none_falls_back_to_full_flush(self):
        topology = Topology(name="pair")
        topology.add_node(Node("A"))
        topology.add_node(Node("B"))
        topology.add_link(Link("A", "B", capacity_mbps=10.0, name="A-B"))
        weights = self._weights()
        cache = RoutingCache(max_trees=4, delta_probe=lambda: None)
        cache.weights(1, lambda: weights)
        cache.tree(1, "A", lambda: dijkstra(topology, "A", lambda l: weights[l.name]))
        computes = []

        def recompute():
            computes.append(1)
            return dijkstra(topology, "A", lambda l: weights[l.name])

        cache.tree(2, "A", recompute)
        assert computes
        assert cache.stats.full_invalidations == 1
        assert cache.stats.partial_invalidations == 0

    def test_failing_delta_reroots_only_affected_tree(self):
        topology = Topology(name="triangle")
        for uid in ("A", "B", "C"):
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=10.0, name="A-B"))
        topology.add_link(Link("B", "C", capacity_mbps=10.0, name="B-C"))
        topology.add_link(Link("A", "C", capacity_mbps=10.0, name="A-C"))
        weights = {"A-B": 1.0, "B-C": 1.0, "A-C": 5.0}
        ab = topology.link_named("A-B")
        delta = LinkDelta(ab, 1.0, 1.0, was_online=True, now_online=False)
        cache = RoutingCache(max_trees=4, delta_probe=lambda: (weights, [delta]))
        for source in ("A", "B", "C"):
            cache.tree(1, source, lambda s=source: dijkstra(topology, s, lambda l: weights[l.name]))
        cache.weights(2, lambda: weights)  # trigger the epoch transition
        # A-B is a tree edge of every source's tree here, so all reroot.
        assert cache.stats.trees_rerooted == 3
        assert cache.stats.trees_repaired == 0
        assert cache.stats.dirty_links == 1
