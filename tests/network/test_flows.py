"""Unit tests for flow reservation accounting."""

import pytest

from repro.errors import FlowError, LinkCapacityError
from repro.network.flows import FlowManager


class TestReservation:
    def test_reserve_holds_bandwidth_on_every_hop(self, line):
        flows = FlowManager(line)
        flow = flows.reserve(["A", "B", "C"], 4.0)
        assert line.link_between("A", "B").reserved_mbps == 4.0
        assert line.link_between("B", "C").reserved_mbps == 4.0
        assert line.link_between("C", "D").reserved_mbps == 0.0
        assert flow.hop_count == 2

    def test_release_returns_bandwidth(self, line):
        flows = FlowManager(line)
        flow = flows.reserve(["A", "B", "C"], 4.0)
        flows.release(flow)
        assert line.link_between("A", "B").reserved_mbps == 0.0
        assert flows.active_count == 0

    def test_single_node_path_reserves_nothing(self, line):
        flows = FlowManager(line)
        flow = flows.reserve(["A"], 1.0)
        assert flow.hop_count == 0
        assert all(link.reserved_mbps == 0.0 for link in line.links())
        flows.release(flow)

    def test_atomic_failure_leaves_no_partial_reservation(self, line):
        line.link_between("B", "C").set_background_mbps(9.0)
        flows = FlowManager(line)
        with pytest.raises(LinkCapacityError):
            flows.reserve(["A", "B", "C", "D"], 2.0)
        assert line.link_between("A", "B").reserved_mbps == 0.0
        assert line.link_between("C", "D").reserved_mbps == 0.0
        assert flows.active_count == 0

    def test_empty_path_rejected(self, line):
        with pytest.raises(FlowError):
            FlowManager(line).reserve([], 1.0)

    def test_non_positive_rate_rejected(self, line):
        flows = FlowManager(line)
        with pytest.raises(FlowError):
            flows.reserve(["A", "B"], 0.0)
        with pytest.raises(FlowError):
            flows.reserve(["A", "B"], -2.0)

    def test_double_release_rejected(self, line):
        flows = FlowManager(line)
        flow = flows.reserve(["A", "B"], 1.0)
        flows.release(flow)
        with pytest.raises(FlowError):
            flows.release(flow)

    def test_flow_ids_are_unique(self, line):
        flows = FlowManager(line)
        a = flows.reserve(["A", "B"], 1.0)
        b = flows.reserve(["B", "C"], 1.0)
        assert a.flow_id != b.flow_id

    def test_active_flows_snapshot(self, line):
        flows = FlowManager(line)
        a = flows.reserve(["A", "B"], 1.0)
        flows.reserve(["B", "C"], 1.0)
        assert len(flows.active_flows()) == 2
        flows.release(a)
        assert len(flows.active_flows()) == 1


class TestCapacityQueries:
    def test_path_fits(self, line):
        flows = FlowManager(line)
        assert flows.path_fits(["A", "B", "C"], 10.0)
        line.link_between("B", "C").set_background_mbps(5.0)
        assert not flows.path_fits(["A", "B", "C"], 6.0)
        assert flows.path_fits(["A", "B", "C"], 5.0)

    def test_bottleneck(self, line):
        flows = FlowManager(line)
        line.link_between("B", "C").set_background_mbps(7.0)
        assert flows.bottleneck_mbps(["A", "B", "C", "D"]) == pytest.approx(3.0)

    def test_bottleneck_single_node_is_infinite(self, line):
        assert FlowManager(line).bottleneck_mbps(["A"]) == float("inf")

    def test_concurrent_flows_share_capacity(self, line):
        flows = FlowManager(line)
        flows.reserve(["A", "B"], 6.0)
        flows.reserve(["A", "B"], 4.0)
        with pytest.raises(LinkCapacityError):
            flows.reserve(["A", "B"], 0.5)
