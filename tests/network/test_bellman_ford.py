"""Unit tests for Bellman-Ford and the negative-weight erratum lesson."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.network.routing.bellman_ford import bellman_ford
from repro.network.routing.dijkstra import dijkstra


def unit_weight(_link):
    return 1.0


class TestAgreementWithDijkstra:
    def test_line(self, line):
        bf = bellman_ford(line, "A", unit_weight)
        dj = dijkstra(line, "A", unit_weight)
        assert bf.distances == pytest.approx(dj.distances)
        assert bf.path("D").nodes == dj.path("D").nodes

    def test_grnet_with_lvn_weights(self, grnet_8am):
        from repro.core.lvn import weight_table

        weights = weight_table(grnet_8am)
        bf = bellman_ford(grnet_8am, "U2", lambda l: weights[l.name])
        dj = dijkstra(grnet_8am, "U2", lambda l: weights[l.name])
        for uid in dj.distances:
            assert bf.cost(uid) == pytest.approx(dj.cost(uid))

    def test_triangle_detour(self, triangle):
        weights = {"A-B": 1.0, "B-C": 1.0, "A-C": 5.0}
        bf = bellman_ford(triangle, "A", lambda l: weights[l.name])
        assert bf.path("C").nodes == ("A", "B", "C")
        assert bf.cost("C") == pytest.approx(2.0)


class TestNegativeWeights:
    def test_negative_link_on_undirected_graph_is_a_negative_cycle(self, line):
        """The paper's erratum 3 made concrete: a truly negative weight on
        an undirected link is a negative cycle, so 'negative value'
        weights could never have produced the paper's tables."""
        weights = {"A-B": 1.0, "B-C": -0.5, "C-D": 1.0}
        result = bellman_ford(line, "A", lambda l: weights[l.name])
        assert result.negative_cycle
        with pytest.raises(RoutingError):
            result.cost("D")

    def test_unreachable_negative_link_is_harmless(self):
        from repro.network.link import Link
        from repro.network.node import Node
        from repro.network.topology import Topology

        topology = Topology()
        for uid in "ABCD":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0))
        topology.add_link(Link("C", "D", capacity_mbps=1.0))  # separate island
        weights = {"A-B": 1.0, "C-D": -5.0}
        result = bellman_ford(topology, "A", lambda l: weights[l.name])
        assert not result.negative_cycle
        assert result.cost("B") == pytest.approx(1.0)
        assert not result.reaches("C")


class TestEdgeCases:
    def test_unknown_source_rejected(self, line):
        with pytest.raises(TopologyError):
            bellman_ford(line, "Z", unit_weight)

    def test_unreachable_target(self):
        from repro.network.link import Link
        from repro.network.node import Node
        from repro.network.topology import Topology

        topology = Topology()
        for uid in "ABC":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0))
        result = bellman_ford(topology, "A", unit_weight)
        assert not result.reaches("C")
        with pytest.raises(RoutingError):
            result.path("C")

    def test_offline_links_skipped(self, triangle):
        triangle.link_between("A", "C").online = False
        result = bellman_ford(triangle, "A", unit_weight)
        assert result.path("C").nodes == ("A", "B", "C")

    def test_nan_weight_rejected(self, line):
        with pytest.raises(RoutingError):
            bellman_ford(line, "A", lambda _l: float("nan"))
