"""Unit tests for the synthetic topology generators."""

import random

import pytest

from repro.errors import TopologyError
from repro.network.topologies import (
    grid_topology,
    line_topology,
    random_topology,
    ring_topology,
    star_topology,
    tree_topology,
)


class TestStar:
    def test_shape(self):
        topology = star_topology(5)
        assert topology.node_count == 6
        assert topology.link_count == 5
        assert topology.degree("H0") == 5
        assert all(topology.degree(f"L{i}") == 1 for i in range(5))

    def test_minimum(self):
        with pytest.raises(TopologyError):
            star_topology(0)

    def test_capacity_applied(self):
        topology = star_topology(2, capacity_mbps=4.0)
        assert all(l.capacity_mbps == 4.0 for l in topology.links())


class TestRing:
    def test_shape(self):
        topology = ring_topology(6)
        assert topology.node_count == 6
        assert topology.link_count == 6
        assert all(topology.degree(uid) == 2 for uid in topology.node_uids())

    def test_wraps_around(self):
        topology = ring_topology(4)
        assert topology.has_link_between("R3", "R0")

    def test_minimum(self):
        with pytest.raises(TopologyError):
            ring_topology(2)


class TestLine:
    def test_shape(self):
        topology = line_topology(4)
        assert topology.link_count == 3
        assert topology.degree("P0") == 1
        assert topology.degree("P1") == 2

    def test_minimum(self):
        with pytest.raises(TopologyError):
            line_topology(1)


class TestTree:
    def test_binary_tree_counts(self):
        topology = tree_topology(depth=3, branching=2)
        assert topology.node_count == 1 + 2 + 4 + 8
        assert topology.link_count == topology.node_count - 1

    def test_ternary_tree(self):
        topology = tree_topology(depth=2, branching=3)
        assert topology.node_count == 1 + 3 + 9
        assert topology.degree("T0") == 3

    def test_validation(self):
        with pytest.raises(TopologyError):
            tree_topology(depth=0)
        with pytest.raises(TopologyError):
            tree_topology(depth=2, branching=0)


class TestGrid:
    def test_shape(self):
        topology = grid_topology(3, 4)
        assert topology.node_count == 12
        # links: 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8.
        assert topology.link_count == 17
        assert topology.degree("G0.0") == 2  # corner
        assert topology.degree("G1.1") == 4  # interior

    def test_single_row_is_a_line(self):
        topology = grid_topology(1, 5)
        assert topology.link_count == 4

    def test_minimum(self):
        with pytest.raises(TopologyError):
            grid_topology(1, 1)


class TestRandom:
    def test_connected_with_tree_baseline(self):
        topology = random_topology(10, rng=random.Random(3))
        assert topology.node_count == 10
        assert topology.link_count == 9
        assert topology.is_connected()

    def test_extra_links_added(self):
        topology = random_topology(10, extra_links=5, rng=random.Random(3))
        assert topology.link_count == 14

    def test_deterministic_under_seed(self):
        a = random_topology(8, extra_links=4, rng=random.Random(7))
        b = random_topology(8, extra_links=4, rng=random.Random(7))
        assert {l.key for l in a.links()} == {l.key for l in b.links()}

    def test_clique_saturation_stops_early(self):
        topology = random_topology(3, extra_links=100, rng=random.Random(1))
        assert topology.link_count == 3  # the triangle is the clique

    def test_validation(self):
        with pytest.raises(TopologyError):
            random_topology(1)
        with pytest.raises(TopologyError):
            random_topology(5, extra_links=-1)


class TestServiceOnGeneratedTopologies:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: star_topology(5, capacity_mbps=10.0),
            lambda: ring_topology(6, capacity_mbps=10.0),
            lambda: tree_topology(2, 3, capacity_mbps=10.0),
            lambda: grid_topology(3, 3, capacity_mbps=10.0),
            lambda: random_topology(8, extra_links=4, rng=random.Random(5)),
        ],
    )
    def test_end_to_end_delivery(self, factory):
        from repro.core.service import ServiceConfig, VoDService
        from repro.sim.engine import Simulator
        from repro.storage.video import VideoTitle

        topology = factory()
        sim = Simulator()
        service = VoDService(
            sim, topology, ServiceConfig(cluster_mb=50.0, use_reported_stats=False)
        )
        uids = topology.node_uids()
        service.seed_title(uids[-1], VideoTitle("m", size_mb=100.0, duration_s=600.0))
        request, session, _ = service.request_by_home(uids[0], "m")
        sim.run(until=sim.now + 4 * 3600.0)
        assert request.finished and session.record.completed
