"""Unit tests for the epoch-versioned routing cache and its version
counters (links, topology, database)."""

import pytest

from repro.database.records import LinkEntry, LinkStats
from repro.database.store import ServiceDatabase
from repro.errors import ReproError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.routing.cache import RoutingCache, RoutingCacheStats
from repro.network.routing.dijkstra import dijkstra
from repro.network.topology import Topology


def build_pair():
    topology = Topology(name="pair")
    topology.add_node(Node("A"))
    topology.add_node(Node("B"))
    link = topology.add_link(Link("A", "B", capacity_mbps=10.0))
    return topology, link


class TestLinkVersions:
    def test_online_flip_bumps_state_version(self):
        link = Link("A", "B", capacity_mbps=10.0)
        before = link.state_version
        link.online = False
        assert link.state_version == before + 1
        link.online = True
        assert link.state_version == before + 2

    def test_same_online_value_does_not_bump(self):
        link = Link("A", "B", capacity_mbps=10.0)
        before = link.state_version
        link.online = True
        assert link.state_version == before

    def test_background_write_bumps_traffic_version(self):
        link = Link("A", "B", capacity_mbps=10.0)
        before = link.traffic_version
        link.set_background_mbps(3.0)
        assert link.traffic_version == before + 1
        # Writing the identical value is not a change.
        link.set_background_mbps(3.0)
        assert link.traffic_version == before + 1

    def test_reserve_release_bump_traffic_version(self):
        link = Link("A", "B", capacity_mbps=10.0)
        before = link.traffic_version
        link.reserve(2.0)
        link.release(2.0)
        assert link.traffic_version == before + 2

    def test_zero_reserve_is_not_a_change(self):
        link = Link("A", "B", capacity_mbps=10.0)
        before = link.traffic_version
        link.reserve(0.0)
        link.release(0.0)
        assert link.traffic_version == before


class TestTopologyVersions:
    def test_construction_bumps_state_version(self):
        topology, _ = build_pair()
        assert topology.state_version == 3  # two nodes + one link

    def test_link_failure_bumps_topology_state_version(self):
        topology, link = build_pair()
        before = topology.state_version
        link.online = False
        assert topology.state_version == before + 1
        assert topology.traffic_version == 0

    def test_traffic_mutations_bump_topology_traffic_version(self):
        topology, link = build_pair()
        state_before = topology.state_version
        link.set_background_mbps(1.0)
        link.reserve(0.5)
        link.release(0.5)
        assert topology.traffic_version == 3
        assert topology.state_version == state_before

    def test_lookup_by_name_mutation_is_tracked(self):
        topology, _ = build_pair()
        before = topology.state_version
        topology.link_named("A-B").online = False
        assert topology.state_version == before + 1


class TestDatabaseVersion:
    def test_update_link_stats_bumps_version(self):
        db = ServiceDatabase()
        db.register_link(
            LinkEntry(link_name="A-B", endpoints=("A", "B"), total_bandwidth_mbps=10.0)
        )
        before = db.link_stats_version
        db.update_link_stats(
            "A-B", LinkStats(used_mbps=1.0, utilization=0.1, timestamp=5.0)
        )
        assert db.link_stats_version == before + 1

    def test_register_link_bumps_version(self):
        db = ServiceDatabase()
        before = db.link_stats_version
        db.register_link(
            LinkEntry(link_name="A-B", endpoints=("A", "B"), total_bandwidth_mbps=10.0)
        )
        assert db.link_stats_version == before + 1


class TestRoutingCache:
    def tree_for(self, topology, source="A"):
        return dijkstra(topology, source, weight=lambda link: 1.0)

    def test_weights_hit_within_epoch(self):
        cache = RoutingCache()
        calls = []

        def compute():
            calls.append(1)
            return {"A-B": 1.0}

        first = cache.weights(("db", 1), compute)
        second = cache.weights(("db", 1), compute)
        assert first is second
        assert len(calls) == 1
        assert cache.stats.weight_hits == 1
        assert cache.stats.weight_misses == 1

    def test_epoch_change_invalidates(self):
        topology, _ = build_pair()
        cache = RoutingCache()
        cache.weights(("db", 1), lambda: {"A-B": 1.0})
        cache.tree(("db", 1), "A", lambda: self.tree_for(topology))
        cache.weights(("db", 2), lambda: {"A-B": 2.0})
        assert cache.stats.invalidations == 1
        # The tree cached under epoch 1 is gone.
        cache.tree(("db", 2), "A", lambda: self.tree_for(topology))
        assert cache.stats.tree_misses == 2
        assert cache.stats.tree_hits == 0

    def test_tree_lru_eviction(self):
        topology = Topology(name="tri")
        for uid in "ABC":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=10.0))
        topology.add_link(Link("B", "C", capacity_mbps=10.0))
        cache = RoutingCache(max_trees=2)
        epoch = ("db", 1)
        cache.tree(epoch, "A", lambda: self.tree_for(topology, "A"))
        cache.tree(epoch, "B", lambda: self.tree_for(topology, "B"))
        # Touch A so B is the least recently used entry.
        cache.tree(epoch, "A", lambda: self.tree_for(topology, "A"))
        cache.tree(epoch, "C", lambda: self.tree_for(topology, "C"))
        assert cache.stats.evictions == 1
        cache.tree(epoch, "A", lambda: self.tree_for(topology, "A"))
        assert cache.stats.tree_hits == 2  # A twice; B was evicted, C fresh
        cache.tree(epoch, "B", lambda: self.tree_for(topology, "B"))
        assert cache.stats.tree_misses == 4

    def test_size_zero_is_pass_through(self):
        topology, _ = build_pair()
        cache = RoutingCache(max_trees=0)
        assert not cache.enabled
        results = [
            cache.tree(("db", 1), "A", lambda: self.tree_for(topology))
            for _ in range(3)
        ]
        assert results[0] is not results[1]
        assert cache.stats == RoutingCacheStats()

    def test_negative_size_rejected(self):
        with pytest.raises(ReproError):
            RoutingCache(max_trees=-1)

    def test_clear_preserves_counters(self):
        cache = RoutingCache()
        cache.weights(("db", 1), lambda: {})
        cache.clear()
        assert cache.epoch is None
        assert cache.stats.weight_misses == 1

    def test_stats_dict_and_hit_rate(self):
        stats = RoutingCacheStats(weight_hits=3, weight_misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.as_dict()["weight_hits"] == 3
        assert RoutingCacheStats().hit_rate == 0.0
