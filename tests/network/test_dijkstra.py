"""Unit tests for the from-scratch Dijkstra and its trace mode."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.routing.dijkstra import UNREACHED, dijkstra
from repro.network.topology import Topology


def unit_weight(_link):
    return 1.0


class TestShortestPaths:
    def test_line_distances(self, line):
        result = dijkstra(line, "A", unit_weight)
        assert result.cost("A") == 0.0
        assert result.cost("B") == 1.0
        assert result.cost("D") == 3.0
        assert result.node_path("D") == ("A", "B", "C", "D")

    def test_weighted_triangle_prefers_detour(self, triangle):
        # direct A-C weighs 5, detour A-B-C weighs 2.
        weights = {"A-B": 1.0, "B-C": 1.0, "A-C": 5.0}
        result = dijkstra(triangle, "A", lambda l: weights[l.name])
        assert result.cost("C") == pytest.approx(2.0)
        assert result.node_path("C") == ("A", "B", "C")

    def test_direct_wins_when_cheaper(self, triangle):
        weights = {"A-B": 3.0, "B-C": 3.0, "A-C": 5.0}
        result = dijkstra(triangle, "A", lambda l: weights[l.name])
        assert result.node_path("C") == ("A", "C")
        assert result.cost("C") == pytest.approx(5.0)

    def test_source_path_is_itself(self, line):
        result = dijkstra(line, "B", unit_weight)
        assert result.node_path("B") == ("B",)
        assert result.cost("B") == 0.0

    def test_unknown_source_rejected(self, line):
        with pytest.raises(TopologyError):
            dijkstra(line, "Z", unit_weight)

    def test_negative_weight_rejected(self, line):
        with pytest.raises(RoutingError):
            dijkstra(line, "A", lambda _l: -1.0)

    def test_nan_weight_rejected(self, line):
        with pytest.raises(RoutingError):
            dijkstra(line, "A", lambda _l: float("nan"))

    def test_unreachable_node_absent(self):
        topology = Topology()
        for uid in "ABC":
            topology.add_node(Node(uid))
        topology.add_link(Link("A", "B", capacity_mbps=1.0))
        result = dijkstra(topology, "A", unit_weight)
        assert not result.reaches("C")
        with pytest.raises(RoutingError):
            result.cost("C")
        with pytest.raises(RoutingError):
            result.path("C")

    def test_zero_weight_links_allowed(self, line):
        result = dijkstra(line, "A", lambda _l: 0.0)
        assert result.cost("D") == 0.0

    def test_matches_networkx_on_grnet(self, grnet_8am):
        networkx = pytest.importorskip("networkx")
        from repro.core.lvn import weight_table

        weights = weight_table(grnet_8am)
        graph = networkx.Graph()
        for link in grnet_8am.links():
            graph.add_edge(link.a_uid, link.b_uid, weight=weights[link.name])
        ours = dijkstra(grnet_8am, "U2", lambda l: weights[l.name])
        reference = networkx.single_source_dijkstra_path_length(graph, "U2")
        for uid, expected in reference.items():
            assert ours.cost(uid) == pytest.approx(expected)


class TestTraceMode:
    def test_no_trace_by_default(self, line):
        assert dijkstra(line, "A", unit_weight).steps == []

    def test_one_step_per_settled_node(self, grnet_8am):
        result = dijkstra(grnet_8am, "U2", unit_weight, trace=True)
        assert len(result.steps) == grnet_8am.node_count

    def test_first_step_settles_source(self, line):
        result = dijkstra(line, "A", unit_weight, trace=True)
        assert result.steps[0].settled == ("A",)
        assert result.steps[0].distances == {"B": 1.0}

    def test_settled_sets_grow_monotonically(self, grnet_8am):
        result = dijkstra(grnet_8am, "U1", unit_weight, trace=True)
        for earlier, later in zip(result.steps, result.steps[1:]):
            assert set(earlier.settled) < set(later.settled)

    def test_final_step_matches_result_distances(self, grnet_8am):
        result = dijkstra(grnet_8am, "U2", unit_weight, trace=True)
        final = result.steps[-1]
        for uid, dist in result.distances.items():
            if uid != "U2":
                assert final.distances[uid] == pytest.approx(dist)

    def test_distance_label_unreached_marker(self, line):
        result = dijkstra(line, "A", unit_weight, trace=True)
        assert result.steps[0].distance_label("D") == UNREACHED
        assert result.steps[0].path_label("D") == "-"

    def test_distance_label_formatting(self, line):
        result = dijkstra(line, "A", unit_weight, trace=True)
        assert result.steps[0].distance_label("B") == "1.000"
        assert result.steps[-1].path_label("D") == "A,B,C,D"

    def test_tentative_distances_never_increase(self, grnet_8am):
        from repro.core.lvn import weight_table

        weights = weight_table(grnet_8am)
        result = dijkstra(grnet_8am, "U2", lambda l: weights[l.name], trace=True)
        for earlier, later in zip(result.steps, result.steps[1:]):
            for uid, dist in earlier.distances.items():
                assert later.distances[uid] <= dist + 1e-12
