"""Unit tests for the array-compiled routing core (TopologySnapshot)."""

import json

import pytest

from repro.core.lvn import node_validation, weight_table_with_nv
from repro.errors import ReproError, RoutingError, TopologyError
from repro.network.compiled import CompiledWeightTable, TopologySnapshot
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.network.routing.dijkstra import dijkstra
from repro.network.topology import Topology

BACKENDS = ["list", "numpy"]


def small_topology():
    t = Topology(name="t")
    for uid in ["C", "A", "B", "D"]:
        t.add_node(Node(uid))
    t.add_link(Link("A", "B", capacity_mbps=10.0, name="ab"))
    t.add_link(Link("B", "C", capacity_mbps=20.0, name="bc"))
    t.add_link(Link("C", "D", capacity_mbps=10.0, name="cd"))
    t.add_link(Link("A", "D", capacity_mbps=5.0, name="ad"))
    return t


def assert_tables_identical(compiled, python):
    ct, cnv = compiled
    pt, pnv = python
    assert list(ct.items()) == list(pt.items())
    assert list(cnv.items()) == list(pnv.items())
    # Bit-for-bit, and plain python floats (numpy scalars would change
    # repr and break JSON round-trips of the audit trail).
    for value, expected in zip(ct.values(), pt.values()):
        assert repr(value) == repr(expected)
        assert type(value) is float
    assert json.dumps(ct) == json.dumps(pt)


class TestStructure:
    def test_node_rank_follows_sorted_uid_order(self):
        snap = TopologySnapshot(small_topology())
        # Positions follow insertion order (C, A, B, D); ranks sorted uids.
        assert snap._uids == ["C", "A", "B", "D"]
        assert snap._rank == [2, 0, 1, 3]

    def test_csr_segments_follow_links_at_order(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        for p, uid in enumerate(snap._uids):
            names = [
                snap._link_names[snap._inc_link[j]]
                for j in range(snap._inc_off[p], snap._inc_off[p + 1])
            ]
            assert names == [link.name for link in topo.links_at(uid)]

    def test_online_flip_refreshes_mask_without_structure_rebuild(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        token = snap.structure_token
        topo.link_named("ab").online = False
        snap.refresh()
        assert snap._online[snap._link_names.index("ab")] is False
        assert snap.structure_token == token

    def test_growth_triggers_structure_rebuild(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        token = snap.structure_token
        topo.add_node(Node("E"))
        topo.add_link(Link("D", "E", capacity_mbps=10.0, name="de"))
        snap.refresh()
        assert snap.structure_token != token
        assert "de" in snap._link_names
        assert "E" in snap._uids

    def test_refresh_is_noop_when_version_unchanged(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        topo.link_named("ab").set_background_mbps(3.0)  # traffic only
        token = snap.structure_token
        snap.refresh()
        assert snap.structure_token == token


class TestWeightKernel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grnet_table_bit_identical(self, backend):
        topo = build_grnet_topology()
        apply_traffic_sample(topo, "10am")
        snap = TopologySnapshot(topo)
        snap._force_backend = backend
        assert_tables_identical(
            snap.weight_table_with_nv(None, 10.0),
            weight_table_with_nv(topo, None, 10.0),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_offline_links_excluded_like_python_path(self, backend):
        topo = small_topology()
        topo.link_named("ab").set_background_mbps(4.0)
        topo.link_named("bc").online = False
        snap = TopologySnapshot(topo)
        snap._force_backend = backend
        assert_tables_identical(
            snap.weight_table_with_nv(None, 10.0),
            weight_table_with_nv(topo, None, 10.0),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_offline_node_gets_nv_zero_in_both_paths(self, backend):
        # The shared degenerate-topology rule: a node whose every link is
        # offline prices at NV 0.0 — no error — in both implementations.
        topo = small_topology()
        topo.link_named("ab").online = False
        topo.link_named("ad").online = False  # node A fully offline
        snap = TopologySnapshot(topo)
        snap._force_backend = backend
        compiled = snap.weight_table_with_nv(None, 10.0)
        python = weight_table_with_nv(topo, None, 10.0)
        assert compiled[1]["A"] == 0.0
        assert node_validation(topo, "A") == 0.0
        assert_tables_identical(compiled, python)

    def test_linkless_node_raises_same_error_in_both_paths(self):
        topo = Topology(name="t")
        topo.add_node(Node("A"))
        topo.add_node(Node("B"))
        topo.add_node(Node("C"))
        topo.add_link(Link("A", "B", capacity_mbps=10.0))
        snap = TopologySnapshot(topo)
        with pytest.raises(ReproError) as compiled_err:
            snap.weight_table_with_nv(None, 10.0)
        with pytest.raises(ReproError) as python_err:
            weight_table_with_nv(topo, None, 10.0)
        assert str(compiled_err.value) == str(python_err.value)
        assert "'C'" in str(compiled_err.value)

    def test_bad_normalization_constant_raises_repro_error(self):
        snap = TopologySnapshot(small_topology())
        with pytest.raises(ReproError, match="normalization constant"):
            snap.weight_table_with_nv(None, 0.0)

    def test_used_of_called_once_per_link(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        calls = []
        snap.weight_table_with_nv(lambda link: calls.append(link.name) or 0.0, 10.0)
        assert sorted(calls) == sorted(link.name for link in topo.links())

    def test_table_carries_aligned_value_array(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        table = snap.weight_table(None, 10.0)
        assert isinstance(table, CompiledWeightTable)
        assert table.link_values == list(table.values())
        assert table.structure_token == snap.structure_token


class TestCompiledDijkstra:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grnet_trees_bit_identical(self, backend):
        topo = build_grnet_topology()
        apply_traffic_sample(topo, "4pm")
        snap = TopologySnapshot(topo)
        snap._force_backend = backend
        table = snap.weight_table(None, 10.0)
        for source in topo.node_uids():
            compiled = snap.dijkstra(source, table)
            python = dijkstra(topo, source, lambda link: table[link.name])
            assert compiled.source == python.source
            assert list(compiled.distances.items()) == list(python.distances.items())
            assert list(compiled.predecessors.items()) == list(
                python.predecessors.items()
            )
            assert compiled.node_path("U2") == python.node_path("U2")

    def test_accepts_plain_dict_weights(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        table = dict(snap.weight_table(None, 10.0))
        python = dijkstra(topo, "A", lambda link: table[link.name])
        compiled = snap.dijkstra("A", table)
        assert compiled.distances == python.distances

    def test_unknown_source_matches_python_error(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        with pytest.raises(TopologyError) as compiled_err:
            snap.dijkstra("Z", {})
        with pytest.raises(TopologyError) as python_err:
            dijkstra(topo, "Z", lambda link: 1.0)
        assert str(compiled_err.value) == str(python_err.value)

    def test_invalid_weight_matches_python_error(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        weights = {name: 1.0 for name in snap._link_names}
        weights["bc"] = -2.0
        with pytest.raises(RoutingError) as compiled_err:
            snap.dijkstra("A", weights)
        with pytest.raises(RoutingError) as python_err:
            dijkstra(topo, "A", lambda link: weights[link.name])
        assert str(compiled_err.value) == str(python_err.value)

    def test_offline_negative_weight_never_scanned(self):
        # The python path validates weights lazily and skips offline links
        # before reading their weight; the compiled path must too.
        topo = small_topology()
        topo.link_named("bc").online = False
        snap = TopologySnapshot(topo)
        weights = {name: 1.0 for name in snap._link_names}
        weights["bc"] = float("nan")
        compiled = snap.dijkstra("A", weights)
        python = dijkstra(topo, "A", lambda link: weights[link.name])
        assert list(compiled.distances.items()) == list(python.distances.items())

    def test_partition_leaves_unreachable_absent(self):
        topo = small_topology()
        topo.link_named("cd").online = False
        topo.link_named("bc").online = False
        snap = TopologySnapshot(topo)
        table = snap.weight_table(None, 10.0)
        compiled = snap.dijkstra("C", table)
        python = dijkstra(topo, "C", lambda link: table[link.name])
        assert not compiled.reaches("A")
        assert list(compiled.distances.items()) == list(python.distances.items())
        assert list(compiled.predecessors.items()) == list(python.predecessors.items())

    def test_stale_table_after_rebuild_falls_back_to_dict_lookup(self):
        topo = small_topology()
        snap = TopologySnapshot(topo)
        table = snap.weight_table(None, 10.0)
        topo.add_node(Node("E"))
        topo.add_link(Link("D", "E", capacity_mbps=10.0, name="de"))
        fresh = snap.weight_table(None, 10.0)  # refresh + rebuild
        assert table.structure_token != snap.structure_token
        # The stale table no longer covers link "de"; using it must fail
        # loudly (KeyError), never silently reuse a misaligned array.
        with pytest.raises(KeyError):
            snap.dijkstra("A", table)
        result = snap.dijkstra("A", fresh)
        assert result.reaches("E")
