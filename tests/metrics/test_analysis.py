"""Unit tests for the post-run analysis module."""

import pytest

from repro.client.requests import VideoRequest
from repro.core.session import ClusterRecord, SessionRecord
from repro.metrics.analysis import analyze_sessions, render_analysis


def make_record(title_id, clusters, switches=0, completed=True):
    request = VideoRequest(
        client_id="c", home_uid="A", title_id=title_id, submitted_at=0.0
    )
    if completed:
        request.mark_completed()
    record = SessionRecord(request=request)
    record.clusters = clusters
    record.switch_count = switches
    if completed:
        record.completed_at = 100.0
    return record


def cluster(index, path, server=None, size=25.0):
    return ClusterRecord(
        index=index,
        server_uid=server or path[-1],
        path_nodes=tuple(path),
        rate_mbps=1.0,
        start=float(index),
        end=float(index) + 1.0,
        size_mb=size,
        switched=False,
        qos_violated=False,
    )


@pytest.fixture
def records():
    return [
        make_record(
            "t1",
            [cluster(0, ["A", "B"], size=50.0), cluster(1, ["A", "B"], size=50.0)],
        ),
        make_record(
            "t1",
            [cluster(0, ["A", "B", "C"], size=30.0), cluster(1, ["A", "B"], size=30.0)],
            switches=1,
        ),
        make_record("t2", [cluster(0, ["A"], size=10.0)]),
    ]


class TestAnalyzeSessions:
    def test_server_load_totals(self, records):
        analysis = analyze_sessions(records)
        by_uid = {row.server_uid: row for row in analysis.server_load}
        assert by_uid["B"].megabytes == pytest.approx(130.0)
        assert by_uid["B"].clusters == 3
        assert by_uid["B"].sessions == 2
        assert by_uid["C"].megabytes == pytest.approx(30.0)
        assert by_uid["A"].megabytes == pytest.approx(10.0)

    def test_server_load_sorted_heaviest_first(self, records):
        analysis = analyze_sessions(records)
        megabytes = [row.megabytes for row in analysis.server_load]
        assert megabytes == sorted(megabytes, reverse=True)
        assert analysis.top_server() == "B"

    def test_link_load_counts_every_hop(self, records):
        analysis = analyze_sessions(records)
        by_link = {row.endpoints: row for row in analysis.link_load}
        # A-B carried: 50+50 (session 1) + 30+30 (session 2) = 160.
        assert by_link[("A", "B")].megabytes == pytest.approx(160.0)
        # B-C carried the 30 MB of the 2-hop cluster only.
        assert by_link[("B", "C")].megabytes == pytest.approx(30.0)
        assert analysis.busiest_link() == ("A", "B")

    def test_local_clusters_touch_no_links(self):
        analysis = analyze_sessions([make_record("t", [cluster(0, ["A"])])])
        assert analysis.link_load == []
        with pytest.raises(ValueError):
            analysis.busiest_link()

    def test_title_demand_counts_requests(self, records):
        analysis = analyze_sessions(records)
        assert analysis.title_demand == [("t1", 2), ("t2", 1)]

    def test_switch_histogram(self, records):
        analysis = analyze_sessions(records)
        assert analysis.switch_histogram == {0: 2, 1: 1}

    def test_empty_input(self):
        analysis = analyze_sessions([])
        assert analysis.server_load == []
        assert analysis.title_demand == []
        with pytest.raises(ValueError):
            analysis.top_server()


class TestRenderAnalysis:
    def test_report_sections(self, records):
        text = render_analysis(analyze_sessions(records))
        assert "Sources (by bytes served):" in text
        assert "Links (by VoD bytes carried):" in text
        assert "Titles (by requests):" in text
        assert "A-B" in text
        assert "t1" in text

    def test_top_limits_rows(self, records):
        text = render_analysis(analyze_sessions(records), top=1)
        assert "C" not in [line.split()[0] for line in text.splitlines() if line.startswith("  ")]
