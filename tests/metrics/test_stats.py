"""Unit tests for summary statistics."""

import pytest

from repro.errors import ReproError
from repro.metrics.stats import (
    confidence_interval_95,
    histogram,
    mean,
    percentile,
    stddev,
)


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert mean([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            mean([])


class TestStddev:
    def test_known_value(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.13808993, abs=1e-6
        )

    def test_single_value_is_zero(self):
        assert stddev([5.0]) == 0.0

    def test_constant_sequence_is_zero(self):
        assert stddev([3.0] * 10) == 0.0


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50.0) == 3.0

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            percentile([1.0], 101.0)
        with pytest.raises(ReproError):
            percentile([1.0], -1.0)

    def test_single_value(self):
        assert percentile([4.0], 95.0) == 4.0


class TestConfidenceInterval:
    def test_contains_mean(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = confidence_interval_95(data)
        assert low <= mean(data) <= high

    def test_single_observation_degenerate(self):
        assert confidence_interval_95([3.0]) == (3.0, 3.0)

    def test_tighter_with_more_data(self):
        narrow = confidence_interval_95([5.0, 5.1, 4.9] * 30)
        wide = confidence_interval_95([5.0, 5.1, 4.9])
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


class TestHistogram:
    def test_counts_sum_to_n(self):
        data = [0.5, 1.5, 2.5, 2.6, 2.7]
        bins = histogram(data, 3)
        assert sum(count for _, count in bins) == 5

    def test_constant_data_single_bin(self):
        assert histogram([2.0, 2.0], 5) == [(2.0, 2)]

    def test_invalid_bins_rejected(self):
        with pytest.raises(ReproError):
            histogram([1.0], 0)
