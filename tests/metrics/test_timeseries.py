"""Unit tests for the time series."""

import pytest

from repro.errors import ReproError
from repro.metrics.timeseries import TimeSeries


class TestCapacity:
    def test_ring_drops_oldest_first(self):
        series = TimeSeries("ring", capacity=3)
        for t in range(5):
            series.record(float(t), float(t * 10))
        assert len(series) == 3
        assert series.dropped_count == 2
        assert series.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_unbounded_by_default(self):
        series = TimeSeries()
        for t in range(100):
            series.record(float(t), 1.0)
        assert len(series) == 100
        assert series.dropped_count == 0

    def test_on_drop_spills_evicted_samples_in_order(self):
        spilled = []
        series = TimeSeries(
            "t",
            capacity=2,
            on_drop=lambda times, values: spilled.append((list(times), list(values))),
        )
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert spilled == []  # nothing spilled until the ring overflows
        series.record(2.0, 3.0)
        assert spilled == [([0.0], [1.0])]
        assert series.dropped_count == 1
        assert series.samples() == [(1.0, 2.0), (2.0, 3.0)]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries(capacity=0)


class TestRecording:
    def test_append_and_length(self):
        series = TimeSeries("util")
        series.record(0.0, 0.5)
        series.record(10.0, 0.7)
        assert len(series) == 2
        assert series.samples() == [(0.0, 0.5), (10.0, 0.7)]

    def test_same_time_allowed(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)
        assert len(series) == 2

    def test_time_regression_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ReproError):
            series.record(5.0, 2.0)

    def test_last(self):
        series = TimeSeries()
        assert series.last() is None
        series.record(1.0, 9.0)
        assert series.last() == (1.0, 9.0)


class TestValueAt:
    def test_sample_and_hold(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert series.value_at(0.0) == 1.0
        assert series.value_at(9.99) == 1.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(50.0) == 2.0

    def test_before_first_sample_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ReproError):
            series.value_at(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries().value_at(0.0)


class TestTimeAverage:
    def test_piecewise_constant_integral(self):
        series = TimeSeries()
        series.record(0.0, 1.0)  # 1.0 for 10 s
        series.record(10.0, 3.0)  # 3.0 for 10 s
        assert series.time_average(until=20.0) == pytest.approx(2.0)

    def test_default_horizon_is_last_sample(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 3.0)
        # Integral over [0, 10): only the first segment counts.
        assert series.time_average() == pytest.approx(1.0)

    def test_single_sample(self):
        series = TimeSeries()
        series.record(5.0, 4.2)
        assert series.time_average() == 4.2

    def test_unequal_segments(self):
        series = TimeSeries()
        series.record(0.0, 0.0)
        series.record(30.0, 1.0)
        assert series.time_average(until=40.0) == pytest.approx(0.25)

    def test_horizon_before_first_rejected(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        with pytest.raises(ReproError):
            series.time_average(until=5.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries().time_average()


class TestMaximum:
    def test_maximum(self):
        series = TimeSeries()
        for t, v in [(0.0, 1.0), (1.0, 5.0), (2.0, 3.0)]:
            series.record(t, v)
        assert series.maximum() == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            TimeSeries().maximum()
