"""Unit tests for session-metric aggregation."""

import pytest

from repro.client.requests import VideoRequest
from repro.core.session import ClusterRecord, SessionRecord
from repro.metrics.collectors import summarize_sessions


def make_record(
    clusters,
    completed=True,
    startup=10.0,
    stall=0.0,
    switches=0,
    submitted=0.0,
):
    request = VideoRequest(client_id="c", home_uid="A", title_id="t", submitted_at=submitted)
    if completed:
        request.mark_completed()
    else:
        request.mark_failed("x")
    record = SessionRecord(request=request)
    record.clusters = clusters
    record.startup_delay_s = startup
    record.stall_s = stall
    record.switch_count = switches
    if completed:
        record.completed_at = 100.0
    return record


def cluster(index, path, size=25.0, qos=False, switched=False):
    return ClusterRecord(
        index=index,
        server_uid=path[-1],
        path_nodes=tuple(path),
        rate_mbps=1.0,
        start=0.0,
        end=1.0,
        size_mb=size,
        switched=switched,
        qos_violated=qos,
    )


class TestSummarize:
    def test_empty_batch(self):
        metrics = summarize_sessions([])
        assert metrics.session_count == 0
        assert metrics.completed_count == 0
        assert metrics.mean_startup_s == 0.0
        assert metrics.megabyte_hops == 0.0

    def test_counts_and_failures(self):
        records = [
            make_record([cluster(0, ["A", "B"])]),
            make_record([], completed=False),
        ]
        metrics = summarize_sessions(records)
        assert metrics.session_count == 2
        assert metrics.completed_count == 1
        assert metrics.failed_count == 1

    def test_megabyte_hops(self):
        records = [
            make_record(
                [cluster(0, ["A", "B", "C"], size=50.0), cluster(1, ["A", "B"], size=50.0)]
            )
        ]
        metrics = summarize_sessions(records)
        assert metrics.megabyte_hops == pytest.approx(50.0 * 2 + 50.0 * 1)
        assert metrics.mean_hop_count == pytest.approx(1.5)

    def test_local_serve_fraction(self):
        records = [
            make_record([cluster(0, ["A"])]),
            make_record([cluster(0, ["A", "B"])]),
        ]
        metrics = summarize_sessions(records)
        assert metrics.local_serve_fraction == pytest.approx(0.5)

    def test_qos_violation_fraction(self):
        records = [
            make_record([cluster(0, ["A", "B"], qos=True), cluster(1, ["A", "B"])])
        ]
        metrics = summarize_sessions(records)
        assert metrics.qos_violation_fraction == pytest.approx(0.5)

    def test_switch_aggregation(self):
        records = [
            make_record([cluster(0, ["A", "B"])], switches=2),
            make_record([cluster(0, ["A", "B"])], switches=1),
        ]
        metrics = summarize_sessions(records)
        assert metrics.total_switches == 3
        assert metrics.switches_per_session == pytest.approx(1.5)

    def test_startup_statistics(self):
        records = [
            make_record([cluster(0, ["A"])], startup=10.0),
            make_record([cluster(0, ["A"])], startup=30.0),
        ]
        metrics = summarize_sessions(records)
        assert metrics.mean_startup_s == pytest.approx(20.0)
        assert metrics.p95_startup_s == pytest.approx(29.0)

    def test_failed_sessions_excluded_from_quality_metrics(self):
        records = [
            make_record([cluster(0, ["A", "B"], qos=True)], completed=False, startup=99.0),
            make_record([cluster(0, ["A"])], startup=5.0),
        ]
        metrics = summarize_sessions(records)
        assert metrics.mean_startup_s == pytest.approx(5.0)
        assert metrics.qos_violation_fraction == 0.0


class TestSummarizeEdgeCases:
    def test_all_failed_batch_yields_zero_rates_not_errors(self):
        records = [
            make_record([], completed=False),
            make_record([cluster(0, ["A", "B"], qos=True)], completed=False, switches=3),
        ]
        metrics = summarize_sessions(records)
        assert metrics.session_count == 2
        assert metrics.completed_count == 0
        assert metrics.failed_count == 2
        assert metrics.local_serve_fraction == 0.0
        assert metrics.mean_startup_s == 0.0
        assert metrics.p95_startup_s == 0.0
        assert metrics.switches_per_session == 0.0
        assert metrics.qos_violation_fraction == 0.0
        assert metrics.mean_hop_count == 0.0
        assert metrics.megabyte_hops == 0.0
        # Switches of failed sessions are excluded, like the other
        # quality metrics.
        assert metrics.total_switches == 0

    def test_completed_session_with_zero_clusters(self):
        # Degenerate but reachable (zero-size titles): no division by the
        # empty cluster list, and a clusterless session is vacuously local.
        metrics = summarize_sessions([make_record([], startup=7.0)])
        assert metrics.completed_count == 1
        assert metrics.local_serve_fraction == 1.0
        assert metrics.qos_violation_fraction == 0.0
        assert metrics.mean_hop_count == 0.0
        assert metrics.megabyte_hops == 0.0
        assert metrics.mean_startup_s == pytest.approx(7.0)

    def test_p95_on_single_element_startup_list(self):
        metrics = summarize_sessions([make_record([cluster(0, ["A"])], startup=42.0)])
        assert metrics.p95_startup_s == pytest.approx(42.0)
        assert metrics.mean_startup_s == pytest.approx(42.0)

    def test_in_flight_sessions_count_neither_completed_nor_failed(self):
        request = VideoRequest(
            client_id="c", home_uid="A", title_id="t", submitted_at=0.0
        )
        record = SessionRecord(request=request)  # still streaming
        metrics = summarize_sessions([record])
        assert metrics.session_count == 1
        assert metrics.completed_count == 0
        assert metrics.failed_count == 0
