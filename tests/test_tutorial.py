"""The tutorial's python blocks must execute, in order, as written.

Documentation that cannot run is documentation that has rotted; this test
concatenates every ```python``` block in docs/TUTORIAL.md and executes it.
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_snippets_execute():
    text = TUTORIAL.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 6, "tutorial lost its code blocks"
    code = "\n".join(blocks)
    code = "\n".join(line for line in code.splitlines() if line.strip() != "...")
    namespace = {}
    exec(compile(code, str(TUTORIAL), "exec"), namespace)  # noqa: S102
    # Spot-check the state the walkthrough builds up.
    record = namespace["record"]
    assert record.servers_used == ["U4"]
    assert namespace["service"].servers["U2"].has_title("movie-1")
    assert "U7" in namespace["service"].servers  # the expansion step ran


def test_tutorial_mentions_every_config_extension():
    text = TUTORIAL.read_text(encoding="utf-8")
    for flag in (
        "use_server_load_in_vra",
        "strict_qos_admission",
        "server_overrides",
        "StripCachingEvaluator",
    ):
        assert flag in text, flag
