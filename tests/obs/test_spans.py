"""Unit tests for per-request session spans."""

from repro.obs.spans import SessionSpan
from repro.sim.trace import Tracer


def make_span(sink=None):
    return SessionSpan(
        request_id=7,
        client_id="c1",
        title_id="t1",
        home_uid="U2",
        started_at=100.0,
        sink=sink,
    )


class TestLifecycle:
    def test_open_until_finished(self):
        span = make_span()
        assert span.open
        assert span.duration_s is None
        span.finish(160.0, "completed")
        assert not span.open
        assert span.status == "completed"
        assert span.duration_s == 60.0
        assert span.events[-1].kind == "finished"

    def test_event_queries(self):
        span = make_span()
        span.add(100.0, "vra.decision", chosen_uid="U4")
        span.add(130.0, "cluster.delivered", index=0, server_uid="U4")
        span.add(130.0, "switch", to_server="U5", cluster=1)
        span.add(130.0, "vra.decision", chosen_uid="U5")
        span.add(150.0, "cluster.delivered", index=1, server_uid="U5")
        assert span.decision_count == 2
        assert span.switch_count == 1
        assert span.servers_used == ["U4", "U5"]


class TestSink:
    def test_events_forward_to_tracer_under_span_categories(self):
        tracer = Tracer()
        span = make_span(sink=tracer)
        span.add(100.0, "vra.decision", chosen_uid="U4")
        span.finish(160.0, "completed")
        assert tracer.categories() == ["span.finished", "span.vra.decision"]
        event = tracer.events("span.vra.decision")[0]
        assert event.data["request_id"] == 7
        assert event.data["chosen_uid"] == "U4"
        assert "c1/t1" in event.message

    def test_no_sink_is_fine(self):
        span = make_span()
        span.add(100.0, "submitted")
        assert len(span.events) == 1


class TestExportShape:
    def test_to_dict_is_json_ready(self):
        import json

        span = make_span()
        span.add(100.0, "vra.decision", epoch=("db", 1, 2), cost=0.5)
        span.finish(160.0, "completed")
        payload = span.to_dict()
        # Tuples coerced to lists, so json round-trips losslessly.
        assert payload["events"][0]["epoch"] == ["db", 1, 2]
        assert json.loads(json.dumps(payload)) == json.loads(json.dumps(payload))
        assert payload["request_id"] == 7
        assert payload["decision_count"] == 1
        assert payload["status"] == "completed"
