"""Unit tests for write-behind streaming: hooks, manifest, footer, memory."""

import json
from collections import Counter

import repro
from repro.core.service import ServiceConfig, VoDService
from repro.obs.export import telemetry_rows
from repro.obs.sink import JsonlTelemetrySink
from repro.obs.stream import (
    MANIFEST_SCHEMA,
    StreamingTelemetry,
    config_hash,
    run_manifest,
    topology_fingerprint,
)
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def build_service(topology, **overrides):
    sim = Simulator(start_time=8 * 3600.0)
    config = ServiceConfig(
        cluster_mb=100.0,
        use_reported_stats=False,
        observability=True,
        telemetry_period_s=30.0,
        **overrides,
    )
    service = VoDService(sim, topology, config)
    service.seed_title("U4", VideoTitle("m", size_mb=200.0, duration_s=1200.0))
    return service


def drive(service):
    service.start()
    service.request_by_home("U2", "m")
    service.sim.run(until=service.sim.now + 3600.0)


def read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


def sample_multiset(rows):
    return Counter(
        (r["name"], tuple(sorted(r["labels"].items())), r["time"], r["value"])
        for r in rows
        if r["kind"] == "sample"
    )


class TestStreaming:
    def test_spans_flush_on_close_and_leave_memory(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(
            service, JsonlTelemetrySink(path), seed=7, label="unit"
        )
        streamer.start()
        drive(service)
        # The session closed mid-run: its span went to the sink, not RAM.
        assert service.spans == []
        assert streamer.spans_flushed == 1
        footer = streamer.finish()
        span_rows = [r for r in read_jsonl(path) if r["kind"] == "span"]
        assert len(span_rows) == 1
        assert span_rows[0]["status"] == "completed"
        assert footer["rows_by_kind"]["span"] == 1

    def test_finish_restores_hooks(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        streamer = StreamingTelemetry(service, JsonlTelemetrySink(tmp_path / "r.jsonl"))
        streamer.start()
        assert service.on_span_finished is not None
        streamer.finish()
        assert service.on_span_finished is None
        for _, series in service.telemetry.series_for("link.utilization"):
            assert series.on_drop is None

    def test_ring_spill_loses_no_samples(self, grnet_8am, tmp_path):
        # Reference: ample rings, classic buffered export.
        buffered = build_service(grnet_8am, telemetry_capacity=4096)
        drive(buffered)
        expected = sample_multiset(
            telemetry_rows(buffered.obs, buffered.telemetry, buffered.spans)
        )

        # Same deterministic run, tiny rings: overflow spills to the sink.
        service = build_service(grnet_8am, telemetry_capacity=8)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(service, JsonlTelemetrySink(path))
        streamer.start()
        drive(service)
        streamer.finish()
        assert streamer.samples_spilled > 0
        assert sample_multiset(read_jsonl(path)) == expected

    def test_keep_spans_does_not_double_emit(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(
            service, JsonlTelemetrySink(path), keep_spans=True
        )
        streamer.start()
        drive(service)
        assert len(service.spans) == 1  # retained for in-memory consumers
        streamer.finish()
        span_rows = [r for r in read_jsonl(path) if r["kind"] == "span"]
        assert len(span_rows) == 1


class TestBuffered:
    def test_stream_false_produces_the_same_artifact_frame(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(
            service, JsonlTelemetrySink(path), seed=3, stream=False
        )
        streamer.start()
        drive(service)
        assert len(service.spans) == 1  # nothing hooked, nothing dropped
        assert streamer.spans_flushed == 0
        streamer.finish()
        rows = read_jsonl(path)
        assert rows[0]["kind"] == "manifest"
        assert rows[-1]["kind"] == "footer"
        assert sum(1 for r in rows if r["kind"] == "span") == 1


class TestManifest:
    def test_header_fields(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(
            service, JsonlTelemetrySink(path), seed=42, label="manifest-test"
        )
        streamer.start()
        streamer.finish()
        head = read_jsonl(path)[0]
        assert head["kind"] == "manifest"
        assert head["schema"] == MANIFEST_SCHEMA
        assert head["code_version"] == repro.__version__
        assert head["seed"] == 42
        assert head["label"] == "manifest-test"
        assert head["config_hash"] == config_hash(service.config)
        assert head["topology"]["node_count"] == 6
        assert head["topology"]["link_count"] == 7
        assert len(head["topology"]["hash"]) == 64
        assert head["knobs"]["phase_profiling"] is False
        assert head["knobs"]["telemetry_period_s"] == 30.0

    def test_config_hash_tracks_config_changes(self, grnet_8am):
        a = build_service(grnet_8am)
        b = build_service(grnet_8am, telemetry_capacity=8)
        assert config_hash(a.config) != config_hash(b.config)
        assert config_hash(a.config) == config_hash(build_service(grnet_8am).config)

    def test_topology_fingerprint_is_stable(self, grnet_8am, grnet):
        assert topology_fingerprint(grnet_8am) == topology_fingerprint(grnet_8am)
        assert (
            topology_fingerprint(grnet_8am)["hash"]
            == topology_fingerprint(grnet)["hash"]
        )  # background traffic is not part of the wiring fingerprint

    def test_manifest_is_json_serialisable(self, grnet_8am):
        service = build_service(grnet_8am)
        payload = run_manifest(service, seed=1, label="x")
        assert json.loads(json.dumps(payload))["schema"] == MANIFEST_SCHEMA


class TestFooter:
    def test_totals_and_environment(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        path = tmp_path / "run.jsonl"
        streamer = StreamingTelemetry(service, JsonlTelemetrySink(path))
        streamer.start()
        drive(service)
        footer = streamer.finish()
        assert footer["rows_written"] == sum(footer["rows_by_kind"].values())
        assert footer["rows_written"] == streamer.sink.written
        assert footer["spans_flushed"] == 1
        assert footer["sim_time_end"] == service.sim.now
        assert footer["events_fired"] == service.sim.events_fired
        assert footer["wall_time_s"] >= 0.0
        assert footer["peak_rss_kb"] > 0
        assert footer["peak_resident_rows"] >= 1
        tail = read_jsonl(path)[-1]
        assert tail["kind"] == "footer"
        assert tail["rows_written"] == footer["rows_written"]

    def test_finish_is_idempotent(self, grnet_8am, tmp_path):
        service = build_service(grnet_8am)
        streamer = StreamingTelemetry(service, JsonlTelemetrySink(tmp_path / "r.jsonl"))
        streamer.start()
        first = streamer.finish()
        assert streamer.finish() is first
        assert streamer.sink.closed
