"""Unit tests for telemetry export and summaries."""

import csv
import io
import json

from repro.obs.export import (
    CSV_FIELDS,
    export_csv,
    export_jsonl,
    summarize_telemetry,
    telemetry_rows,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.obs.spans import SessionSpan
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def make_run():
    """A tiny instrumented run: one gauge, one counter, one histogram, one span."""
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("link.utilization", labels={"link": "a-b"}, callback=lambda: 0.5)
    counter = registry.counter("vra.decisions")
    counter.inc(3.0)
    hist = registry.histogram("vra.decision_latency_ms")
    hist.observe(0.2)
    sampler = TelemetrySampler(sim, registry, period_s=10.0)
    sampler.start()
    sim.run(until=20.0)
    span = SessionSpan(
        request_id=1, client_id="c", title_id="t", home_uid="U1", started_at=0.0
    )
    span.add(0.0, "submitted")
    span.finish(5.0, "completed")
    return registry, sampler, [span]


class TestRows:
    def test_row_kinds_and_contents(self):
        registry, sampler, spans = make_run()
        rows = list(telemetry_rows(registry, sampler, spans))
        kinds = {row["kind"] for row in rows}
        assert kinds == {"sample", "counter", "histogram", "span"}
        sample = next(r for r in rows if r["kind"] == "sample" and r["name"] == "link.utilization")
        assert sample["labels"] == {"link": "a-b"}
        assert sample["value"] == 0.5
        counter = next(r for r in rows if r["kind"] == "counter")
        assert counter["value"] == 3.0
        histogram = next(r for r in rows if r["kind"] == "histogram")
        assert histogram["count"] == 1
        span_row = next(r for r in rows if r["kind"] == "span")
        assert span_row["status"] == "completed"

    def test_registry_only_rows(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        rows = list(telemetry_rows(registry))
        assert [r["kind"] for r in rows] == ["counter"]


class TestJsonl:
    def test_every_line_is_valid_json(self):
        registry, sampler, spans = make_run()
        out = io.StringIO()
        count = export_jsonl(telemetry_rows(registry, sampler, spans), out)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == count > 0
        parsed = [json.loads(line) for line in lines]
        assert {row["kind"] for row in parsed} == {"sample", "counter", "histogram", "span"}


class TestCsv:
    def test_header_and_span_accounting(self):
        registry, sampler, spans = make_run()
        out = io.StringIO()
        written, skipped = export_csv(telemetry_rows(registry, sampler, spans), out)
        rows = list(csv.reader(io.StringIO(out.getvalue())))
        assert rows[0] == CSV_FIELDS
        assert rows[0][:5] == ["kind", "name", "labels", "time", "value"]
        assert len(rows) - 1 == written
        assert skipped == 1  # the span row does not fit the flat table
        kinds = {row[0] for row in rows[1:]}
        assert "span" not in kinds
        assert {"sample", "counter", "histogram"} <= kinds
        sample = next(row for row in rows[1:] if row[0] == "sample")
        assert sample[2] == "link=a-b"

    def test_histogram_distribution_columns(self):
        registry = MetricsRegistry()
        hist = registry.histogram("vra.decision_latency_ms")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        out = io.StringIO()
        written, skipped = export_csv(telemetry_rows(registry), out)
        assert (written, skipped) == (1, 0)
        rows = list(csv.DictReader(io.StringIO(out.getvalue())))
        row = rows[0]
        assert row["kind"] == "histogram"
        assert float(row["count"]) == 4
        assert float(row["mean"]) == 2.5
        assert float(row["value"]) == 2.5  # headline column mirrors the mean
        assert float(row["p50"]) == 2.0
        assert float(row["p95"]) == 4.0
        assert float(row["max"]) == 4.0
        # Non-histogram rows leave the distribution columns empty.
        registry.counter("c").inc()
        out = io.StringIO()
        export_csv(telemetry_rows(registry), out)
        counter_row = next(
            r for r in csv.DictReader(io.StringIO(out.getvalue())) if r["kind"] == "counter"
        )
        assert counter_row["count"] == ""
        assert counter_row["p95"] == ""


class TestSummary:
    def test_disabled_registry_summary(self):
        text = summarize_telemetry(MetricsRegistry(enabled=False))
        assert "observability disabled" in text

    def test_enabled_summary_mentions_instruments_and_trace_drops(self):
        registry, sampler, spans = make_run()
        tracer = Tracer(capacity=1)
        tracer.record(0.0, "a", "x")
        tracer.record(1.0, "b", "y")
        text = summarize_telemetry(registry, sampler, spans, tracer)
        assert "instruments:" in text
        assert "vra.decisions" in text
        assert "spans: 1 sessions (1 finished)" in text
        assert "1 dropped by capacity bound" in text
