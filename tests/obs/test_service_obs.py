"""Integration tests: the service's unified telemetry layer end to end."""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.storage.video import VideoTitle


def run_service(topology, observability=True, tracer=None, period=30.0):
    sim = Simulator(start_time=8 * 3600.0)
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=100.0,
            use_reported_stats=False,
            observability=observability,
            telemetry_period_s=period,
        ),
        tracer=tracer,
    )
    service.seed_title("U4", VideoTitle("m", size_mb=200.0, duration_s=1200.0))
    service.start()
    service.request_by_home("U2", "m")
    sim.run(until=sim.now + 3600.0)
    return service


class TestEnabled:
    def test_instrument_families_cover_every_subsystem(self, grnet_8am):
        service = run_service(grnet_8am)
        families = set(service.obs.families())
        assert {
            "link.utilization",
            "link.reserved_mbps",
            "server.cache_fraction",
            "server.stream_load",
            "dma.points_table_size",
            "routing.cache_hit_rate",
            "vra.decisions",
            "vra.decision_latency_ms",
            "service.requests_submitted",
            "session.clusters_delivered",
            "sim.events_fired",
            "snmp.rounds",
        } <= families

    def test_counters_and_histograms_reflect_the_run(self, grnet_8am):
        service = run_service(grnet_8am)
        obs = service.obs
        assert obs.counter("service.requests_submitted").value == 1.0
        assert obs.counter("service.sessions_completed").value == 1.0
        assert obs.counter("vra.decisions").value >= 2.0
        assert obs.counter("session.clusters_delivered").value == 2.0
        latency = obs.histogram("vra.decision_latency_ms")
        assert latency.count >= 2
        assert latency.max > 0.0
        assert obs.histogram("session.startup_s").count == 1

    def test_sampler_records_link_utilisation_timeline(self, grnet_8am):
        service = run_service(grnet_8am)
        pairs = service.telemetry.series_for("link.utilization")
        assert len(pairs) == service.topology.link_count
        assert all(len(series) > 1 for _, series in pairs)
        # The transfer reserved bandwidth somewhere: some link peaked > 0.
        assert any(series.maximum() > 0.0 for _, series in pairs)

    def test_span_follows_the_request_end_to_end(self, grnet_8am):
        tracer = Tracer()
        service = run_service(grnet_8am, tracer=tracer)
        assert len(service.spans) == 1
        span = service.spans[0]
        assert not span.open
        assert span.status == "completed"
        assert span.home_uid == "U2"
        assert span.decision_count == 2  # one per 100 MB cluster
        assert span.servers_used == ["U4"]
        decision = span.events_of("vra.decision")[0]
        assert decision.attrs["chosen_uid"] == "U4"
        assert decision.attrs["latency_ms"] > 0.0
        assert isinstance(decision.attrs["epoch"], list)
        # Span events also landed in the tracer sink.
        assert "span.vra.decision" in tracer.categories()
        assert "span.cluster.delivered" in tracer.categories()

    def test_per_server_labeled_counters(self, grnet_8am):
        service = run_service(grnet_8am)
        serves = {
            c.label_dict()["server"]: c.value
            for c in service.obs.find("server.serves")
        }
        assert serves["U4"] == 2.0  # sourced both clusters
        assert serves["U2"] == 0.0


class TestDisabled:
    def test_disabled_service_registers_nothing(self, grnet_8am):
        service = run_service(grnet_8am, observability=False)
        assert len(service.obs) == 0
        assert service.spans == []
        assert service.telemetry.series() == {}
        # The run itself is unaffected.
        assert service.sessions[0].completed

    def test_explicit_registry_overrides_config(self, grnet_8am):
        from repro.obs.registry import MetricsRegistry

        sim = Simulator(start_time=8 * 3600.0)
        registry = MetricsRegistry(enabled=True)
        service = VoDService(
            sim,
            grnet_8am,
            ServiceConfig(use_reported_stats=False),  # observability off
            registry=registry,
        )
        assert service.obs is registry
        assert len(registry) > 0


class TestRuntimeExpansion:
    def test_added_server_gets_instruments_and_gauges(self, grnet_8am):
        from repro.network.link import Link
        from repro.network.node import Node

        service = run_service(grnet_8am)
        node = Node("U7", name="Larissa")
        link = Link("U7", "U1", capacity_mbps=34.0, name="Larissa-Athens")
        service.add_server(node, [link])
        assert any(
            c.label_dict().get("server") == "U7"
            for c in service.obs.find("server.serves")
        )
        service.telemetry.sample()
        assert service.telemetry.get(
            "link.utilization", {"link": "Larissa-Athens"}
        ) is not None


class TestBlockedRequests:
    def test_blocked_request_counted_and_span_finished(self, grnet_8am):
        sim = Simulator(start_time=8 * 3600.0)
        service = VoDService(
            sim,
            grnet_8am,
            ServiceConfig(
                cluster_mb=100.0,
                use_reported_stats=False,
                observability=True,
                strict_qos_admission=True,
            ),
        )
        # A title whose bitrate no GRNET link can sustain.
        service.seed_title(
            "U4", VideoTitle("huge", size_mb=2000.0, duration_s=60.0)
        )
        service.start()
        request, _, _ = service.request_by_home("U2", "huge")
        assert request.finished
        assert request.status.value == "failed"
        assert service.obs.counter("service.requests_blocked").value == 1.0
        assert len(service.spans) == 1
        assert service.spans[0].status == "failed"
