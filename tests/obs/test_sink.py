"""Unit tests for the streaming telemetry sinks (JSONL/CSV, rotation)."""

import csv
import io
import json

import pytest

from repro.errors import ReproError
from repro.obs.export import CSV_FIELDS
from repro.obs.sink import CsvTelemetrySink, JsonlTelemetrySink, open_sink

MANIFEST = {"seed": 23, "config_hash": "abc"}


def sample_row(i):
    return {"kind": "sample", "name": "g", "labels": {}, "time": float(i), "value": float(i)}


def read_jsonl(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestJsonl:
    def test_counts_and_frame(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlTelemetrySink(path)
        sink.write_manifest(MANIFEST)
        for i in range(3):
            sink.write(sample_row(i))
        sink.write({"kind": "span", "request_id": 1})
        sink.write_footer({"rows_written": sink.written})
        sink.close()
        assert sink.written == 4
        assert sink.skipped == 0
        assert sink.by_kind == {"sample": 3, "span": 1}
        rows = read_jsonl(path)
        assert rows[0]["kind"] == "manifest"
        assert rows[0]["seed"] == 23
        assert rows[-1] == {"kind": "footer", "rows_written": 4}
        # Control rows frame the data rows but are not counted.
        assert len(rows) == 4 + 2

    def test_handle_target_is_not_closed(self):
        out = io.StringIO()
        sink = JsonlTelemetrySink(out)
        sink.write(sample_row(0))
        sink.close()
        assert not out.closed
        assert json.loads(out.getvalue())["kind"] == "sample"

    def test_rotation_repeats_manifest_per_part(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlTelemetrySink(path, max_rows_per_file=2)
        sink.write_manifest(MANIFEST)
        for i in range(5):
            sink.write(sample_row(i))
        sink.write_footer({"done": True})
        sink.close()
        assert sink.part_paths == [path, tmp_path / "run.jsonl.1", tmp_path / "run.jsonl.2"]
        parts = [read_jsonl(p) for p in sink.part_paths]
        # Every part leads with the same manifest — each file is
        # self-describing on its own.
        for part in parts:
            assert part[0]["kind"] == "manifest"
            assert part[0]["seed"] == 23
        # 2 + 2 + 1 data rows; the footer lands in the last part.
        assert [len(p) - 1 for p in parts] == [2, 2, 2]
        assert parts[-1][-1]["kind"] == "footer"
        times = [row["time"] for part in parts for row in part if row["kind"] == "sample"]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_rotation_requires_a_path(self):
        with pytest.raises(ReproError):
            JsonlTelemetrySink(io.StringIO(), max_rows_per_file=10)

    def test_invalid_rotation_bound(self, tmp_path):
        with pytest.raises(ReproError):
            JsonlTelemetrySink(tmp_path / "x.jsonl", max_rows_per_file=0)


class TestCsv:
    def test_schema_and_span_accounting(self, tmp_path):
        path = tmp_path / "run.csv"
        sink = CsvTelemetrySink(path)
        sink.write_manifest(MANIFEST)
        sink.write(sample_row(1))
        sink.write({"kind": "histogram", "name": "h", "labels": {},
                    "count": 2, "mean": 1.5, "min": 1.0, "max": 2.0,
                    "p50": 1.0, "p95": 2.0})
        sink.write({"kind": "span", "request_id": 1})
        sink.write_footer({"rows_written": sink.written})
        sink.close()
        assert (sink.written, sink.skipped) == (2, 1)
        text = path.read_text(encoding="utf-8")
        comments = [line for line in text.splitlines() if line.startswith("# ")]
        manifest = json.loads(comments[0][2:])
        footer = json.loads(comments[1][2:])
        assert manifest["kind"] == "manifest"
        assert footer == {"kind": "footer", "rows_written": 2}
        data = [line for line in text.splitlines() if not line.startswith("# ")]
        rows = list(csv.reader(io.StringIO("\n".join(data))))
        assert rows[0] == CSV_FIELDS
        histogram = next(r for r in rows if r[0] == "histogram")
        assert histogram[5] == "2"  # count
        assert histogram[8] == "2.0"  # p95

    def test_open_sink_dispatch(self, tmp_path):
        assert isinstance(open_sink(tmp_path / "a.jsonl", "jsonl"), JsonlTelemetrySink)
        assert isinstance(open_sink(tmp_path / "a.csv", "csv"), CsvTelemetrySink)
        with pytest.raises(ReproError):
            open_sink(tmp_path / "a.xml", "xml")
