"""Unit tests for the sim-time telemetry sampler."""

import pytest

from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.sim.engine import Simulator


class TestSampling:
    def test_gauges_sampled_on_the_simulated_clock(self):
        sim = Simulator()
        registry = MetricsRegistry()
        box = {"v": 1.0}
        registry.gauge("g", callback=lambda: box["v"])
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()

        sim.schedule_at(15.0, lambda: box.update(v=5.0), name="bump")
        sim.run(until=30.0)

        series = sampler.get("g")
        assert series is not None
        assert series.samples() == [(0.0, 1.0), (10.0, 1.0), (20.0, 5.0), (30.0, 5.0)]
        assert sampler.sample_count >= 3

    def test_counters_sampled_by_default(self):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("c")
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()
        sim.schedule_at(5.0, lambda: counter.inc(3.0), name="inc")
        sim.run(until=10.0)
        assert sampler.get("c").values() == [0.0, 3.0]

    def test_counter_sampling_can_be_disabled(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.counter("c")
        sampler = TelemetrySampler(sim, registry, period_s=10.0, sample_counters=False)
        sampler.start()
        sim.run(until=20.0)
        assert sampler.get("c") is None

    def test_labeled_instruments_get_distinct_series(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("link.util", labels={"link": "a"}, callback=lambda: 0.25)
        registry.gauge("link.util", labels={"link": "b"}, callback=lambda: 0.75)
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()
        sim.run(until=10.0)
        pairs = sampler.series_for("link.util")
        assert [labels for labels, _ in pairs] == [{"link": "a"}, {"link": "b"}]
        assert sampler.families() == ["link.util"]

    def test_ring_capacity_drops_oldest(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g", callback=lambda: sim.now)
        sampler = TelemetrySampler(sim, registry, period_s=1.0, capacity=3)
        sampler.start()
        sim.run(until=10.0)
        series = sampler.get("g")
        assert len(series) == 3
        assert series.dropped_count > 0
        assert series.samples()[-1] == (10.0, 10.0)

    def test_instruments_registered_mid_run_join_sampling(self):
        sim = Simulator()
        registry = MetricsRegistry()
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()
        sim.schedule_at(
            15.0, lambda: registry.gauge("late", callback=lambda: 1.0), name="register"
        )
        sim.run(until=30.0)
        assert [t for t, _ in sampler.get("late").samples()] == [20.0, 30.0]


class TestLifecycle:
    def test_disabled_registry_start_is_noop(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, MetricsRegistry(enabled=False))
        sampler.start()
        sim.run(until=600.0)
        assert sampler.series() == {}
        assert sampler.sample_count == 0

    def test_stop_keeps_recorded_series(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g", callback=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()
        sim.run(until=10.0)
        sampler.stop()
        sim.run(until=100.0)
        assert len(sampler.get("g")) == 2

    def test_start_is_idempotent(self):
        sim = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g", callback=lambda: 1.0)
        sampler = TelemetrySampler(sim, registry, period_s=10.0)
        sampler.start()
        sampler.start()
        sim.run(until=10.0)
        # One immediate sample plus one periodic — not doubled.
        assert len(sampler.get("g")) == 2

    def test_invalid_period_rejected(self):
        with pytest.raises(ReproError):
            TelemetrySampler(Simulator(), MetricsRegistry(), period_s=0.0)
