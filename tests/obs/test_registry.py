"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.errors import ReproError
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ReproError):
            counter.inc(-1.0)


class TestGauge:
    def test_direct_set(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        assert gauge.value == 4.0

    def test_callback_backed(self):
        box = {"v": 1.0}
        gauge = Gauge("g", callback=lambda: box["v"])
        assert gauge.value == 1.0
        box["v"] = 9.0
        assert gauge.value == 9.0

    def test_set_on_callback_gauge_rejected(self):
        gauge = Gauge("g", callback=lambda: 0.0)
        with pytest.raises(ReproError):
            gauge.set(1.0)


class TestHistogram:
    def test_streaming_stats(self):
        hist = Histogram("h")
        for v in (1.0, 2.0, 3.0, 10.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_percentiles_nearest_rank(self):
        hist = Histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(50.0) == 50.0
        assert hist.percentile(95.0) == 95.0
        assert hist.percentile(100.0) == 100.0

    def test_empty_summary(self):
        assert Histogram("h").summary() == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0,
        }

    def test_ring_bounds_percentile_memory_but_not_totals(self):
        hist = Histogram("h", ring_size=4)
        for v in range(1, 11):
            hist.observe(float(v))
        assert hist.count == 10
        assert hist.max == 10.0
        # Only the 4 most recent observations back the percentile.
        assert hist.percentile(0.0) >= 7.0

    def test_invalid_ring_size(self):
        with pytest.raises(ReproError):
            Histogram("h", ring_size=0)

    def test_percentile_caches_sorted_ring_until_next_observe(self):
        hist = Histogram("h")
        for v in (5.0, 1.0, 3.0):
            hist.observe(v)
        assert hist._sorted is None  # nothing cached before the first query
        assert hist.percentile(50.0) == 3.0
        cached = hist._sorted
        assert cached == [1.0, 3.0, 5.0]
        # Repeated percentile calls (e.g. one summary() rendering several
        # quantiles) reuse the same sorted list — no re-sort.
        assert hist.percentile(95.0) == 5.0
        assert hist._sorted is cached
        # A new observation invalidates the cache and the next query
        # reflects it.
        hist.observe(0.5)
        assert hist._sorted is None
        assert hist.percentile(0.0) == 0.5


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("vra.decisions", subsystem="core")
        b = registry.counter("vra.decisions", subsystem="core")
        assert a is b
        assert len(registry) == 1

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("server.serves", labels={"server": "U1"})
        b = registry.counter("server.serves", labels={"server": "U2"})
        assert a is not b
        assert a.label_dict() == {"server": "U1"}
        assert len(registry.find("server.serves")) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"x": "1", "y": "2"})
        b = registry.counter("c", labels={"y": "2", "x": "1"})
        assert a is b

    def test_same_name_different_kind_coexists(self):
        registry = MetricsRegistry()
        registry.counter("f")
        registry.gauge("f")
        assert len(registry) == 2
        assert registry.families() == ["f"]

    def test_catalog_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        registry.histogram("c")
        registry.gauge("d")
        assert [c.name for c in registry.counters()] == ["a", "b"]
        assert registry.families() == ["a", "b", "c", "d"]

    def test_gauge_callback_kept_from_first_registration(self):
        registry = MetricsRegistry()
        first = registry.gauge("g", callback=lambda: 7.0)
        again = registry.gauge("g")
        assert again is first
        assert again.value == 7.0


class TestDisabledRegistry:
    def test_hands_out_shared_noops_and_registers_nothing(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.gauge("b") is NULL_GAUGE
        assert registry.histogram("c") is NULL_HISTOGRAM
        assert len(registry) == 0
        assert registry.families() == []

    def test_noop_instruments_record_nothing(self):
        NULL_COUNTER.inc(5.0)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(5.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
