"""Regression tests for the ``examples/failure_recovery.py`` scenario.

The example prints the three adjustment claims of the paper; these tests
assert them: mid-stream server failover, route change and restoration
around a link failure, and serviceability of a node added at runtime.
"""

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service():
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(
        sim,
        topology,
        ServiceConfig(cluster_mb=100.0, use_reported_stats=False),
    )


def feature():
    return VideoTitle("feature", size_mb=800.0, duration_s=3600.0)


def news():
    return VideoTitle("news", size_mb=200.0, duration_s=1200.0)


class TestServerFailover:
    def test_session_fails_over_to_surviving_replica(self):
        service = make_service()
        service.seed_title("U4", feature())
        service.seed_title("U5", feature())
        service.start()
        request, session, _ = service.request_by_home("U2", "feature")
        sim = service.sim

        def kill_current_source():
            source = session.record.clusters[-1].server_uid
            service.servers[source].online = False

        sim.schedule(600.0, kill_current_source)
        sim.run(until=sim.now + 2 * 3600.0)

        record = session.record
        assert request.status is RequestStatus.COMPLETED
        # Both replicas appear in the source list: the one that died and
        # the survivor the session switched to at a cluster boundary.
        assert set(record.servers_used) == {"U4", "U5"}
        assert record.switch_count >= 1
        assert service.flows.active_count == 0  # no leaked reservations


class TestLinkFailureRouting:
    def test_route_changes_and_restores(self):
        service = make_service()
        service.seed_title("U4", news())
        service.start()
        link = service.topology.link_named("Patra-Ioannina")

        before = service.decide("U2", "news")
        link.online = False
        during = service.decide("U2", "news")
        link.online = True
        after = service.decide("U2", "news")

        # The failed link leaves the route while down: no hop in the
        # detour traverses Patra-Ioannina's endpoints back to back.
        failed_pair = set(link.endpoints)
        hops = list(zip(during.path.nodes, during.path.nodes[1:]))
        assert all(set(hop) != failed_pair for hop in hops)
        assert during.path.nodes != before.path.nodes
        # ...and the original route comes back bit-for-bit on repair.
        assert after.path.nodes == before.path.nodes
        assert after.cost == before.cost
        assert after.chosen_uid == before.chosen_uid


class TestRuntimeExpansion:
    def test_new_node_becomes_servable_within_a_poll_period(self):
        service = make_service()
        service.seed_title("U4", news())
        service.start()
        service.add_server(
            Node("U7", name="Kalamata"),
            [Link("U7", "U2", capacity_mbps=4.0, name="Kalamata-Patra")],
        )
        service.seed_title("U7", news())
        sim = service.sim
        sim.run(until=sim.now + 2 * service.config.snmp_period_s + 1.0)

        # The newcomer is the closest holder for Patra now.
        decision = service.decide("U2", "news")
        assert decision.chosen_uid == "U7"
        assert decision.path.nodes == ("U2", "U7")
        # SNMP monitors its link within one statistics period.
        entry = service.database.link_entry("Kalamata-Patra")
        assert entry.latest_stats is not None
        assert entry.latest_stats.timestamp > 8 * 3600.0
        # And a session served from it completes.
        request, _, _ = service.request_by_home("U2", "news")
        sim.run(until=sim.now + 3 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
