"""Unit tests for striping placement math (paper Figure 3)."""

import pytest

from repro.errors import StripingError
from repro.storage.striping import (
    StripingLayout,
    cluster_count,
    cluster_sizes,
    striping_layout,
)


class TestClusterCount:
    def test_exact_division(self):
        assert cluster_count(100.0, 25.0) == 4

    def test_rounds_up(self):
        assert cluster_count(101.0, 25.0) == 5

    def test_video_smaller_than_cluster(self):
        assert cluster_count(10.0, 64.0) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(StripingError):
            cluster_count(0.0, 25.0)
        with pytest.raises(StripingError):
            cluster_count(100.0, 0.0)

    def test_float_dust_does_not_add_cluster(self):
        # 0.1 * 3 = 0.30000000000000004 must still be 3 clusters of 0.1.
        assert cluster_count(0.1 * 3, 0.1) == 3


class TestClusterSizes:
    def test_all_full_when_exact(self):
        assert cluster_sizes(100.0, 25.0) == [25.0, 25.0, 25.0, 25.0]

    def test_partial_tail(self):
        sizes = cluster_sizes(110.0, 25.0)
        assert sizes[:4] == [25.0] * 4
        assert sizes[4] == pytest.approx(10.0)

    def test_sizes_sum_to_video_size(self):
        assert sum(cluster_sizes(137.3, 16.0)) == pytest.approx(137.3)

    def test_single_cluster_video(self):
        assert cluster_sizes(10.0, 64.0) == [10.0]


class TestStripingLayoutFunction:
    def test_n_greater_than_p(self):
        # "if n > p then one video part is stored in each one of the first
        # p hard disks"
        assert striping_layout(part_count=3, disk_count=5) == [0, 1, 2]

    def test_n_less_than_p_wraps_cyclically(self):
        # "the rest p-n parts are distributed to the same disks starting
        # from disk 1"
        assert striping_layout(part_count=7, disk_count=3) == [0, 1, 2, 0, 1, 2, 0]

    def test_n_equals_p(self):
        assert striping_layout(part_count=4, disk_count=4) == [0, 1, 2, 3]

    def test_single_disk(self):
        assert striping_layout(part_count=4, disk_count=1) == [0, 0, 0, 0]

    def test_invalid_counts_rejected(self):
        with pytest.raises(StripingError):
            striping_layout(0, 3)
        with pytest.raises(StripingError):
            striping_layout(3, 0)


class TestStripingLayoutObject:
    def test_for_video_builds_assignments(self):
        layout = StripingLayout.for_video("v", size_mb=110.0, cluster_mb=25.0, disk_count=3)
        assert layout.cluster_count == 5
        assert [disk for _, disk, _ in layout.assignments] == [0, 1, 2, 0, 1]

    def test_disk_of(self):
        layout = StripingLayout.for_video("v", 110.0, 25.0, 3)
        assert layout.disk_of(0) == 0
        assert layout.disk_of(4) == 1
        with pytest.raises(StripingError):
            layout.disk_of(5)

    def test_clusters_on_disk(self):
        layout = StripingLayout.for_video("v", 110.0, 25.0, 3)
        assert layout.clusters_on_disk(0) == [0, 3]
        assert layout.clusters_on_disk(2) == [2]

    def test_per_disk_mb_accounts_partial_tail(self):
        layout = StripingLayout.for_video("v", 110.0, 25.0, 3)
        usage = layout.per_disk_mb()
        assert usage[0] == pytest.approx(50.0)
        assert usage[1] == pytest.approx(35.0)  # cluster 1 (25) + tail (10)
        assert usage[2] == pytest.approx(25.0)

    def test_total_mb_equals_video_size(self):
        layout = StripingLayout.for_video("v", 137.3, 16.0, 4)
        assert layout.total_mb() == pytest.approx(137.3)
