"""Unit tests for the VideoTitle model."""

import pytest

from repro.storage.video import VideoTitle


class TestVideoTitle:
    def test_bitrate_derived_from_size_and_duration(self):
        video = VideoTitle("v", size_mb=900.0, duration_s=5400.0)
        assert video.bitrate_mbps == pytest.approx(900 * 8 / 5400)

    def test_explicit_bitrate_kept(self):
        video = VideoTitle("v", size_mb=900.0, duration_s=5400.0, bitrate_mbps=2.5)
        assert video.bitrate_mbps == 2.5

    def test_name_defaults_to_id(self):
        assert VideoTitle("v", 1.0, 1.0).name == "v"
        assert VideoTitle("v", 1.0, 1.0, name="Movie").name == "Movie"

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            VideoTitle("", 1.0, 1.0)
        with pytest.raises(ValueError):
            VideoTitle("v", 0.0, 1.0)
        with pytest.raises(ValueError):
            VideoTitle("v", 1.0, 0.0)

    def test_cluster_count_helper(self):
        video = VideoTitle("v", size_mb=110.0, duration_s=600.0)
        assert video.cluster_count(25.0) == 5

    def test_playback_seconds_per_mb(self):
        video = VideoTitle("v", size_mb=600.0, duration_s=1200.0)
        assert video.playback_seconds_per_mb() == pytest.approx(2.0)

    def test_frozen(self):
        video = VideoTitle("v", 1.0, 1.0)
        with pytest.raises(AttributeError):
            video.size_mb = 2.0  # type: ignore[misc]
