"""Fractional-object storage on the DiskArray (store_segment and friends)."""

import pytest

from repro.errors import StorageError
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str = "v", size_mb: float = 100.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=3600.0)


@pytest.fixture
def array() -> DiskArray:
    # 2 x 100 MB, 10 MB clusters: a 100 MB video is 10 clusters.
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=10.0)


class TestStoreSegment:
    def test_stores_leading_clusters_only(self, array):
        achieved = array.store_segment(video(), 0.3)
        assert achieved == pytest.approx(0.3)
        assert array.has_segment("v")
        assert not array.has_video("v")
        assert array.resident_cluster_count("v") == 3
        assert array.used_mb == pytest.approx(30.0)

    def test_fraction_rounds_up_to_whole_clusters(self, array):
        achieved = array.store_segment(video(), 0.25)
        assert achieved == pytest.approx(0.3)  # 2.5 -> 3 clusters
        assert array.resident_cluster_count("v") == 3

    def test_extension_adds_only_new_clusters(self, array):
        array.store_segment(video(), 0.3)
        achieved = array.store_segment(video(), 0.6)
        assert achieved == pytest.approx(0.6)
        assert array.resident_cluster_count("v") == 6
        assert array.used_mb == pytest.approx(60.0)

    def test_shrinking_is_a_noop(self, array):
        array.store_segment(video(), 0.6)
        achieved = array.store_segment(video(), 0.2)
        assert achieved == pytest.approx(0.6)
        assert array.resident_cluster_count("v") == 6

    def test_full_fraction_promotes_to_stored_video(self, array):
        array.store_segment(video(), 0.5)
        achieved = array.store_segment(video(), 1.0)
        assert achieved == 1.0
        assert array.has_video("v")
        assert not array.has_segment("v")
        assert array.resident_fraction("v") == 1.0
        assert "v" in array.stored_title_ids()

    def test_rejects_already_stored_video(self, array):
        array.store(video())
        with pytest.raises(StorageError):
            array.store_segment(video(), 0.5)

    def test_rejects_bad_fractions(self, array):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(StorageError):
                array.store_segment(video(), bad)

    def test_rejects_unfit_segment(self, array):
        array.store(video("filler", 180.0))
        with pytest.raises(StorageError):
            array.store_segment(video("v", 100.0), 0.9)

    def test_whole_store_rejected_while_partial_resident(self, array):
        array.store_segment(video(), 0.3)
        with pytest.raises(StorageError):
            array.store(video())
        assert not array.can_store(video())


class TestResidencyQueries:
    def test_resident_fraction_states(self, array):
        assert array.resident_fraction("v") == 0.0
        array.store_segment(video(), 0.4)
        assert array.resident_fraction("v") == pytest.approx(0.4)
        array.store_segment(video(), 1.0)
        assert array.resident_fraction("v") == 1.0

    def test_resident_title_ids_unions_full_and_partial(self, array):
        array.store(video("full", 50.0))
        array.store_segment(video("part", 100.0), 0.3)
        assert array.resident_title_ids() == ["full", "part"]
        assert array.stored_title_ids() == ["full"]
        assert array.partial_title_ids() == ["part"]

    def test_remove_clears_partial_segment(self, array):
        array.store_segment(video(), 0.5)
        array.remove("v")
        assert array.resident_fraction("v") == 0.0
        assert array.used_mb == pytest.approx(0.0)
        # Space is really back: a full store fits again.
        array.store(video())
        assert array.has_video("v")

    def test_can_store_segment_checks_only_new_clusters(self, array):
        array.store_segment(video(), 0.9)           # 90 MB resident
        array.store(video("filler", 100.0))          # array nearly full
        # Extending to 1.0 needs just one more 10 MB cluster.
        assert array.can_store_segment(video(), 1.0)


class TestSegmentServability:
    def test_cluster_servable_within_segment_only(self, array):
        array.store_segment(video(), 0.3)
        assert array.cluster_servable("v", 0)
        assert array.cluster_servable("v", 2)
        assert not array.cluster_servable("v", 3)
        assert not array.cluster_servable("missing", 0)

    def test_cluster_servable_full_video(self, array):
        array.store(video())
        assert array.cluster_servable("v", 9)
        assert not array.cluster_servable("v", 10)

    def test_failed_disk_blocks_segment(self, array):
        array.store_segment(video(), 0.3)   # clusters on both disks
        assert array.segment_servable("v")
        array.fail_disk(0)
        assert not array.segment_servable("v")
        assert not array.cluster_servable("v", 0)
        array.restore_disk(0)
        assert array.segment_servable("v")
