"""Unit tests for the popularity tracker."""

import pytest

from repro.errors import CacheError
from repro.storage.cache import PopularityTracker


class TestPoints:
    def test_points_start_at_zero(self):
        tracker = PopularityTracker()
        assert tracker.points_of("v") == 0

    def test_give_point_accumulates(self):
        tracker = PopularityTracker()
        assert tracker.give_point("v") == 1
        assert tracker.give_point("v") == 2
        assert tracker.points_of("v") == 2

    def test_track_registers_without_points(self):
        tracker = PopularityTracker()
        tracker.track("v")
        assert tracker.points_of("v") == 0
        assert tracker.tracked_title_ids() == ["v"]

    def test_empty_title_rejected(self):
        with pytest.raises(CacheError):
            PopularityTracker().give_point("")


class TestLeastPopular:
    def test_picks_fewest_points(self):
        tracker = PopularityTracker()
        tracker.give_point("a")
        tracker.give_point("a")
        tracker.give_point("b")
        assert tracker.least_popular(["a", "b"]) == "b"

    def test_tie_broken_by_first_seen(self):
        tracker = PopularityTracker()
        tracker.track("older")
        tracker.track("newer")
        assert tracker.least_popular(["newer", "older"]) == "older"

    def test_untracked_candidates_count_as_zero(self):
        tracker = PopularityTracker()
        tracker.give_point("a")
        assert tracker.least_popular(["a", "ghost"]) == "ghost"

    def test_empty_candidates_give_none(self):
        assert PopularityTracker().least_popular([]) is None

    def test_restricted_to_candidate_set(self):
        tracker = PopularityTracker()
        tracker.track("cold")  # 0 points but not a candidate
        tracker.give_point("warm")
        tracker.give_point("hot")
        tracker.give_point("hot")
        assert tracker.least_popular(["warm", "hot"]) == "warm"


class TestRanking:
    def test_ranking_most_popular_first(self):
        tracker = PopularityTracker()
        for _ in range(3):
            tracker.give_point("hot")
        tracker.give_point("warm")
        tracker.track("cold")
        assert tracker.ranking() == [("hot", 3), ("warm", 1), ("cold", 0)]

    def test_ranking_tie_keeps_first_seen_order(self):
        tracker = PopularityTracker()
        tracker.give_point("first")
        tracker.give_point("second")
        assert tracker.ranking() == [("first", 1), ("second", 1)]


class TestForgetAndDecay:
    def test_forget_removes_history(self):
        tracker = PopularityTracker()
        tracker.give_point("v")
        tracker.forget("v")
        assert tracker.points_of("v") == 0
        assert tracker.tracked_title_ids() == []

    def test_forget_unknown_rejected(self):
        with pytest.raises(CacheError):
            PopularityTracker().forget("v")

    def test_decay_halves_points(self):
        tracker = PopularityTracker()
        for _ in range(5):
            tracker.give_point("v")
        tracker.decay(0.5)
        assert tracker.points_of("v") == 2  # floor(2.5)

    def test_decay_factor_validated(self):
        tracker = PopularityTracker()
        with pytest.raises(CacheError):
            tracker.decay(1.5)
        with pytest.raises(CacheError):
            tracker.decay(-0.1)
