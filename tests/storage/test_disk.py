"""Unit tests for the single-disk model."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import Disk, StoredCluster


class TestDisk:
    def test_initial_state(self):
        disk = Disk(0, capacity_mb=100.0)
        assert disk.used_mb == 0.0
        assert disk.free_mb == 100.0
        assert disk.cluster_count == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(StorageError):
            Disk(0, capacity_mb=0.0)

    def test_store_and_accounting(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("v", 0, 30.0))
        disk.store(StoredCluster("v", 1, 20.0))
        assert disk.used_mb == pytest.approx(50.0)
        assert disk.free_mb == pytest.approx(50.0)
        assert disk.cluster_count == 2

    def test_overflow_rejected(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("v", 0, 90.0))
        with pytest.raises(StorageError):
            disk.store(StoredCluster("v", 1, 20.0))

    def test_duplicate_cluster_rejected(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("v", 0, 10.0))
        with pytest.raises(StorageError):
            disk.store(StoredCluster("v", 0, 10.0))

    def test_remove_reclaims_space(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("v", 0, 40.0))
        removed = disk.remove("v", 0)
        assert removed.size_mb == 40.0
        assert disk.used_mb == 0.0
        assert not disk.has_cluster("v", 0)

    def test_remove_missing_rejected(self):
        with pytest.raises(StorageError):
            Disk(0, 100.0).remove("v", 0)

    def test_fits_exact_capacity(self):
        disk = Disk(0, 100.0)
        assert disk.fits(100.0)
        assert not disk.fits(100.1)

    def test_clusters_of_sorted_by_index(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("v", 3, 5.0))
        disk.store(StoredCluster("v", 0, 5.0))
        disk.store(StoredCluster("w", 1, 5.0))
        assert [c.cluster_index for c in disk.clusters_of("v")] == [0, 3]

    def test_title_ids(self):
        disk = Disk(0, 100.0)
        disk.store(StoredCluster("b", 0, 5.0))
        disk.store(StoredCluster("a", 0, 5.0))
        assert disk.title_ids() == ["a", "b"]
