"""Unit tests for the striped disk array."""

import pytest

from repro.errors import StorageError, StripingError
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


@pytest.fixture
def array() -> DiskArray:
    return DiskArray(disk_count=3, disk_capacity_mb=100.0, cluster_mb=25.0)


def video(title_id: str, size_mb: float) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=600.0)


class TestConstruction:
    def test_capacity_aggregates(self, array):
        assert array.disk_count == 3
        assert array.total_capacity_mb == 300.0
        assert array.free_mb == 300.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(StripingError):
            DiskArray(0, 100.0, 25.0)
        with pytest.raises(StripingError):
            DiskArray(3, 100.0, 0.0)
        with pytest.raises(StorageError):
            DiskArray(3, 0.0, 25.0)

    def test_disk_index_bounds(self, array):
        assert array.disk(0).disk_index == 0
        with pytest.raises(StorageError):
            array.disk(3)


class TestStoreRemove:
    def test_store_stripes_across_disks(self, array):
        layout = array.store(video("v", 110.0))
        assert layout.cluster_count == 5
        assert array.has_video("v")
        assert array.disk(0).has_cluster("v", 0)
        assert array.disk(1).has_cluster("v", 1)
        assert array.disk(2).has_cluster("v", 2)
        assert array.disk(0).has_cluster("v", 3)
        assert array.disk(1).has_cluster("v", 4)
        assert array.used_mb == pytest.approx(110.0)

    def test_duplicate_store_rejected(self, array):
        array.store(video("v", 50.0))
        with pytest.raises(StorageError):
            array.store(video("v", 50.0))

    def test_remove_frees_all_clusters(self, array):
        array.store(video("v", 110.0))
        removed = array.remove("v")
        assert removed.title_id == "v"
        assert array.used_mb == 0.0
        assert not array.has_video("v")
        for disk in array.disks():
            assert disk.cluster_count == 0

    def test_remove_missing_rejected(self, array):
        with pytest.raises(StorageError):
            array.remove("nope")

    def test_store_failure_leaves_array_clean(self, array):
        # Skew disk 0 so the cyclic layout cannot place the video even
        # though total free space would suffice.
        array.store(video("filler", 75.0))  # 25 MB on each disk
        from repro.storage.disk import StoredCluster

        array.disk(0).store(StoredCluster("pad", 0, 74.0))
        big = video("big", 150.0)  # needs 50 MB on disk 0
        assert not array.can_store(big)
        with pytest.raises(StorageError):
            array.store(big)
        assert not array.has_video("big")
        assert array.disk(1).used_mb == pytest.approx(25.0)


class TestCanStore:
    def test_respects_per_disk_capacity_not_just_total(self, array):
        from repro.storage.disk import StoredCluster

        # 90 MB free on disks 1-2 but only 1 MB on disk 0.
        array.disk(0).store(StoredCluster("pad", 0, 99.0))
        assert not array.can_store(video("v", 110.0))

    def test_exact_fit(self, array):
        assert array.can_store(video("v", 300.0))
        array.store(video("v", 300.0))
        assert array.free_mb == pytest.approx(0.0)

    def test_already_stored_is_not_storable(self, array):
        array.store(video("v", 50.0))
        assert not array.can_store(video("v", 50.0))


class TestQueries:
    def test_layout_and_video_lookup(self, array):
        array.store(video("v", 110.0))
        assert array.video("v").size_mb == 110.0
        assert array.layout("v").cluster_count == 5
        with pytest.raises(StorageError):
            array.video("x")
        with pytest.raises(StorageError):
            array.layout("x")

    def test_stored_title_ids_sorted(self, array):
        array.store(video("b", 25.0))
        array.store(video("a", 25.0))
        assert array.stored_title_ids() == ["a", "b"]
        assert [v.title_id for v in array.stored_videos()] == ["a", "b"]

    def test_layout_for_preview_matches_store(self, array):
        preview = array.layout_for(video("v", 110.0))
        actual = array.store(video("v", 110.0))
        assert preview == actual
