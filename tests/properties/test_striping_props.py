"""Property-based tests: striping layout invariants (paper Figure 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.striping import (
    StripingLayout,
    cluster_count,
    cluster_sizes,
    striping_layout,
)

sizes = st.floats(min_value=0.1, max_value=10_000.0, allow_nan=False)
clusters = st.floats(min_value=0.1, max_value=1_000.0, allow_nan=False)
disk_counts = st.integers(min_value=1, max_value=64)


@given(sizes, clusters)
@settings(max_examples=100, deadline=None)
def test_cluster_sizes_sum_to_video_size(size_mb, cluster_mb):
    total = sum(cluster_sizes(size_mb, cluster_mb))
    assert abs(total - size_mb) < 1e-6 * max(size_mb, 1.0)


@given(sizes, clusters)
@settings(max_examples=100, deadline=None)
def test_every_cluster_positive_and_bounded(size_mb, cluster_mb):
    for chunk in cluster_sizes(size_mb, cluster_mb):
        assert 0.0 < chunk <= cluster_mb + 1e-9


@given(st.integers(min_value=1, max_value=500), disk_counts)
@settings(max_examples=100, deadline=None)
def test_every_part_placed_exactly_once(part_count, disk_count):
    layout = striping_layout(part_count, disk_count)
    assert len(layout) == part_count
    assert all(0 <= disk < disk_count for disk in layout)


@given(st.integers(min_value=1, max_value=500), disk_counts)
@settings(max_examples=100, deadline=None)
def test_round_robin_balance(part_count, disk_count):
    """No disk holds more than ceil(p/n) parts nor fewer than floor(p/n)."""
    layout = striping_layout(part_count, disk_count)
    counts = [layout.count(d) for d in range(disk_count)]
    assert max(counts) - min(counts) <= 1
    assert max(counts) == -(-part_count // disk_count)


@given(st.integers(min_value=1, max_value=500), disk_counts)
@settings(max_examples=100, deadline=None)
def test_paper_regimes(part_count, disk_count):
    layout = striping_layout(part_count, disk_count)
    if disk_count >= part_count:
        # n > p: one part per disk, the first p disks.
        assert layout == list(range(part_count))
    else:
        # n < p: first n parts fill the disks, then wrap from disk 0.
        assert layout[:disk_count] == list(range(disk_count))
        for index in range(disk_count, part_count):
            assert layout[index] == index % disk_count


@given(sizes, clusters, disk_counts)
@settings(max_examples=100, deadline=None)
def test_layout_object_consistency(size_mb, cluster_mb, disk_count):
    layout = StripingLayout.for_video("v", size_mb, cluster_mb, disk_count)
    assert layout.cluster_count == cluster_count(size_mb, cluster_mb)
    # per-disk usage sums to the video size
    assert abs(sum(layout.per_disk_mb().values()) - size_mb) < 1e-6 * max(size_mb, 1.0)
    # disk_of agrees with clusters_on_disk
    for disk_index in range(disk_count):
        for cluster_index in layout.clusters_on_disk(disk_index):
            assert layout.disk_of(cluster_index) == disk_index
    # consecutive clusters land on consecutive disks (cyclic)
    for index in range(1, layout.cluster_count):
        assert layout.disk_of(index) == (layout.disk_of(index - 1) + 1) % disk_count
