"""Property-based tests: VRA decision invariants on random traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vra import VirtualRoutingAlgorithm
from repro.network.grnet import GRNET_LINKS, GRNET_NODES, build_grnet_topology
from repro.network.routing.dijkstra import dijkstra

NODES = sorted(GRNET_NODES)

utilizations = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=len(GRNET_LINKS),
    max_size=len(GRNET_LINKS),
)
homes = st.sampled_from(NODES)
holder_sets = st.sets(st.sampled_from(NODES), min_size=1, max_size=4)


def loaded_grnet(values):
    topology = build_grnet_topology()
    for (name, _, capacity), u in zip(GRNET_LINKS, values):
        topology.link_named(name).set_background_mbps(u * capacity)
    return topology


@given(utilizations, homes, holder_sets)
@settings(max_examples=150, deadline=None)
def test_chosen_is_argmin_of_candidate_costs(values, home, holders):
    topology = loaded_grnet(values)
    vra = VirtualRoutingAlgorithm(topology)
    decision = vra.decide(home, "t", holders=sorted(holders))
    if decision.served_locally:
        assert home in holders
        assert decision.cost == 0.0
        return
    assert decision.chosen_uid in holders
    best = min(decision.candidate_paths.values(), key=lambda p: p.cost)
    assert decision.cost <= best.cost + 1e-12


@given(utilizations, homes, holder_sets)
@settings(max_examples=100, deadline=None)
def test_candidate_costs_match_independent_dijkstra(values, home, holders):
    topology = loaded_grnet(values)
    vra = VirtualRoutingAlgorithm(topology)
    decision = vra.decide(home, "t", holders=sorted(holders))
    if decision.served_locally:
        return
    weights = vra.weights()
    independent = dijkstra(topology, home, lambda l: weights[l.name])
    for uid, path in decision.candidate_paths.items():
        assert abs(path.cost - independent.cost(uid)) < 1e-12
        assert path.nodes[0] == home and path.nodes[-1] == uid


@given(utilizations, homes, holder_sets)
@settings(max_examples=100, deadline=None)
def test_adding_candidates_never_worsens_cost(values, home, holders):
    """More replicas can only help: decide() cost is monotone
    non-increasing in the holder set."""
    topology = loaded_grnet(values)
    vra = VirtualRoutingAlgorithm(topology)
    small = sorted(holders)
    large = sorted(set(NODES))
    cost_small = vra.decide(home, "t", holders=small).cost
    cost_large = vra.decide(home, "t", holders=large).cost
    assert cost_large <= cost_small + 1e-12


@given(utilizations, homes)
@settings(max_examples=100, deadline=None)
def test_decision_is_deterministic(values, home):
    topology = loaded_grnet(values)
    vra = VirtualRoutingAlgorithm(topology)
    holders = [uid for uid in NODES if uid != home][:3]
    first = vra.decide(home, "t", holders=holders)
    second = vra.decide(home, "t", holders=holders)
    assert first.chosen_uid == second.chosen_uid
    assert first.path.nodes == second.path.nodes
