"""Property tests: delta-maintained routing is bit-for-bit cold routing.

The delta path (dirty-link journals -> incremental LVN patch -> lazy tree
revalidation) is an optimisation with a correctness contract: under ANY
interleaving of traffic rewrites, link failures/recoveries, and SNMP-style
database writes (including same-value drumbeat writes), a delta-cached VRA
must produce exactly the decisions a cache-less VRA computes from scratch —
same server, same path, same cost, same weight table, and the same
exceptions when routing is impossible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vra import VirtualRoutingAlgorithm
from repro.database.records import LinkEntry, LinkStats
from repro.database.store import ServiceDatabase
from repro.errors import RoutingError
from repro.network.grnet import GRNET_LINKS, GRNET_NODES, build_grnet_topology
from repro.network.link import STATE_CHANGE

NODES = sorted(GRNET_NODES)
LINK_NAMES = [name for name, _, _ in GRNET_LINKS]
CAPACITY = {name: capacity for name, _, capacity in GRNET_LINKS}

#: One churn op: (link, kind, utilisation).  "traffic" rewrites background
#: load, "toggle" flips online, "same" rewrites the current value — the
#: SNMP drumbeat that must journal nothing.
link_ops = st.lists(
    st.tuples(
        st.sampled_from(LINK_NAMES),
        st.sampled_from(["traffic", "toggle", "same"]),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=5,
)
#: A run: churn batches, each followed by one decision from a random home.
churn_runs = st.lists(
    st.tuples(link_ops, st.sampled_from(NODES)), min_size=2, max_size=10
)


def apply_ops(topology, ops):
    for name, kind, u in ops:
        link = topology.link_named(name)
        if kind == "traffic":
            link.set_background_mbps(u * CAPACITY[name])
        elif kind == "toggle":
            link.online = not link.online
        else:
            link.set_background_mbps(link.used_mbps)


def delta_vra(topology, used_of=None, db=None):
    """A cached VRA wired to journals the way VoDService wires one."""
    cursors = {
        "topo": topology.change_journal.head,
        "stats": db.stats_journal.head if db is not None else 0,
    }

    def delta_of():
        if db is None:
            cursors["topo"], names = topology.change_journal.since(cursors["topo"])
            return names
        cursors["topo"], structural = topology.change_journal.since(
            cursors["topo"], kinds=(STATE_CHANGE,)
        )
        cursors["stats"], reported = db.stats_journal.since(cursors["stats"])
        if structural is None or reported is None:
            return None
        return structural | reported

    def epoch_of():
        if db is None:
            return ("net", topology.traffic_version, topology.state_version)
        return ("db", db.link_stats_version, topology.state_version)

    return VirtualRoutingAlgorithm(
        topology, used_of=used_of, epoch_of=epoch_of, delta_of=delta_of
    )


def decision_fingerprint(vra, home):
    """Everything observable about one decision, exceptions included."""
    holders = [uid for uid in NODES if uid != home]
    try:
        d = vra.decide(home, "t", holders=holders)
    except RoutingError as exc:
        return ("error", str(exc))
    return (
        d.chosen_uid,
        d.path.nodes,
        d.cost,
        sorted(d.weights.items()),
        {uid: (p.nodes, p.cost) for uid, p in d.candidate_paths.items()},
    )


@given(churn_runs)
@settings(max_examples=60, deadline=None)
def test_ground_truth_delta_decisions_match_cold(runs):
    topology = build_grnet_topology()
    cached = delta_vra(topology)
    assert cached.delta_maintenance
    plain = VirtualRoutingAlgorithm(topology)
    for ops, home in runs:
        apply_ops(topology, ops)
        assert decision_fingerprint(cached, home) == decision_fingerprint(plain, home)


@given(churn_runs)
@settings(max_examples=60, deadline=None)
def test_reported_stats_delta_decisions_match_cold(runs):
    """The paper-faithful path: the VRA reads SNMP samples from the DB."""
    topology = build_grnet_topology()
    db = ServiceDatabase()
    for link in topology.links():
        db.register_link(
            LinkEntry(
                link_name=link.name,
                endpoints=link.endpoints,
                total_bandwidth_mbps=link.capacity_mbps,
            )
        )

    def reported(link):
        return db.link_entry(link.name).used_mbps

    cached = delta_vra(topology, used_of=reported, db=db)
    assert cached.delta_maintenance
    plain = VirtualRoutingAlgorithm(topology, used_of=reported)
    clock = [0.0]
    for ops, home in runs:
        apply_ops(topology, ops)
        # SNMP round: every link reports, changed or not (the drumbeat).
        clock[0] += 60.0
        for link in topology.links():
            db.update_link_stats(
                link.name,
                LinkStats(
                    used_mbps=link.used_mbps,
                    utilization=min(link.used_mbps / link.capacity_mbps, 1.0),
                    timestamp=clock[0],
                ),
            )
        assert decision_fingerprint(cached, home) == decision_fingerprint(plain, home)
    # The drumbeat epochs must have been absorbed as partial invalidations.
    stats = cached.cache_stats
    assert stats.full_invalidations == 0
    assert stats.partial_invalidations > 0


def test_dirty_link_disconnecting_cached_tree_source():
    """Edge case: a delta kills the only path out of a cached tree's root.

    Patra (U2) hangs off Athens and Ioannina; failing both links strands
    it.  The delta-cached VRA must report the same RoutingError a cold VRA
    does, and recover identically when a link comes back.
    """
    topology = build_grnet_topology()
    cached = delta_vra(topology)
    plain = VirtualRoutingAlgorithm(topology)

    assert decision_fingerprint(cached, "U2") == decision_fingerprint(plain, "U2")
    topology.link_named("Patra-Athens").online = False
    topology.link_named("Patra-Ioannina").online = False
    stranded_cached = decision_fingerprint(cached, "U2")
    assert stranded_cached == decision_fingerprint(plain, "U2")
    assert stranded_cached[0] == "error"
    topology.link_named("Patra-Athens").online = True
    recovered = decision_fingerprint(cached, "U2")
    assert recovered == decision_fingerprint(plain, "U2")
    assert recovered[0] != "error"
