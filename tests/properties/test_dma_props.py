"""Property-based tests: DMA cache invariants under arbitrary request
streams (paper Figure 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import PlacementAction, WholeTitleDma
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle

CATALOG = [f"t{i}" for i in range(8)]
SIZES = {tid: 40.0 + 17.0 * i for i, tid in enumerate(CATALOG)}


def video(title_id: str) -> VideoTitle:
    return VideoTitle(title_id, size_mb=SIZES[title_id], duration_s=600.0)


request_streams = st.lists(st.sampled_from(CATALOG), min_size=1, max_size=120)
greedy_flags = st.booleans()


@given(request_streams, greedy_flags)
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(stream, greedy):
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array, evict_until_fits=greedy)
    for title_id in stream:
        dma.on_request(video(title_id))
        for disk in array.disks():
            assert disk.used_mb <= disk.capacity_mb + 1e-9


@given(request_streams, greedy_flags)
@settings(max_examples=80, deadline=None)
def test_result_reflects_cache_state(stream, greedy):
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array, evict_until_fits=greedy)
    for title_id in stream:
        result = dma.on_request(video(title_id))
        assert result.cached == array.has_video(title_id)
        assert result.points == dma.points_of(title_id)


@given(request_streams)
@settings(max_examples=80, deadline=None)
def test_eviction_only_of_strictly_less_popular(stream):
    """Every evicted victim had strictly fewer points than the newcomer at
    eviction time (the Figure 2 comparison)."""
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array)
    for title_id in stream:
        points_before = {tid: dma.points_of(tid) for tid in CATALOG}
        result = dma.on_request(video(title_id))
        if result.evicted:
            newcomer_points = points_before[title_id] + 1  # the pass adds one
            for victim in result.evicted:
                assert points_before[victim] < newcomer_points


@given(request_streams, greedy_flags)
@settings(max_examples=80, deadline=None)
def test_points_monotone_nondecreasing(stream, greedy):
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array, evict_until_fits=greedy)
    previous = {tid: 0 for tid in CATALOG}
    for title_id in stream:
        dma.on_request(video(title_id))
        for tid in CATALOG:
            assert dma.points_of(tid) >= previous[tid]
            previous[tid] = dma.points_of(tid)


@given(request_streams, greedy_flags)
@settings(max_examples=80, deadline=None)
def test_hits_never_mutate_cache_contents(stream, greedy):
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array, evict_until_fits=greedy)
    for title_id in stream:
        before = array.stored_title_ids()
        result = dma.on_request(video(title_id))
        if result.action is PlacementAction.HIT:
            assert array.stored_title_ids() == before


@given(request_streams, greedy_flags)
@settings(max_examples=80, deadline=None)
def test_byte_accounting_matches_stored_set(stream, greedy):
    """Bytes on disk always equal the sum of the resident videos' sizes —
    no partial residue survives any eviction path."""
    array = DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)
    dma = WholeTitleDma(array, evict_until_fits=greedy)
    for title_id in stream:
        dma.on_request(video(title_id))
        total = sum(SIZES[tid] for tid in array.stored_title_ids())
        assert abs(array.used_mb - total) < 1e-6
