"""Shared hypothesis strategies for random network topologies."""

from hypothesis import strategies as st

from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology


@st.composite
def random_weighted_topology(draw, max_nodes: int = 12, max_weight: float = 100.0):
    """A connected random graph with positive link weights.

    Builds a random spanning tree for connectivity, then sprinkles extra
    edges.  Returns (topology, weights-by-link-name).
    """
    node_count = draw(st.integers(min_value=2, max_value=max_nodes))
    uids = [f"N{i}" for i in range(node_count)]
    topology = Topology(name="random")
    for uid in uids:
        topology.add_node(Node(uid))
    weights = {}

    def add_edge(a, b):
        if topology.has_link_between(a, b):
            return
        link = Link(a, b, capacity_mbps=10.0)
        topology.add_link(link)
        weights[link.name] = draw(
            st.floats(min_value=0.0, max_value=max_weight, allow_nan=False)
        )

    # Random spanning tree: attach node i to a random earlier node.
    for i in range(1, node_count):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        add_edge(uids[i], uids[j])
    # Extra edges.
    extra = draw(st.integers(min_value=0, max_value=node_count * 2))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=node_count - 1))
        j = draw(st.integers(min_value=0, max_value=node_count - 1))
        if i != j:
            add_edge(uids[i], uids[j])
    return topology, weights
