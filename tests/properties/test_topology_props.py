"""Property-based tests: topology structural invariants."""

from hypothesis import given, settings

from repro.network.topology import Topology

from .topology_strategies import random_weighted_topology


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_generated_topologies_validate(data):
    topology, _ = data
    topology.validate()  # connected with no isolated nodes by construction
    assert topology.is_connected()


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_adjacency_is_symmetric(data):
    topology, _ = data
    for node in topology.nodes():
        for neighbor in topology.neighbors(node.uid):
            assert node.uid in topology.neighbors(neighbor)
            assert topology.has_link_between(node.uid, neighbor)
            assert topology.has_link_between(neighbor, node.uid)


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_degree_sums_to_twice_link_count(data):
    topology, _ = data
    total_degree = sum(topology.degree(uid) for uid in topology.node_uids())
    assert total_degree == 2 * topology.link_count


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_every_link_reachable_via_lookup(data):
    topology, weights = data
    assert set(weights) == {link.name for link in topology.links()}
    for link in topology.links():
        assert topology.link_between(link.a_uid, link.b_uid) is link
        assert topology.link_named(link.name) is link


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_spanning_tree_bounds_link_count(data):
    topology, _ = data
    n = topology.node_count
    assert n - 1 <= topology.link_count <= n * (n - 1) // 2
