"""Property tests: the compiled routing core is bit-for-bit the python path.

``TopologySnapshot`` is a performance substrate with a hard correctness
contract: under ANY interleaving of traffic rewrites and link failures /
recoveries, the compiled kernels must reproduce the pure-python path
*byte for byte* — same weight/NV tables (same dict order, same float
reprs), same Dijkstra trees (same settlement order, same tie-breaks),
same exceptions — on both the list backend and the numpy backend.  A
last-ulp drift here would silently change admission decisions, so these
properties compare representations, not just values.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.network.compiled as compiled_mod
from repro.core.lvn import weight_table_with_nv
from repro.core.lvn_delta import IncrementalLvnTable
from repro.core.vra import VirtualRoutingAlgorithm
from repro.errors import LinkCapacityError, ReproError, RoutingError
from repro.network.compiled import TopologySnapshot
from repro.network.flows import FlowManager
from repro.network.grnet import GRNET_LINKS, GRNET_NODES, build_grnet_topology
from repro.network.routing.dijkstra import dijkstra

NODES = sorted(GRNET_NODES)
LINK_NAMES = [name for name, _, _ in GRNET_LINKS]
CAPACITY = {name: capacity for name, _, capacity in GRNET_LINKS}
BACKENDS = ["list"] + (["numpy"] if compiled_mod._np is not None else [])

#: One churn op: rewrite a link's background traffic or flip it offline.
link_ops = st.lists(
    st.tuples(
        st.sampled_from(LINK_NAMES),
        st.sampled_from(["traffic", "toggle"]),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=6,
)
#: A run: churn batches, each followed by one observation.
churn_runs = st.lists(
    st.tuples(link_ops, st.sampled_from(NODES)), min_size=1, max_size=8
)


def apply_ops(topology, ops):
    for name, kind, u in ops:
        link = topology.link_named(name)
        if kind == "traffic":
            link.set_background_mbps(u * CAPACITY[name])
        else:
            link.online = not link.online


def table_fingerprint(weights, nv):
    """Dict order plus the exact repr of every float (bit-for-bit)."""
    return (
        [(name, repr(value)) for name, value in weights.items()],
        [(uid, repr(value)) for uid, value in nv.items()],
    )


def tables_or_error(compute):
    try:
        weights, nv = compute()
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    return table_fingerprint(weights, nv)


def tree_fingerprint(result):
    return (
        result.source,
        [(uid, repr(d)) for uid, d in result.distances.items()],
        list(result.predecessors.items()),
    )


class TestWeightTableEquivalence:
    @given(churn_runs, st.sampled_from(BACKENDS))
    @settings(max_examples=60, deadline=None)
    def test_tables_bit_identical_under_churn(self, runs, backend):
        topology = build_grnet_topology()
        snapshot = TopologySnapshot(topology)
        snapshot._force_backend = backend
        for ops, _home in runs:
            apply_ops(topology, ops)
            compiled = tables_or_error(
                lambda: snapshot.weight_table_with_nv(None, 10.0)
            )
            python = tables_or_error(
                lambda: weight_table_with_nv(topology, None, 10.0)
            )
            assert compiled == python
            if compiled[0] != "error":
                # The tables must also survive a JSON round-trip identically
                # (they are persisted in decision audit records).
                weights, _ = snapshot.weight_table_with_nv(None, 10.0)
                reference, _ = weight_table_with_nv(topology, None, 10.0)
                assert json.dumps(weights) == json.dumps(reference)

    @given(churn_runs, st.sampled_from(BACKENDS))
    @settings(max_examples=40, deadline=None)
    def test_incremental_table_rebased_on_snapshot_matches_python(
        self, runs, backend
    ):
        """The delta cache seeded from compiled rebuilds stays bit-exact."""
        topology = build_grnet_topology()
        snapshot = TopologySnapshot(topology)
        snapshot._force_backend = backend
        incremental = IncrementalLvnTable(
            topology, snapshot=snapshot, normalization_constant=10.0
        )
        incremental.rebuild()
        for ops, _home in runs:
            apply_ops(topology, ops)
            patched = incremental.patch({name for name, _, _ in ops})
            weights = incremental.rebuild() if patched is None else patched[0]
            reference, _ = weight_table_with_nv(topology, None, 10.0)
            # Patched tables are copy-on-write updates, so dict order can
            # differ from a cold build — compare sorted, bit-for-bit.
            assert sorted((n, repr(w)) for n, w in weights.items()) == sorted(
                (n, repr(w)) for n, w in reference.items()
            )


class TestDijkstraEquivalence:
    @given(churn_runs)
    @settings(max_examples=60, deadline=None)
    def test_trees_bit_identical_under_churn(self, runs):
        topology = build_grnet_topology()
        snapshot = TopologySnapshot(topology)
        for ops, source in runs:
            apply_ops(topology, ops)
            table = snapshot.weight_table(None, 10.0)
            compiled = snapshot.dijkstra(source, table)
            python = dijkstra(topology, source, lambda link: table[link.name])
            assert tree_fingerprint(compiled) == tree_fingerprint(python)
            for uid in compiled.distances:
                assert compiled.node_path(uid) == python.node_path(uid)


class TestFlowLedgerEquivalence:
    PATHS = [
        ["U2", "U1"],
        ["U2", "U3", "U4"],
        ["U2", "U1", "U6", "U5"],
        ["U1", "U4", "U5"],
        ["U3", "U4", "U1", "U6"],
    ]

    operations = st.lists(
        st.one_of(
            st.tuples(
                st.just("reserve"),
                st.integers(min_value=0, max_value=len(PATHS) - 1),
                st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
            ),
            st.tuples(
                st.just("release"), st.integers(min_value=0, max_value=30), st.just(0.0)
            ),
        ),
        min_size=1,
        max_size=50,
    )

    @staticmethod
    def reference_reserve(topology, node_path, rate):
        """Independent oracle for atomic admission: a failed reserve must
        mutate nothing (the old reserve-then-rollback semantics left float
        drift behind — ``x + r - r != x`` — which is exactly the defect the
        check-then-commit rewrite removes)."""
        links = list(topology.path_links(node_path))
        for link in links:
            if rate > link.free_mbps + 1e-9:
                link.reserve(rate)  # raises the canonical error, mutates nothing
        for link in links:
            link.reserve(rate)

    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_ledgers_match_atomic_reference(self, ops):
        """Same op stream, two topologies: memoized FlowManager vs the
        naive oracle must leave every link with bit-identical reserved
        bandwidth and agree on each admission verdict."""
        fast_topo = build_grnet_topology()
        ref_topo = build_grnet_topology()
        manager = FlowManager(fast_topo)
        active = []
        for op, index, rate in ops:
            if op == "reserve":
                path = self.PATHS[index]
                fast_err = ref_err = None
                try:
                    active.append(manager.reserve(list(path), rate))
                except LinkCapacityError as exc:
                    fast_err = str(exc)
                try:
                    self.reference_reserve(ref_topo, path, rate)
                except LinkCapacityError as exc:
                    ref_err = str(exc)
                assert fast_err == ref_err
            elif active:
                flow = active.pop(index % len(active))
                manager.release(flow)
                for link in ref_topo.path_links(flow.node_path):
                    link.release(flow.rate_mbps)
            fast_ledger = {
                link.name: repr(link.reserved_mbps) for link in fast_topo.links()
            }
            ref_ledger = {
                link.name: repr(link.reserved_mbps) for link in ref_topo.links()
            }
            assert fast_ledger == ref_ledger


def decision_fingerprint(vra, home):
    holders = [uid for uid in NODES if uid != home]
    try:
        d = vra.decide(home, "t", holders=holders)
    except RoutingError as exc:
        return ("error", str(exc))
    return (
        d.chosen_uid,
        d.path.nodes,
        repr(d.cost),
        [(name, repr(w)) for name, w in sorted(d.weights.items())],
        {uid: (p.nodes, repr(p.cost)) for uid, p in d.candidate_paths.items()},
    )


class TestVraEquivalence:
    @given(churn_runs)
    @settings(max_examples=50, deadline=None)
    def test_compiled_vra_decisions_match_python_vra(self, runs):
        topology = build_grnet_topology()
        fast = VirtualRoutingAlgorithm(topology, compiled=True)
        plain = VirtualRoutingAlgorithm(topology, compiled=False)
        for ops, home in runs:
            apply_ops(topology, ops)
            assert decision_fingerprint(fast, home) == decision_fingerprint(
                plain, home
            )

    @given(churn_runs)
    @settings(max_examples=40, deadline=None)
    def test_compiled_delta_vra_matches_python_cold(self, runs):
        """Compiled snapshot + incremental LVN + delta journal, against a
        cache-less pure-python VRA computing everything from scratch."""
        topology = build_grnet_topology()
        cursor = {"topo": topology.change_journal.head}

        def delta_of():
            cursor["topo"], names = topology.change_journal.since(cursor["topo"])
            return names

        cached = VirtualRoutingAlgorithm(
            topology,
            compiled=True,
            epoch_of=lambda: (topology.traffic_version, topology.state_version),
            delta_of=delta_of,
        )
        assert cached.delta_maintenance
        plain = VirtualRoutingAlgorithm(topology, compiled=False)
        for ops, home in runs:
            apply_ops(topology, ops)
            assert decision_fingerprint(cached, home) == decision_fingerprint(
                plain, home
            )
