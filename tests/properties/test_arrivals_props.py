"""Property-based tests: arrival-process statistics."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.arrivals import PoissonArrivals, UniformArrivals

rates = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31)
horizons = st.floats(min_value=10.0, max_value=5_000.0, allow_nan=False)


@given(rates, seeds, horizons)
@settings(max_examples=100, deadline=None)
def test_poisson_times_strictly_inside_window(rate, seed, horizon):
    arrivals = PoissonArrivals(rate, rng=random.Random(seed))
    times = arrivals.times_until(horizon)
    assert all(0.0 < t <= horizon for t in times)
    assert times == sorted(times)


@given(rates, seeds)
@settings(max_examples=50, deadline=None)
def test_poisson_mean_count_tracks_rate(rate, seed):
    horizon = 2_000.0 / rate  # expect ~2000 arrivals: tight relative CI
    arrivals = PoissonArrivals(rate, rng=random.Random(seed))
    count = len(arrivals.times_until(horizon))
    # 2000 +- 6 sigma (~268) always holds for a Poisson process.
    assert abs(count - 2_000) < 270


@given(rates, seeds, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_poisson_start_offset_shifts_window(rate, seed, start):
    arrivals = PoissonArrivals(rate, rng=random.Random(seed))
    times = arrivals.times_until(start + 500.0, start=start)
    assert all(start < t <= start + 500.0 for t in times)


@given(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    horizons,
)
@settings(max_examples=100, deadline=None)
def test_uniform_spacing_exact(period, horizon):
    times = UniformArrivals(period).times_until(horizon)
    # Oracle: the largest i with i*period <= horizon, checked by direct
    # multiplication (the definition, not the implementation's loop).
    expected = 0
    while (expected + 1) * period <= horizon:
        expected += 1
    assert len(times) == expected
    for i, t in enumerate(times, start=1):
        assert t == i * period  # exact: drift-free construction


@given(rates, seeds)
@settings(max_examples=50, deadline=None)
def test_poisson_stream_matches_times_until(rate, seed):
    horizon = 100.0 / rate
    batch = PoissonArrivals(rate, rng=random.Random(seed)).times_until(horizon)
    stream = PoissonArrivals(rate, rng=random.Random(seed)).stream()
    replayed = []
    while True:
        t = next(stream)
        if t > horizon:
            break
        replayed.append(t)
    assert replayed == batch
