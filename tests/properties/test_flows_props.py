"""Property-based tests: flow-reservation accounting conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowError, LinkCapacityError
from repro.network.flows import FlowManager
from repro.network.grnet import build_grnet_topology

NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]

# Simple valid GRNET walks to reserve over.
PATHS = [
    ["U2", "U1"],
    ["U2", "U3", "U4"],
    ["U2", "U1", "U6", "U5"],
    ["U1", "U4", "U5"],
    ["U6", "U1"],
    ["U3", "U4", "U1", "U6"],
]

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("reserve"),
            st.integers(min_value=0, max_value=len(PATHS) - 1),
            st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
        ),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=30), st.just(0.0)),
    ),
    min_size=1,
    max_size=60,
)


def expected_reserved(active_flows):
    """Recompute each link's reserved bandwidth from the active flow set."""
    totals = {}
    for flow in active_flows:
        for a, b in zip(flow.node_path, flow.node_path[1:]):
            key = tuple(sorted((a, b)))
            totals[key] = totals.get(key, 0.0) + flow.rate_mbps
    return totals


@given(operations)
@settings(max_examples=80, deadline=None)
def test_link_reservations_always_equal_active_flow_sum(ops):
    topology = build_grnet_topology()
    flows = FlowManager(topology)
    active = []
    for op, index, rate in ops:
        if op == "reserve":
            try:
                active.append(flows.reserve(list(PATHS[index]), rate))
            except LinkCapacityError:
                pass  # rejected reservations must leave accounting intact
        elif active:
            flow = active.pop(index % len(active))
            flows.release(flow)
        totals = expected_reserved(active)
        for link in topology.links():
            assert abs(link.reserved_mbps - totals.get(link.key, 0.0)) < 1e-9
    assert flows.active_count == len(active)


@given(operations)
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(ops):
    topology = build_grnet_topology()
    flows = FlowManager(topology)
    active = []
    for op, index, rate in ops:
        if op == "reserve":
            try:
                active.append(flows.reserve(list(PATHS[index]), rate))
            except LinkCapacityError:
                pass
        elif active:
            flows.release(active.pop(index % len(active)))
        for link in topology.links():
            assert link.reserved_mbps <= link.capacity_mbps + 1e-9


@given(operations)
@settings(max_examples=60, deadline=None)
def test_releasing_everything_restores_idle(ops):
    topology = build_grnet_topology()
    flows = FlowManager(topology)
    active = []
    for op, index, rate in ops:
        if op == "reserve":
            try:
                active.append(flows.reserve(list(PATHS[index]), rate))
            except LinkCapacityError:
                pass
        elif active:
            flows.release(active.pop(index % len(active)))
    for flow in active:
        flows.release(flow)
    assert flows.active_count == 0
    for link in topology.links():
        assert link.reserved_mbps == 0.0
