"""Property-based tests: streaming-session bookkeeping invariants under
randomised network conditions and decision churn."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.requests import RequestStatus, VideoRequest
from repro.core.session import StreamingSession
from repro.core.vra import VraDecision
from repro.network.flows import FlowManager
from repro.network.grnet import build_grnet_topology
from repro.network.routing.paths import Path
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.storage.video import VideoTitle

#: Candidate routes from U2 the decision stream cycles through.
ROUTES = [
    ("U2",),  # local
    ("U2", "U1"),
    ("U2", "U3", "U4"),
    ("U2", "U1", "U6", "U5"),
]

decision_streams = st.lists(
    st.integers(min_value=0, max_value=len(ROUTES) - 1), min_size=1, max_size=12
)
backgrounds = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=7,
    max_size=7,
)
video_sizes = st.floats(min_value=20.0, max_value=400.0, allow_nan=False)


def make_decision(route):
    return VraDecision(
        title_id="v",
        home_uid="U2",
        chosen_uid=route[-1],
        served_locally=len(route) == 1,
        path=Path(nodes=tuple(route), cost=float(len(route))),
    )


def run_session(choices, utilizations, size_mb):
    topology = build_grnet_topology()
    for link, u in zip(topology.links(), utilizations):
        link.set_background_mbps(u * link.capacity_mbps)
    sim = Simulator()
    flows = FlowManager(topology)
    video = VideoTitle("v", size_mb=size_mb, duration_s=600.0)
    request = VideoRequest(client_id="c", home_uid="U2", title_id="v", submitted_at=0.0)
    state = {"i": 0}

    def decide():
        route = ROUTES[choices[state["i"] % len(choices)]]
        state["i"] += 1
        return make_decision(route)

    session = StreamingSession(
        sim=sim,
        request=request,
        video=video,
        cluster_mb=50.0,
        decide=decide,
        flows=flows,
        servers={},
    )
    Process(sim, session.run())
    sim.run()
    return session.record, flows, sim


@given(decision_streams, backgrounds, video_sizes)
@settings(max_examples=60, deadline=None)
def test_all_bytes_delivered_exactly_once(choices, utilizations, size_mb):
    record, _, _ = run_session(choices, utilizations, size_mb)
    assert record.request.status is RequestStatus.COMPLETED
    assert sum(c.size_mb for c in record.clusters) == pytest_approx(size_mb)
    assert [c.index for c in record.clusters] == list(range(len(record.clusters)))


@given(decision_streams, backgrounds, video_sizes)
@settings(max_examples=60, deadline=None)
def test_no_leaked_reservations(choices, utilizations, size_mb):
    record, flows, _ = run_session(choices, utilizations, size_mb)
    assert record.completed
    assert flows.active_count == 0


@given(decision_streams, backgrounds, video_sizes)
@settings(max_examples=60, deadline=None)
def test_cluster_timeline_is_contiguous(choices, utilizations, size_mb):
    record, _, sim = run_session(choices, utilizations, size_mb)
    cursor = 0.0
    for cluster in record.clusters:
        assert cluster.start >= cursor - 1e-9
        assert cluster.end > cluster.start
        cursor = cluster.end
    assert record.completed_at == pytest_approx(record.clusters[-1].end)
    assert sim.now >= record.completed_at


@given(decision_streams, backgrounds, video_sizes)
@settings(max_examples=60, deadline=None)
def test_switch_count_matches_source_changes(choices, utilizations, size_mb):
    record, _, _ = run_session(choices, utilizations, size_mb)
    sources = [c.server_uid for c in record.clusters]
    changes = sum(1 for a, b in zip(sources, sources[1:]) if a != b)
    assert record.switch_count == changes
    assert [c.switched for c in record.clusters][0] is False


@given(decision_streams, backgrounds, video_sizes)
@settings(max_examples=60, deadline=None)
def test_startup_and_stall_are_consistent(choices, utilizations, size_mb):
    record, _, _ = run_session(choices, utilizations, size_mb)
    assert record.startup_delay_s == pytest_approx(
        record.clusters[0].end - record.request.submitted_at
    )
    assert record.stall_s >= 0.0
    # Total experience time >= pure playback time.
    video_playback = 600.0
    experienced = record.startup_delay_s + video_playback + record.stall_s
    assert record.clusters[-1].end <= experienced + 1e-6


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-6)
