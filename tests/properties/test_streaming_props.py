"""Property tests: streamed telemetry is content-identical to buffered.

The write-behind pipeline must never change *what* a run reports — only
*when* it leaves memory.  For any seeded run (plain simulate-style
request interleavings and chaos-style runs under a fault storm) the
multiset of data rows in the streamed JSONL artifact must equal the
classic buffered :func:`~repro.obs.export.telemetry_rows` export of the
same run.

The comparison uses the streamer's ``keep_spans=True`` mode so the *same*
run can be exported both ways: span latency fields carry wall-clock
values, so two separate runs — however identically seeded — would never
be row-identical.  Rings get ample capacity (no overflow) because the
buffered path can only see what a ring still holds, while streaming
spills evictions; equality over lossy rings is exactly the asymmetry the
pipeline exists to create.  Phase profiling stays off: its rows are
wall-clock by design.
"""

import io
import json
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.service import ServiceConfig, VoDService
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.obs.export import telemetry_rows
from repro.obs.sink import JsonlTelemetrySink
from repro.obs.stream import StreamingTelemetry
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

HOMES = ("U1", "U2", "U3", "U4", "U5", "U6")
TITLES = ("m1", "m2")
LINKS = tuple(link.name for link in build_grnet_topology().links())
DRAIN_S = 4 * 3600.0


def build_service():
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    config = ServiceConfig(
        cluster_mb=100.0,
        snmp_period_s=300.0,
        use_reported_stats=False,
        observability=True,
        telemetry_period_s=120.0,
        telemetry_capacity=4096,
    )
    service = VoDService(Simulator(start_time=8 * 3600.0), topology, config)
    service.seed_title("U4", VideoTitle("m1", size_mb=300.0, duration_s=1_800.0))
    service.seed_title("U2", VideoTitle("m2", size_mb=200.0, duration_s=1_200.0))
    return service


def canonical(rows):
    """Multiset of rows under the exact serialisation the sink uses."""
    return Counter(json.dumps(row, sort_keys=True) for row in rows)


def streamed_and_buffered(service, run):
    """Drive one run with streaming attached; export it both ways."""
    out = io.StringIO()
    streamer = StreamingTelemetry(
        service, JsonlTelemetrySink(out), keep_spans=True
    )
    streamer.start()
    service.start()
    run(service)
    buffered = canonical(
        telemetry_rows(service.obs, service.telemetry, service.spans)
    )
    streamer.finish()
    lines = out.getvalue().splitlines()
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["kind"] == "manifest"
    assert parsed[-1]["kind"] == "footer"
    streamed = Counter(
        line
        for line, row in zip(lines, parsed)
        if row["kind"] not in ("manifest", "footer")
    )
    return streamed, buffered, streamer


requests = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1_200.0, allow_nan=False),
        st.integers(min_value=0, max_value=len(HOMES) - 1),
        st.integers(min_value=0, max_value=len(TITLES) - 1),
    ),
    min_size=1,
    max_size=8,
)


@given(requests)
@settings(max_examples=15, deadline=None)
def test_streamed_rows_match_buffered_export_for_simulate_runs(arrivals):
    def run(service):
        now = service.sim.now
        for index, (gap_s, home, title) in enumerate(arrivals):
            now += gap_s
            service.sim.run(until=now)
            service.request_by_home(
                HOMES[home], TITLES[title], f"c{index}"
            )
        service.sim.run(until=now + DRAIN_S)

    streamed, buffered, streamer = streamed_and_buffered(build_service(), run)
    assert streamed == buffered
    # Every finished span left through the live hook, not the final drain.
    finished = sum(1 for row in map(json.loads, streamed) if row["kind"] == "span")
    assert streamer.spans_flushed <= finished


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_streamed_rows_match_buffered_export_for_chaos_runs(seed):
    service = build_service()
    schedule = FaultSchedule.seeded(
        seed,
        duration_s=2 * 3600.0,
        link_names=LINKS,
        server_uids=HOMES,
        link_flap_rate_per_h=2.0,
        link_degrade_rate_per_h=2.0,
        server_crash_rate_per_h=1.0,
        disk_failure_rate_per_h=1.0,
        snmp_blackout_rate_per_h=0.5,
        mean_fault_duration_s=600.0,
    )

    def run(svc):
        injector = FaultInjector(svc, schedule)
        injector.start()
        now = svc.sim.now
        for index, home in enumerate(HOMES):
            svc.sim.run(until=now + index * 600.0)
            svc.request_by_home(home, TITLES[index % len(TITLES)], f"c{index}")
        svc.sim.run(until=now + DRAIN_S)

    streamed, buffered, _ = streamed_and_buffered(service, run)
    assert streamed == buffered
