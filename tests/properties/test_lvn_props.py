"""Property-based tests: the LVN equations on random traffic snapshots."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lvn import (
    link_utilization_term,
    link_validation_number,
    node_validation,
    weight_table,
)
from repro.network.grnet import GRNET_LINKS, build_grnet_topology

fractions = st.lists(
    # Either exactly idle or at least a nano-utilisation: denormal floats
    # like 5e-324 underflow to zero inside LT * LV, which is numerically
    # fine but breaks the strict "busy link => positive LU" oracle below.
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
    ),
    min_size=len(GRNET_LINKS),
    max_size=len(GRNET_LINKS),
)


def loaded_grnet(utilizations):
    topology = build_grnet_topology()
    for (name, _, capacity), u in zip(GRNET_LINKS, utilizations):
        topology.link_named(name).set_background_mbps(u * capacity)
    return topology


@given(fractions)
@settings(max_examples=100, deadline=None)
def test_weights_bounded(utilizations):
    """0 <= LVN <= 1 + capacity/K: NV is a ratio in [0,1] and LU is at most
    LT * LV <= capacity/K."""
    topology = loaded_grnet(utilizations)
    for link in topology.links():
        lvn = link_validation_number(topology, link)
        assert 0.0 <= lvn <= 1.0 + link.capacity_mbps / 10.0 + 1e-9


@given(fractions)
@settings(max_examples=100, deadline=None)
def test_node_validation_is_capacity_weighted_mean(utilizations):
    """NV of a node is a convex combination of its links' utilisations."""
    topology = loaded_grnet(utilizations)
    for node in topology.nodes():
        links = topology.links_at(node.uid)
        utils = [link.utilization for link in links]
        nv = node_validation(topology, node.uid)
        assert min(utils) - 1e-9 <= nv <= max(utils) + 1e-9


@given(fractions)
@settings(max_examples=100, deadline=None)
def test_weight_table_agrees_with_per_link(utilizations):
    topology = loaded_grnet(utilizations)
    table = weight_table(topology)
    for link in topology.links():
        assert abs(table[link.name] - link_validation_number(topology, link)) < 1e-12


@given(fractions, st.integers(min_value=0, max_value=len(GRNET_LINKS) - 1))
@settings(max_examples=100, deadline=None)
def test_monotone_in_single_link_traffic(utilizations, index):
    """Raising one link's traffic never lowers any link's LVN."""
    before_topology = loaded_grnet(utilizations)
    before = weight_table(before_topology)

    bumped = list(utilizations)
    bumped[index] = min(1.0, bumped[index] + 0.25)
    after_topology = loaded_grnet(bumped)
    after = weight_table(after_topology)

    for name in before:
        assert after[name] >= before[name] - 1e-9


@given(fractions)
@settings(max_examples=100, deadline=None)
def test_lu_zero_iff_idle_link(utilizations):
    topology = loaded_grnet(utilizations)
    for link in topology.links():
        lu = link_utilization_term(link)
        if link.used_mbps == 0.0:
            assert lu == 0.0
        else:
            assert lu > 0.0
