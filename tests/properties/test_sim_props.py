"""Property-based tests: event-engine ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=60,
)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_equal_times_fire_in_schedule_order(delay_list):
    sim = Simulator()
    fired = []
    for serial, delay in enumerate(delay_list):
        quantised = round(delay, -1)  # force collisions
        sim.schedule(quantised, lambda s=serial: fired.append(s))
    sim.run()
    by_time = {}
    for serial in fired:
        by_time.setdefault(round(delay_list[serial], -1), []).append(serial)
    for serials in by_time.values():
        assert serials == sorted(serials)


@given(delays, st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_run_until_is_exact_boundary(delay_list, horizon):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run(until=horizon)
    assert all(d <= horizon for d in fired)
    assert sorted(fired) == sorted(d for d in delay_list if d <= horizon)
    assert sim.now == horizon


@given(delays, st.data())
@settings(max_examples=60, deadline=None)
def test_cancelled_subset_never_fires(delay_list, data):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, lambda i=i: fired.append(i))
        for i, delay in enumerate(delay_list)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(handles) - 1))
    )
    for index in to_cancel:
        handles[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(handles))) - to_cancel
