"""Property tests: failover supervisor invariants under seeded storms.

The headline invariant of the supervisor is *no session fails while an
online full holder of its title existed at the failure instant*.  The
implementation fails a session only when no full copy remains registered
anywhere — strictly rarer than "no online holder" — and seeded titles
are pinned, so under any storm that only crashes servers and flaps links
the fail verdict must never fire at all.  The remaining properties pin
replay determinism and the knobs-off equivalence contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.resilience import run_resilience_experiment

seeds = st.integers(min_value=0, max_value=2**31)
crash_rates = st.floats(min_value=1.0, max_value=8.0, allow_nan=False)
flap_rates = st.floats(min_value=0.0, max_value=6.0, allow_nan=False)


def run_storm(seed, crash_rate, flap_rate, **kwargs):
    return run_resilience_experiment(
        seed=seed,
        duration_s=1_800.0,
        requests_per_node=4,
        server_crash_rate_per_h=crash_rate,
        link_flap_rate_per_h=flap_rate,
        mean_fault_duration_s=300.0,
        retry_attempts=0,
        **kwargs,
    )


def session_fingerprint(service):
    """A byte-comparable projection of every session's delivery record."""
    return [
        (
            record.request.status.name,
            record.startup_delay_s,
            record.stall_s,
            record.switch_count,
            record.retry_count,
            record.retry_wait_s,
            record.failover_count,
            record.failover_stall_s,
            record.completed_at,
            tuple(
                (c.server_uid, c.path_nodes, c.rate_mbps, c.start, c.end, c.size_mb)
                for c in record.clusters
            ),
        )
        for record in service.sessions
    ]


@given(seeds, crash_rates, flap_rates)
@settings(max_examples=8, deadline=None)
def test_no_session_fails_while_an_online_holder_existed(seed, crash, flap):
    run = run_storm(seed, crash, flap, session_failover=True)
    supervisor = run.service.supervisor
    # Pinned seeds keep a full copy registered throughout, so the
    # supervisor's fail verdict (which requires the last registered copy
    # to be gone — a superset of "no online holder") may never fire.
    assert supervisor.failed_log == []
    assert supervisor.failed_count == 0
    # And every session failure must be a supervisor verdict: with the
    # supervisor on, no other path may fail a session under this storm.
    assert run.report.failed_count == supervisor.failed_count


@given(seeds)
@settings(max_examples=5, deadline=None)
def test_seeded_replay_is_byte_identical_with_all_knobs_on(seed):
    kwargs = dict(
        session_failover=True,
        breaker_threshold=2,
        max_stats_age_s=300.0,
    )
    a = run_storm(seed, 4.0, 3.0, **kwargs)
    b = run_storm(seed, 4.0, 3.0, **kwargs)
    assert a.report.as_dict() == b.report.as_dict()
    assert a.injector.log == b.injector.log
    assert a.service.supervisor.stall_log == b.service.supervisor.stall_log
    assert a.service.breakers.log == b.service.breakers.log
    assert session_fingerprint(a.service) == session_fingerprint(b.service)


@given(seeds)
@settings(max_examples=5, deadline=None)
def test_knobs_off_runs_match_explicit_default_knobs(seed):
    # The new knobs at their defaults must be indistinguishable from not
    # mentioning them at all — the byte-identity contract for legacy runs.
    a = run_storm(seed, 4.0, 3.0)
    b = run_storm(
        seed,
        4.0,
        3.0,
        session_failover=False,
        failover_backoff_s=15.0,
        breaker_threshold=0,
        max_stats_age_s=None,
    )
    assert a.report.as_dict() == b.report.as_dict()
    assert a.injector.log == b.injector.log
    assert session_fingerprint(a.service) == session_fingerprint(b.service)
    assert a.service.supervisor is None and b.service.supervisor is None
