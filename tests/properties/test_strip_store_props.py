"""Property-based tests: strip-store invariants under arbitrary request
streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.strip_caching import StripStore

STRIPS = [f"t{t}#{i}" for t in range(4) for i in range(5)]
SIZE_MB = 20.0

streams = st.lists(st.sampled_from(STRIPS), min_size=1, max_size=150)
capacities = st.floats(min_value=0.0, max_value=300.0, allow_nan=False)
modes = st.booleans()


@given(streams, capacities, modes)
@settings(max_examples=100, deadline=None)
def test_budget_never_exceeded(stream, capacity, greedy):
    store = StripStore(capacity, evict_until_fits=greedy)
    for key in stream:
        store.on_request(key, SIZE_MB)
        assert store.used_mb <= capacity + 1e-9


@given(streams, capacities, modes)
@settings(max_examples=100, deadline=None)
def test_used_bytes_match_resident_set(stream, capacity, greedy):
    store = StripStore(capacity, evict_until_fits=greedy)
    for key in stream:
        store.on_request(key, SIZE_MB)
        unpinned = [k for k in store.resident_keys()]
        assert abs(store.used_mb - SIZE_MB * len(unpinned)) < 1e-9


@given(streams, modes)
@settings(max_examples=100, deadline=None)
def test_pinned_strips_survive_everything(stream, greedy):
    store = StripStore(capacity_mb=40.0, evict_until_fits=greedy)
    store.pin("origin#0", 100.0)
    store.pin("origin#1", 100.0)
    for key in stream:
        store.on_request(key, SIZE_MB)
        assert store.has("origin#0")
        assert store.has("origin#1")


@given(streams, modes)
@settings(max_examples=100, deadline=None)
def test_result_matches_residency(stream, greedy):
    store = StripStore(capacity_mb=60.0, evict_until_fits=greedy)
    for key in stream:
        resident = store.on_request(key, SIZE_MB)
        assert resident == store.has(key)


@given(streams)
@settings(max_examples=100, deadline=None)
def test_points_monotone(stream):
    store = StripStore(capacity_mb=60.0)
    previous = {}
    for key in stream:
        store.on_request(key, SIZE_MB)
        points = store.tracker.points_of(key)
        assert points >= previous.get(key, 0)
        previous[key] = points
