"""Property-based tests: summary statistics against first principles."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import confidence_interval_95, mean, percentile, stddev
from repro.metrics.timeseries import TimeSeries

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=100,
)


@given(samples)
@settings(max_examples=100, deadline=None)
def test_mean_within_bounds(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


@given(samples)
@settings(max_examples=100, deadline=None)
def test_percentile_monotone_in_q(values):
    previous = -math.inf
    for q in (0, 10, 25, 50, 75, 90, 100):
        current = percentile(values, q)
        assert current >= previous - 1e-9
        previous = current


@given(samples)
@settings(max_examples=100, deadline=None)
def test_percentile_extremes_are_min_max(values):
    assert percentile(values, 0.0) == min(values)
    assert percentile(values, 100.0) == max(values)


@given(samples, st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_mean_and_stddev_shift_invariance(values, shift):
    shifted = [v + shift for v in values]
    assert abs(mean(shifted) - (mean(values) + shift)) < 1e-6
    assert abs(stddev(shifted) - stddev(values)) < 1e-5


@given(samples)
@settings(max_examples=100, deadline=None)
def test_confidence_interval_ordered_and_centred(values):
    low, high = confidence_interval_95(values)
    assert low <= high
    assert abs((low + high) / 2.0 - mean(values)) < 1e-6


@given(
    st.lists(
        st.tuples(
            # Times quantised to milliseconds: subnormal-width segments
            # (gaps of ~5e-324 s) make the area/width ratio round with up
            # to 2x relative error, which is a float artefact rather than
            # an integrator bug; simulated times are never subnormal.
            st.integers(min_value=0, max_value=10_000_000).map(lambda ms: ms / 1000.0),
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_time_average_within_value_bounds(points):
    series = TimeSeries()
    for t, v in sorted(points, key=lambda p: p[0]):
        series.record(t, v)
    values = series.values()
    average = series.time_average()
    assert min(values) - 1e-9 <= average <= max(values) + 1e-9
