"""Property-based tests: Bellman-Ford agrees with Dijkstra on non-negative
weights, on random connected graphs."""

from hypothesis import given, settings

from repro.network.routing.bellman_ford import bellman_ford
from repro.network.routing.dijkstra import dijkstra

from .topology_strategies import random_weighted_topology


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_distances_match_dijkstra(data):
    topology, weights = data
    source = topology.node_uids()[0]
    bf = bellman_ford(topology, source, lambda l: weights[l.name])
    dj = dijkstra(topology, source, lambda l: weights[l.name])
    assert not bf.negative_cycle
    assert set(bf.distances) == set(dj.distances)
    for uid in dj.distances:
        assert abs(bf.cost(uid) - dj.cost(uid)) < 1e-9


@given(random_weighted_topology())
@settings(max_examples=40, deadline=None)
def test_paths_cost_what_they_claim(data):
    topology, weights = data
    source = topology.node_uids()[0]
    bf = bellman_ford(topology, source, lambda l: weights[l.name])
    for uid in bf.distances:
        path = bf.path(uid)
        total = sum(
            weights[link.name] for link in topology.path_links(list(path.nodes))
        )
        assert abs(total - bf.cost(uid)) < 1e-9


@given(random_weighted_topology())
@settings(max_examples=40, deadline=None)
def test_any_negative_link_reachable_means_negative_cycle(data):
    """On an undirected graph, making any one reachable link negative must
    trip cycle detection (the erratum-3 lesson)."""
    topology, weights = data
    source = topology.node_uids()[0]
    victim = next(iter(weights))
    negative = dict(weights)
    negative[victim] = -1.0
    result = bellman_ford(topology, source, lambda l: negative[l.name])
    # The graph is connected by construction, so the victim is reachable.
    assert result.negative_cycle
