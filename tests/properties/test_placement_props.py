"""Property-based tests: fractional-residency invariants of the prefix
and popularity-weighted partial placement policies under arbitrary
request streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import PopularityWeightedPartial, PrefixReplication
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle

CATALOG = [f"t{i}" for i in range(8)]
SIZES = {tid: 60.0 + 35.0 * i for i, tid in enumerate(CATALOG)}
MINUTES = {tid: 10.0 + 12.0 * i for i, tid in enumerate(CATALOG)}


def video(title_id: str) -> VideoTitle:
    return VideoTitle(
        title_id, size_mb=SIZES[title_id], duration_s=MINUTES[title_id] * 60.0
    )


def make_array() -> DiskArray:
    return DiskArray(disk_count=3, disk_capacity_mb=70.0, cluster_mb=20.0)


request_streams = st.lists(st.sampled_from(CATALOG), min_size=1, max_size=100)
policy_factories = st.sampled_from(
    [
        lambda a: PrefixReplication(a, prefix_minutes=8.0, hot_points=2),
        lambda a: PrefixReplication(a, prefix_minutes=30.0, hot_points=1),
        lambda a: PopularityWeightedPartial(a, floor_fraction=0.15),
        lambda a: PopularityWeightedPartial(a, floor_fraction=0.6),
    ]
)


@given(request_streams, policy_factories)
@settings(max_examples=60, deadline=None)
def test_resident_fraction_always_in_unit_interval(stream, factory):
    array = make_array()
    policy = factory(array)
    for title_id in stream:
        result = policy.on_request(video(title_id))
        assert 0.0 <= result.resident_fraction <= 1.0
        for tid in CATALOG:
            assert 0.0 <= array.resident_fraction(tid) <= 1.0


@given(request_streams, policy_factories)
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(stream, factory):
    array = make_array()
    policy = factory(array)
    for title_id in stream:
        policy.on_request(video(title_id))
        assert array.used_mb <= array.total_capacity_mb + 1e-9
        for disk in array.disks():
            assert disk.used_mb <= disk.capacity_mb + 1e-9


@given(request_streams, policy_factories)
@settings(max_examples=60, deadline=None)
def test_result_fraction_matches_array_state(stream, factory):
    array = make_array()
    policy = factory(array)
    for title_id in stream:
        result = policy.on_request(video(title_id))
        assert result.resident_fraction == array.resident_fraction(title_id)
        assert result.cached == array.has_video(title_id)


@given(request_streams, policy_factories)
@settings(max_examples=60, deadline=None)
def test_full_and_partial_residency_are_disjoint(stream, factory):
    array = make_array()
    policy = factory(array)
    for title_id in stream:
        policy.on_request(video(title_id))
        for tid in CATALOG:
            assert not (array.has_video(tid) and array.has_segment(tid))
        resident = set(array.stored_title_ids()) | set(array.partial_title_ids())
        assert sorted(resident) == array.resident_title_ids()


@given(request_streams, policy_factories)
@settings(max_examples=60, deadline=None)
def test_fractions_never_shrink_without_eviction(stream, factory):
    """A title's resident fraction only moves up (extension) or to zero
    (whole-segment eviction) — never partially down."""
    array = make_array()
    policy = factory(array)
    previous = {tid: 0.0 for tid in CATALOG}
    for title_id in stream:
        policy.on_request(video(title_id))
        for tid in CATALOG:
            now = array.resident_fraction(tid)
            assert now >= previous[tid] or now == 0.0
            previous[tid] = now
