"""Property-based tests: session-metric aggregation vs direct recomputation
on randomised session batches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.requests import VideoRequest
from repro.core.session import ClusterRecord, SessionRecord
from repro.metrics.analysis import analyze_sessions
from repro.metrics.collectors import summarize_sessions

PATHS = [("A",), ("A", "B"), ("A", "B", "C"), ("A", "D"), ("A", "D", "C")]


@st.composite
def session_batches(draw):
    batch = []
    count = draw(st.integers(min_value=0, max_value=12))
    for serial in range(count):
        completed = draw(st.booleans())
        cluster_count = draw(st.integers(min_value=1, max_value=6))
        clusters = []
        cursor = 0.0
        for index in range(cluster_count):
            path = PATHS[draw(st.integers(min_value=0, max_value=len(PATHS) - 1))]
            size = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
            end = cursor + draw(st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
            clusters.append(
                ClusterRecord(
                    index=index,
                    server_uid=path[-1],
                    path_nodes=path,
                    rate_mbps=1.0,
                    start=cursor,
                    end=end,
                    size_mb=size,
                    switched=index > 0
                    and clusters[-1].server_uid != path[-1],
                    qos_violated=draw(st.booleans()),
                )
            )
            cursor = end
        request = VideoRequest(
            client_id=f"c{serial}",
            home_uid="A",
            title_id=draw(st.sampled_from(["t1", "t2", "t3"])),
            submitted_at=0.0,
        )
        record = SessionRecord(request=request)
        record.clusters = clusters
        record.switch_count = sum(1 for c in clusters if c.switched)
        record.startup_delay_s = clusters[0].end
        if completed:
            request.mark_completed()
            record.completed_at = cursor
        else:
            request.mark_failed("x")
        batch.append(record)
    return batch


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_counts_partition_the_batch(batch):
    metrics = summarize_sessions(batch)
    assert metrics.session_count == len(batch)
    assert metrics.completed_count + metrics.failed_count == len(batch)


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_megabyte_hops_matches_direct_sum(batch):
    metrics = summarize_sessions(batch)
    expected = sum(
        c.size_mb * (len(c.path_nodes) - 1)
        for r in batch
        if r.completed
        for c in r.clusters
    )
    assert abs(metrics.megabyte_hops - expected) < 1e-6


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_fractions_bounded(batch):
    metrics = summarize_sessions(batch)
    assert 0.0 <= metrics.local_serve_fraction <= 1.0
    assert 0.0 <= metrics.qos_violation_fraction <= 1.0
    assert metrics.total_switches >= 0


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_analysis_conserves_bytes(batch):
    analysis = analyze_sessions(batch)
    served = sum(row.megabytes for row in analysis.server_load)
    direct = sum(c.size_mb for r in batch for c in r.clusters)
    assert abs(served - direct) < 1e-6


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_analysis_link_bytes_match_hop_weighted_sum(batch):
    analysis = analyze_sessions(batch)
    carried = sum(row.megabytes for row in analysis.link_load)
    expected = sum(
        c.size_mb * (len(c.path_nodes) - 1) for r in batch for c in r.clusters
    )
    assert abs(carried - expected) < 1e-6


@given(session_batches())
@settings(max_examples=100, deadline=None)
def test_title_demand_counts_every_request(batch):
    analysis = analyze_sessions(batch)
    assert sum(count for _, count in analysis.title_demand) == len(batch)