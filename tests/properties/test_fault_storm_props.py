"""Property tests: fault storms overflowing the change journal are safe.

A fault storm can mutate more links between two VRA decisions than the
bounded :class:`~repro.changes.ChangeJournal` can hold.  The contract
under overflow is *degrade, never lie*: ``since()`` returns ``None``, the
delta probe reports "unknown", and the routing cache falls back to a full
flush — so a delta-cached VRA still produces exactly the decisions a
cache-less VRA computes from scratch.  A stale route would mean streaming
over a link the storm already killed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vra import VirtualRoutingAlgorithm
from repro.errors import RoutingError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology

NODES = ("A", "B", "C", "D", "E")
EDGES = (
    ("A", "B", 10.0),
    ("B", "C", 10.0),
    ("C", "D", 10.0),
    ("D", "E", 10.0),
    ("A", "E", 10.0),
    ("B", "D", 4.0),
)
#: Small enough that a modest storm overflows it between decisions.
JOURNAL_CAPACITY = 4


def build_topology(journal_capacity=JOURNAL_CAPACITY):
    topology = Topology(name="storm", journal_capacity=journal_capacity)
    for uid in NODES:
        topology.add_node(Node(uid=uid))
    for a, b, capacity in EDGES:
        topology.add_link(Link(a, b, capacity_mbps=capacity))
    return topology


def delta_vra(topology):
    """A delta-cached VRA wired to the topology journal (ground truth)."""
    cursor = {"topo": topology.change_journal.head}

    def delta_of():
        cursor["topo"], names = topology.change_journal.since(cursor["topo"])
        return names

    return VirtualRoutingAlgorithm(
        topology,
        epoch_of=lambda: (topology.traffic_version, topology.state_version),
        delta_of=delta_of,
    )


def apply_storm(topology, ops):
    for link_index, kind, level in ops:
        link = list(topology.links())[link_index % topology.link_count]
        if kind == "flap":
            link.online = not link.online
        else:
            link.set_background_mbps(level * link.capacity_mbps)


def fingerprint(vra, home):
    holders = [uid for uid in NODES if uid != home]
    try:
        d = vra.decide(home, "t", holders=holders)
    except RoutingError as exc:
        return ("error", str(exc))
    return (
        d.chosen_uid,
        d.path.nodes,
        d.cost,
        sorted(d.weights.items()),
    )


storm_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(EDGES) - 1),
        st.sampled_from(["flap", "traffic"]),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=3 * JOURNAL_CAPACITY,  # routinely overflows the journal
)
storm_runs = st.lists(
    st.tuples(storm_ops, st.sampled_from(NODES)), min_size=2, max_size=8
)


@given(storm_runs)
@settings(max_examples=60, deadline=None)
def test_overflowing_storms_never_yield_stale_routes(runs):
    topology = build_topology()
    cached = delta_vra(topology)
    assert cached.delta_maintenance
    plain = VirtualRoutingAlgorithm(topology)
    for ops, home in runs:
        apply_storm(topology, ops)
        assert fingerprint(cached, home) == fingerprint(plain, home)


def test_overflow_degrades_to_full_flush():
    """Deterministic pin: a storm bigger than the journal forces the full
    flush (not a partial patch), and the decision still matches cold."""
    topology = build_topology()
    cached = delta_vra(topology)
    plain = VirtualRoutingAlgorithm(topology)
    assert fingerprint(cached, "A") == fingerprint(plain, "A")  # warm the cache

    link = topology.link_named("B-C")
    for step in range(JOURNAL_CAPACITY + 1):  # one more than capacity
        link.set_background_mbps(float(step + 1))
    assert fingerprint(cached, "A") == fingerprint(plain, "A")
    stats = cached.cache_stats
    assert stats.full_invalidations >= 1

    # Below-capacity churn afterwards goes back to the delta path.
    partial_before = stats.partial_invalidations
    link.set_background_mbps(0.5)
    assert fingerprint(cached, "A") == fingerprint(plain, "A")
    assert cached.cache_stats.partial_invalidations == partial_before + 1


def test_storm_killing_every_route_matches_cold_error():
    """All links down mid-storm: both VRAs must refuse identically, and
    both must recover identically when one path returns."""
    topology = build_topology()
    cached = delta_vra(topology)
    plain = VirtualRoutingAlgorithm(topology)
    for link in topology.links():
        link.online = False
    down = fingerprint(cached, "A")
    assert down == fingerprint(plain, "A")
    assert down[0] == "error"
    topology.link_named("A-B").online = True
    up = fingerprint(cached, "A")
    assert up == fingerprint(plain, "A")
    assert up[0] != "error"
