"""Property-based tests: the database's title-location index stays
consistent under arbitrary advertise/withdraw sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.records import ServerEntry, TitleInfo
from repro.database.store import ServiceDatabase
from repro.errors import MissingEntryError

SERVERS = ["U1", "U2", "U3"]
TITLES = ["t1", "t2", "t3", "t4"]

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.sampled_from(SERVERS),
        st.sampled_from(TITLES),
    ),
    min_size=1,
    max_size=80,
)


def fresh_database() -> ServiceDatabase:
    database = ServiceDatabase()
    for uid in SERVERS:
        database.register_server(ServerEntry(uid))
    for title_id in TITLES:
        database.register_title(TitleInfo(title_id, title_id, 100.0, 600.0))
    return database


@given(operations)
@settings(max_examples=100, deadline=None)
def test_location_index_matches_server_entries(ops):
    database = fresh_database()
    for op, uid, title_id in ops:
        if op == "add":
            database.add_title_to_server(uid, title_id)
        else:
            try:
                database.remove_title_from_server(uid, title_id)
            except MissingEntryError:
                pass  # withdrawing a non-advertised title is an error; skip
        # Invariant: the reverse index equals the per-server sets.
        for title in TITLES:
            holders = set(database.servers_with_title(title))
            expected = {
                server
                for server in SERVERS
                if title in database.server_title_ids(server)
            }
            assert holders == expected, (title, holders, expected)


@given(operations)
@settings(max_examples=100, deadline=None)
def test_add_remove_are_inverse(ops):
    database = fresh_database()
    model = {uid: set() for uid in SERVERS}
    for op, uid, title_id in ops:
        if op == "add":
            database.add_title_to_server(uid, title_id)
            model[uid].add(title_id)
        else:
            if title_id in model[uid]:
                database.remove_title_from_server(uid, title_id)
                model[uid].discard(title_id)
            else:
                try:
                    database.remove_title_from_server(uid, title_id)
                    raise AssertionError("expected MissingEntryError")
                except MissingEntryError:
                    pass
    for uid in SERVERS:
        assert database.server_title_ids(uid) == model[uid]
