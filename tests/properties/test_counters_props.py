"""Property-based tests: SNMP counter wrap correctness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snmp.counters import COUNTER32_MODULUS, OctetCounter, counter_delta

octet_batches = st.lists(
    st.integers(min_value=0, max_value=COUNTER32_MODULUS // 2 - 1),
    min_size=1,
    max_size=30,
)


@given(octet_batches)
@settings(max_examples=100, deadline=None)
def test_delta_recovers_traffic_across_wraps(batches):
    """As long as each inter-poll batch stays below 2**31 (one wrap max),
    counter_delta recovers the exact octet count."""
    counter = OctetCounter()
    previous = counter.value
    for batch in batches:
        counter.add_octets(batch)
        assert counter_delta(previous, counter.value) == batch
        previous = counter.value


@given(st.integers(min_value=0, max_value=COUNTER32_MODULUS - 1), octet_batches)
@settings(max_examples=100, deadline=None)
def test_total_traffic_reconstructed_from_polls(start, batches):
    counter = OctetCounter(start)
    total = 0
    previous = counter.value
    for batch in batches:
        counter.add_octets(batch)
        total += counter_delta(previous, counter.value)
        previous = counter.value
    assert total == sum(batches)


@given(st.integers(min_value=0, max_value=2**40))
@settings(max_examples=100, deadline=None)
def test_value_always_in_counter32_range(octets):
    counter = OctetCounter()
    counter.add_octets(octets)
    assert 0 <= counter.value < COUNTER32_MODULUS
    assert counter.wraps == octets // COUNTER32_MODULUS


@given(
    # Cap one batch below a single Counter32 wrap (2**32 octets = ~34360
    # Mbit) so counter_delta's one-wrap assumption holds, as it does for
    # any realistic poll interval on the paper's 2-18 Mbps links.
    st.floats(min_value=0.0, max_value=30_000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_megabit_conversion_roundtrip(megabits):
    counter = OctetCounter()
    counter.add_octets(0)
    before = counter.value
    counter.add_megabits(megabits)
    octets = counter_delta(before, counter.value)
    # 1 Mbit = 125000 octets, rounded to the nearest octet.
    assert abs(octets - megabits * 125_000) <= 0.5 + 1e-9
