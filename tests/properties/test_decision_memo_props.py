"""Property tests: the flash-crowd fast path is invisible in outcomes.

The whole-decision memo and the load-leveling admission queue are pure
performance machinery: with the memo on, every session record must stay
byte-identical to a memo-off run of the same interleaving of requests,
link flaps, server crashes and traffic shifts; with the queue on but
under-loaded (drain quota never exhausted) the front-end must fall
through to the exact legacy admission path; and an over-loaded queue
must shed *deterministically* — the same arrival sequence sheds the
same requests on every replay, because the shed set is a pure function
of arrivals (ISSUE 6's "instead of timing out mid-decision" contract).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

HOMES = ("U1", "U2", "U3", "U4", "U5", "U6")
TITLES = ("m1", "m2")
LINKS = tuple(link.name for link in build_grnet_topology().links())
DRAIN_S = 6 * 3600.0  # sim time to let every surviving session finish


def build_service(**overrides):
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    config = ServiceConfig(
        cluster_mb=100.0,
        disk_count=2,
        disk_capacity_mb=1_000.0,
        snmp_period_s=300.0,
        use_reported_stats=False,
        routing_cache_size=64,
        **overrides,
    )
    service = VoDService(Simulator(), topology, config)
    service.seed_title("U4", VideoTitle("m1", size_mb=300.0, duration_s=1_800.0))
    service.seed_title("U2", VideoTitle("m2", size_mb=200.0, duration_s=1_200.0))
    service.start()
    return service


def apply_step(service, step, request_counter):
    kind = step[0]
    if kind == "request":
        _, home_index, title_index = step
        client_id = f"c{next(request_counter)}"
        service.request_by_home(
            HOMES[home_index % len(HOMES)],
            TITLES[title_index % len(TITLES)],
            client_id,
        )
    elif kind == "flap":
        link = service.topology.link_named(LINKS[step[1] % len(LINKS)])
        link.online = not link.online
    elif kind == "crash":
        server = service.servers[HOMES[step[1] % len(HOMES)]]
        server.online = not server.online
    else:  # traffic
        _, link_index, fraction = step
        link = service.topology.link_named(LINKS[link_index % len(LINKS)])
        link.set_background_mbps(fraction * link.capacity_mbps)


def run_interleaving(service, steps):
    """Replay (gap_s, step) pairs on the sim clock, then drain sessions."""
    counter = iter(range(1_000_000))
    now = service.sim.now
    for gap_s, step in steps:
        now += gap_s
        service.sim.run(until=now)
        apply_step(service, step, counter)
    service.sim.run(until=now + DRAIN_S)
    return service


def record_fingerprint(record):
    """Every observable field of one session record (request ids are a
    process-global counter, so sessions are keyed by client id)."""
    request = record.request
    return (
        request.client_id,
        request.home_uid,
        request.title_id,
        request.submitted_at,
        request.status.value,
        request.failure_reason,
        record.startup_delay_s,
        record.stall_s,
        record.switch_count,
        record.qos_violation_count,
        record.completed_at,
        record.retry_count,
        record.retry_wait_s,
        record.recovered,
        record.admission_wait_s,
        tuple(
            (
                cluster.index,
                cluster.server_uid,
                cluster.path_nodes,
                cluster.rate_mbps,
                cluster.start,
                cluster.end,
                cluster.size_mb,
                cluster.switched,
                cluster.qos_violated,
            )
            for cluster in record.clusters
        ),
    )


def service_fingerprint(service):
    return tuple(record_fingerprint(record) for record in service.sessions)


steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
        st.one_of(
            st.tuples(
                st.just("request"),
                st.integers(min_value=0, max_value=len(HOMES) - 1),
                st.integers(min_value=0, max_value=len(TITLES) - 1),
            ),
            st.tuples(
                st.just("flap"), st.integers(min_value=0, max_value=len(LINKS) - 1)
            ),
            st.tuples(
                st.just("crash"), st.integers(min_value=0, max_value=len(HOMES) - 1)
            ),
            st.tuples(
                st.just("traffic"),
                st.integers(min_value=0, max_value=len(LINKS) - 1),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
        ),
    ),
    min_size=1,
    max_size=14,
)


@given(steps)
@settings(max_examples=25, deadline=None)
def test_decision_memo_invisible_in_session_records(interleaving):
    plain = run_interleaving(build_service(decision_cache_size=0), interleaving)
    memoed = run_interleaving(
        build_service(decision_cache_size=256), interleaving
    )
    assert service_fingerprint(memoed) == service_fingerprint(plain)


@given(steps)
@settings(max_examples=25, deadline=None)
def test_underloaded_admission_queue_is_transparent(interleaving):
    # A drain quota far above any arrival burst: every offer lands in the
    # current tick with zero wait, which must fall through to the exact
    # legacy admission path.
    plain = run_interleaving(build_service(), interleaving)
    queued = run_interleaving(
        build_service(
            decision_cache_size=256,
            admission_queue_capacity=10_000,
            admission_rate_per_s=1e6,
        ),
        interleaving,
    )
    fingerprints = service_fingerprint(queued)
    assert fingerprints == service_fingerprint(plain)
    assert all(fp[14] == 0.0 for fp in fingerprints)  # admission_wait_s


@given(steps)
@settings(max_examples=15, deadline=None)
def test_overloaded_admission_queue_replays_deterministically(interleaving):
    def run_once():
        service = run_interleaving(
            build_service(
                decision_cache_size=256,
                admission_queue_capacity=2,
                admission_rate_per_s=1.0 / 120.0,
                admission_tick_s=60.0,
            ),
            interleaving,
        )
        shed = frozenset(
            record.request.client_id
            for record in service.sessions
            if (record.request.failure_reason or "").startswith("admission-shed")
        )
        return service_fingerprint(service), shed, service.admission_queue.snapshot()

    first_prints, first_shed, first_snapshot = run_once()
    second_prints, second_shed, second_snapshot = run_once()
    assert second_prints == first_prints
    assert second_shed == first_shed
    assert second_snapshot == first_snapshot


def test_burst_sheds_beyond_capacity_deterministically():
    """Deterministic pin: a same-tick burst fills the drain quota, then
    the waiting room, then sheds — and every replay agrees on which
    client landed where."""

    def run_once():
        service = build_service(
            decision_cache_size=256,
            admission_queue_capacity=3,
            admission_rate_per_s=1.0 / 60.0,
            admission_tick_s=60.0,
        )
        for i in range(8):
            service.request_by_home("U1", "m1", f"burst{i}")
        service.sim.run(until=DRAIN_S)
        by_client = {
            record.request.client_id: record for record in service.sessions
        }
        return service, by_client

    service, by_client = run_once()
    shed = sorted(
        cid
        for cid, record in by_client.items()
        if (record.request.failure_reason or "").startswith("admission-shed")
    )
    delayed = sorted(
        cid for cid, record in by_client.items() if record.admission_wait_s > 0.0
    )
    # Quota of the first tick admits one immediately, three wait, four shed.
    assert delayed == ["burst1", "burst2", "burst3"]
    assert shed == ["burst4", "burst5", "burst6", "burst7"]
    stats = service.admission_queue.stats
    assert stats.immediate == 1 and stats.delayed == 3 and stats.shed == 4

    _, replay = run_once()
    assert {
        cid: (record.request.status.value, record.admission_wait_s)
        for cid, record in replay.items()
    } == {
        cid: (record.request.status.value, record.admission_wait_s)
        for cid, record in by_client.items()
    }
