"""Property-based tests: Dijkstra optimality vs networkx on random graphs."""

import networkx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import Link
from repro.network.node import Node
from repro.network.routing.dijkstra import dijkstra
from repro.network.topology import Topology


@st.composite
def random_weighted_topology(draw):
    """A connected random graph with positive link weights.

    Builds a random spanning tree for connectivity, then sprinkles extra
    edges.  Returns (topology, weights-by-link-name).
    """
    node_count = draw(st.integers(min_value=2, max_value=12))
    uids = [f"N{i}" for i in range(node_count)]
    topology = Topology(name="random")
    for uid in uids:
        topology.add_node(Node(uid))
    weights = {}

    def add_edge(a, b):
        if topology.has_link_between(a, b):
            return
        link = Link(a, b, capacity_mbps=10.0)
        topology.add_link(link)
        weights[link.name] = draw(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
        )

    # Random spanning tree: attach node i to a random earlier node.
    for i in range(1, node_count):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        add_edge(uids[i], uids[j])
    # Extra edges.
    extra = draw(st.integers(min_value=0, max_value=node_count * 2))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=node_count - 1))
        j = draw(st.integers(min_value=0, max_value=node_count - 1))
        if i != j:
            add_edge(uids[i], uids[j])
    return topology, weights


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_distances_match_networkx(data):
    topology, weights = data
    graph = networkx.Graph()
    for link in topology.links():
        graph.add_edge(link.a_uid, link.b_uid, weight=weights[link.name])
    source = topology.node_uids()[0]
    ours = dijkstra(topology, source, lambda l: weights[l.name])
    reference = networkx.single_source_dijkstra_path_length(graph, source)
    assert set(ours.distances) == set(reference)
    for uid, expected in reference.items():
        assert abs(ours.cost(uid) - expected) < 1e-9


@given(random_weighted_topology())
@settings(max_examples=60, deadline=None)
def test_paths_are_consistent_with_distances(data):
    """The reported path's link weights must sum to the reported distance,
    and every prefix of a shortest path must itself be shortest."""
    topology, weights = data
    source = topology.node_uids()[0]
    result = dijkstra(topology, source, lambda l: weights[l.name])
    for uid in result.distances:
        path = result.path(uid)
        total = sum(
            weights[link.name] for link in topology.path_links(list(path.nodes))
        )
        assert abs(total - result.cost(uid)) < 1e-9
        for prefix_end in path.nodes[:-1]:
            assert result.cost(prefix_end) <= result.cost(uid) + 1e-9


@given(random_weighted_topology())
@settings(max_examples=40, deadline=None)
def test_triangle_inequality_over_tree(data):
    """d(v) <= d(u) + w(u, v) for every settled edge."""
    topology, weights = data
    source = topology.node_uids()[0]
    result = dijkstra(topology, source, lambda l: weights[l.name])
    for link in topology.links():
        a, b = link.key
        if a in result.distances and b in result.distances:
            w = weights[link.name]
            assert result.cost(b) <= result.cost(a) + w + 1e-9
            assert result.cost(a) <= result.cost(b) + w + 1e-9
