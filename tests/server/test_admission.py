"""Unit tests for stream admission control."""

import pytest

from repro.errors import AdmissionError
from repro.server.admission import AdmissionController


class TestAdmission:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(max_streams=2)
        controller.admit()
        controller.admit()
        assert controller.active_count == 2
        assert not controller.has_capacity

    def test_rejects_beyond_capacity(self):
        controller = AdmissionController(max_streams=1)
        controller.admit()
        with pytest.raises(AdmissionError):
            controller.admit()
        assert controller.rejected_count == 1

    def test_release_frees_slot(self):
        controller = AdmissionController(max_streams=1)
        lease = controller.admit()
        controller.release(lease)
        assert controller.has_capacity
        controller.admit()  # must not raise

    def test_double_release_rejected(self):
        controller = AdmissionController(max_streams=1)
        lease = controller.admit()
        controller.release(lease)
        with pytest.raises(AdmissionError):
            controller.release(lease)

    def test_unknown_lease_rejected(self):
        controller = AdmissionController(max_streams=1)
        with pytest.raises(AdmissionError):
            controller.release(99)

    def test_leases_are_unique(self):
        controller = AdmissionController(max_streams=3)
        leases = {controller.admit() for _ in range(3)}
        assert len(leases) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(AdmissionError):
            AdmissionController(max_streams=0)
