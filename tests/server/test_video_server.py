"""Unit tests for the VideoServer layer."""

import pytest

from repro.placement import PlacementAction
from repro.database.store import ServiceDatabase
from repro.errors import AdmissionError, StorageError
from repro.server.video_server import VideoServer
from repro.storage.video import VideoTitle


def make_server(**overrides) -> VideoServer:
    defaults = dict(
        node_uid="U1",
        database=ServiceDatabase(),
        disk_count=2,
        disk_capacity_mb=100.0,
        cluster_mb=25.0,
        max_streams=2,
    )
    defaults.update(overrides)
    server = VideoServer(**defaults)
    from repro.database.records import ServerEntry

    server._database.register_server(ServerEntry(server.node_uid))
    return server


def video(title_id="v", size_mb=100.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=600.0)


class TestSeeding:
    def test_seed_stores_and_advertises_immediately(self):
        server = make_server()
        server.seed_title(video())
        assert server.has_title("v")
        assert server._database.servers_with_title("v") == ["U1"]
        assert server.pending_title_ids() == []

    def test_seed_registers_catalog_info(self):
        server = make_server()
        server.seed_title(video())
        assert server._database.title_info("v").size_mb == 100.0

    def test_seed_overflow_raises(self):
        server = make_server()
        with pytest.raises(StorageError):
            server.seed_title(video(size_mb=500.0))


class TestServing:
    def test_can_provide_requires_title_and_capacity(self):
        server = make_server(max_streams=1)
        assert not server.can_provide("v")
        server.seed_title(video())
        assert server.can_provide("v")
        lease = server.begin_serving("v")
        assert not server.can_provide("v")  # at stream capacity
        server.end_serving(lease)
        assert server.can_provide("v")

    def test_offline_server_cannot_provide(self):
        server = make_server()
        server.seed_title(video())
        server.online = False
        assert not server.can_provide("v")

    def test_begin_serving_nonresident_rejected(self):
        server = make_server()
        with pytest.raises(StorageError):
            server.begin_serving("ghost")

    def test_admission_limit_enforced(self):
        server = make_server(max_streams=1)
        server.seed_title(video())
        server.begin_serving("v")
        with pytest.raises(AdmissionError):
            server.begin_serving("v")

    def test_serve_count_increments(self):
        server = make_server()
        server.seed_title(video())
        lease = server.begin_serving("v")
        server.end_serving(lease)
        server.begin_serving("v")
        assert server.serve_count == 2


class TestDeferredAdvertisement:
    def test_dma_store_is_pending_until_commit(self):
        server = make_server()
        result = server.on_download_begins(video())
        assert result.action is PlacementAction.STORED
        assert server.array.has_video("v")  # bytes present
        assert not server.has_title("v")  # but not servable
        assert server._database.servers_with_title("v") == []
        assert server.pending_title_ids() == ["v"]

    def test_commit_advertises(self):
        server = make_server()
        server.on_download_begins(video())
        server.commit_download("v")
        assert server.has_title("v")
        assert server._database.servers_with_title("v") == ["U1"]
        assert server.pending_title_ids() == []

    def test_abort_drops_partial_bytes(self):
        server = make_server()
        server.on_download_begins(video())
        server.abort_download("v")
        assert not server.array.has_video("v")
        assert server._database.servers_with_title("v") == []

    def test_commit_of_unknown_title_is_noop(self):
        server = make_server()
        server.commit_download("ghost")
        server.abort_download("ghost")

    def test_pending_eviction_before_commit_is_silent(self):
        # A pending (in-flight) title evicted by a later DMA pass must not
        # touch the database, since it was never advertised.
        server = make_server()
        server.on_download_begins(video("a"))  # pending store, 0 points
        server.on_download_begins(video("b"))  # pending store, 0 points
        result = server.on_download_begins(video("c"))  # 1 point > 0 -> evicts a
        assert "a" in result.evicted
        assert server._database.servers_with_title("a") == []
        server.commit_download("a")  # no longer pending: noop
        assert server._database.servers_with_title("a") == []

    def test_committed_title_eviction_withdraws_advertisement(self):
        server = make_server()
        server.seed_title(video("a"))
        server.seed_title(video("b"))
        result = server.on_download_begins(video("c"))  # 1 > 0 -> evicts a
        assert result.evicted == ("a",)
        assert server._database.servers_with_title("a") == []

    def test_immediate_advertisement_mode(self):
        server = make_server(defer_dma_advertisements=False)
        server.on_download_begins(video())
        assert server.has_title("v")
        assert server._database.servers_with_title("v") == ["U1"]


class TestDmaHitPath:
    def test_request_for_seeded_title_is_hit(self):
        server = make_server()
        server.seed_title(video())
        result = server.on_download_begins(video())
        assert result.action is PlacementAction.HIT
        assert server.dma.points_of("v") == 1
