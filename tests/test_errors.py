"""Unit tests for the exception hierarchy: every library error must be
catchable as ReproError, and specific handlers must not swallow siblings."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SimulationError,
    errors.SchedulingError,
    errors.TopologyError,
    errors.LinkCapacityError,
    errors.FlowError,
    errors.DatabaseError,
    errors.AccessDeniedError,
    errors.DuplicateEntryError,
    errors.MissingEntryError,
    errors.StorageError,
    errors.StripingError,
    errors.CacheError,
    errors.AdmissionError,
    errors.RoutingError,
    errors.TitleUnavailableError,
    errors.ServiceError,
    errors.WorkloadError,
    errors.SnmpError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc_type("boom")

    def test_scheduling_is_simulation(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_access_and_duplicates_are_database(self):
        assert issubclass(errors.AccessDeniedError, errors.DatabaseError)
        assert issubclass(errors.DuplicateEntryError, errors.DatabaseError)
        assert issubclass(errors.MissingEntryError, errors.DatabaseError)

    def test_striping_and_cache_are_storage(self):
        assert issubclass(errors.StripingError, errors.StorageError)
        assert issubclass(errors.CacheError, errors.StorageError)

    def test_title_unavailable_is_routing(self):
        assert issubclass(errors.TitleUnavailableError, errors.RoutingError)

    def test_siblings_do_not_cross_catch(self):
        with pytest.raises(errors.StorageError):
            try:
                raise errors.StripingError("x")
            except errors.RoutingError:  # must NOT catch
                pytest.fail("RoutingError handler caught a StripingError")

    def test_repro_error_not_a_builtin_alias(self):
        assert not issubclass(errors.ReproError, (ValueError, RuntimeError))
