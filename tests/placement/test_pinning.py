"""Pinned titles x eviction interaction, including evict_until_fits."""

import pytest

from repro.placement import PlacementAction, WholeTitleDma
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str, size_mb: float = 50.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=600.0)


@pytest.fixture
def array() -> DiskArray:
    return DiskArray(disk_count=1, disk_capacity_mb=100.0, cluster_mb=25.0)


class TestPinnedEviction:
    def test_pinned_title_never_evicted_single_pass(self, array):
        policy = WholeTitleDma(array)
        policy.seed(video("keep"))
        policy.seed(video("lose"))
        policy.pin("keep")
        result = policy.on_request(video("new", 100.0))  # 1 > 0 for both
        assert array.has_video("keep")
        assert "keep" not in result.evicted

    def test_pinned_title_never_evicted_greedy(self, array):
        policy = WholeTitleDma(array, evict_until_fits=True)
        policy.seed(video("keep"))
        policy.seed(video("lose"))
        policy.pin("keep")
        result = policy.on_request(video("new", 100.0))
        # Greedy eviction may only consume the unpinned resident; the
        # newcomer still does not fit and the victim is lost.
        assert result.action is PlacementAction.EVICTED_NOT_STORED
        assert result.evicted == ("lose",)
        assert array.has_video("keep")
        assert policy.lost_victims == 1

    def test_greedy_eviction_around_the_pin(self, array):
        policy = WholeTitleDma(array, evict_until_fits=True)
        policy.seed(video("keep", 25.0))
        policy.seed(video("a", 25.0))
        policy.seed(video("b", 25.0))
        policy.pin("keep")
        result = policy.on_request(video("new", 75.0))  # needs both a and b gone
        assert result.action is PlacementAction.REPLACED
        assert set(result.evicted) == {"a", "b"}
        assert array.has_video("keep")
        assert array.has_video("new")

    def test_all_pinned_means_point_only(self, array):
        policy = WholeTitleDma(array, evict_until_fits=True)
        policy.seed(video("a"))
        policy.seed(video("b"))
        policy.pin("a")
        policy.pin("b")
        result = policy.on_request(video("new", 100.0))
        assert result.action is PlacementAction.POINT_ONLY
        assert result.evicted == ()
        assert array.stored_title_ids() == ["a", "b"]
