"""The deprecated repro.core.dma shim: importable, warns, identical."""

import warnings

import pytest

from repro.placement import (
    PlacementAction,
    PlacementResult,
    WholeTitleDma,
)
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def make_array() -> DiskArray:
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=25.0)


class TestShimSurface:
    def test_aliases_are_the_new_types(self):
        from repro.core.dma import DmaAction, DmaResult

        assert DmaAction is PlacementAction
        assert DmaResult is PlacementResult

    def test_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro.core.dma  # noqa: F401

    def test_construction_warns(self):
        from repro.core.dma import DiskManipulationAlgorithm

        with pytest.warns(DeprecationWarning, match="WholeTitleDma"):
            DiskManipulationAlgorithm(make_array())

    def test_shim_is_a_whole_title_dma(self):
        from repro.core.dma import DiskManipulationAlgorithm

        with pytest.warns(DeprecationWarning):
            shim = DiskManipulationAlgorithm(make_array(), evict_until_fits=True)
        assert isinstance(shim, WholeTitleDma)
        assert shim.evict_until_fits

    def test_shim_behaviour_matches_default_policy(self):
        from repro.core.dma import DiskManipulationAlgorithm

        with pytest.warns(DeprecationWarning):
            shim = DiskManipulationAlgorithm(make_array())
        policy = WholeTitleDma(make_array())
        stream = ["a", "b", "a", "c", "c", "b", "d", "a", "d", "d"]
        for title_id in stream:
            video = VideoTitle(title_id, size_mb=100.0, duration_s=600.0)
            assert shim.on_request(video) == policy.on_request(video)
        assert shim.cached_title_ids() == policy.cached_title_ids()

    def test_top_level_export_still_resolves(self):
        import repro

        assert repro.DiskManipulationAlgorithm is not None
        assert repro.DmaResult is PlacementResult
