"""Unit tests for the prefix-replication policy (arXiv 1003.4049 style:
cache the first N playback minutes of hot titles, stream suffixes from
full holders)."""

import pytest

from repro.errors import CacheError
from repro.placement import PlacementAction, PrefixReplication
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str, size_mb: float = 100.0, minutes: float = 60.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=minutes * 60.0)


@pytest.fixture
def array() -> DiskArray:
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=10.0)


class TestKnobValidation:
    def test_rejects_bad_prefix_minutes(self, array):
        with pytest.raises(CacheError):
            PrefixReplication(array, prefix_minutes=0.0)

    def test_rejects_bad_hot_points(self, array):
        with pytest.raises(CacheError):
            PrefixReplication(array, hot_points=0)


class TestPrefixBehaviour:
    def test_cold_title_gets_point_only(self, array):
        policy = PrefixReplication(array, hot_points=2)
        result = policy.on_request(video("v"))
        assert result.action is PlacementAction.POINT_ONLY
        assert result.resident_fraction == 0.0
        assert array.resident_fraction("v") == 0.0

    def test_hot_title_earns_its_prefix(self, array):
        policy = PrefixReplication(array, prefix_minutes=6.0, hot_points=2)
        policy.on_request(video("v"))                    # 1 point: cold
        result = policy.on_request(video("v"))           # 2 points: hot
        assert result.action is PlacementAction.PREFIX_STORED
        # 6 of 60 minutes -> one tenth of the title.
        assert result.resident_fraction == pytest.approx(0.1)
        assert array.resident_fraction("v") == pytest.approx(0.1)
        assert not array.has_video("v")

    def test_prefix_advertised_fraction_aware(self, array):
        adverts = []
        policy = PrefixReplication(
            array,
            prefix_minutes=6.0,
            hot_points=1,
            on_partial=lambda tid, f: adverts.append((tid, f)),
        )
        policy.on_request(video("v"))
        assert adverts == [("v", pytest.approx(0.1))]

    def test_prefix_not_regrown_once_cut(self, array):
        policy = PrefixReplication(array, prefix_minutes=6.0, hot_points=1)
        policy.on_request(video("v"))
        result = policy.on_request(video("v"))
        assert result.action is PlacementAction.POINT_ONLY
        assert result.resident_fraction == pytest.approx(0.1)
        assert policy.prefix_hit_count == 1

    def test_full_resident_is_a_hit(self, array):
        policy = PrefixReplication(array, hot_points=1)
        policy.seed(video("v", size_mb=50.0))
        result = policy.on_request(video("v", size_mb=50.0))
        assert result.action is PlacementAction.HIT
        assert result.cached
        assert result.resident_fraction == 1.0

    def test_short_title_prefix_covers_everything(self, array):
        # A 5-minute title with a 10-minute prefix window: the "prefix"
        # is the whole title, stored and advertised as a full copy.
        policy = PrefixReplication(array, prefix_minutes=10.0, hot_points=1)
        result = policy.on_request(video("v", size_mb=40.0, minutes=5.0))
        assert result.action is PlacementAction.STORED
        assert result.cached
        assert array.has_video("v")

    def test_makes_room_by_evicting_less_popular(self):
        tight = DiskArray(disk_count=2, disk_capacity_mb=50.0, cluster_mb=10.0)
        policy = PrefixReplication(tight, prefix_minutes=60.0, hot_points=1)
        policy.seed(video("cold", size_mb=90.0))         # fills the array
        policy.on_request(video("hot", size_mb=90.0))    # 1 > 0: evict cold
        assert not tight.has_video("cold")
        assert policy.eviction_count == 1

    def test_popular_resident_blocks_eviction(self):
        tight = DiskArray(disk_count=2, disk_capacity_mb=50.0, cluster_mb=10.0)
        policy = PrefixReplication(tight, prefix_minutes=60.0, hot_points=1)
        policy.seed(video("fav", size_mb=90.0))
        for _ in range(3):
            policy.on_request(video("fav", size_mb=90.0))    # fav: 3 points
        result = policy.on_request(video("new", size_mb=90.0))  # 1 !> 3
        assert result.action is PlacementAction.POINT_ONLY
        assert tight.has_video("fav")
