"""Policy-equivalence suite: the default placement path must be
byte-identical to the historical DMA behaviour.

Three angles:

* the deprecated ``DiskManipulationAlgorithm`` shim and the default
  ``WholeTitleDma`` produce identical session records on the same
  workload (flash crowd and regional);
* an explicit ``PlacementConfig(kind="dma")`` equals the legacy
  ``ServiceConfig.evict_until_fits`` spelling (the config redesign is
  behaviour-neutral);
* chaos replays are deterministic and placement-config-invariant.
"""

import warnings

import pytest

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.experiments.placement import session_fingerprint
from repro.network.grnet import GRNET_NODES
from repro.placement import PlacementConfig
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario, regional_scenario


def catalog(count: int = 8, size_mb: float = 300.0):
    return [
        VideoTitle(f"title-{i:02d}", size_mb=size_mb, duration_s=3600.0)
        for i in range(count)
    ]


def small_config(**kwargs) -> ServiceConfig:
    return ServiceConfig(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=400.0,
        max_streams=64,
        use_reported_stats=False,
        **kwargs,
    )


def run_fingerprint(scenario, config: ServiceConfig, cache: str = "dma") -> str:
    experiment = ServiceExperiment(
        name=f"equivalence:{cache}",
        scenario=scenario,
        config=config,
        cache=cache,
    )
    result = run_service_experiment(experiment)
    assert result.metrics.session_count > 0
    return session_fingerprint(result.service.sessions)


@pytest.fixture
def flash_crowd():
    titles = catalog()
    return flash_crowd_scenario(
        next(iter(GRNET_NODES)), titles[0], viewer_count=30, seed=7
    )


@pytest.fixture
def regional():
    return regional_scenario(
        list(GRNET_NODES), requests_per_node=8, seed=23, catalog=catalog()
    )


class TestShimEquivalence:
    def test_flash_crowd_byte_identical(self, flash_crowd):
        default = run_fingerprint(flash_crowd, small_config())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_fingerprint(flash_crowd, small_config(), cache="dma-legacy")
        assert default == legacy

    def test_regional_byte_identical(self, regional):
        default = run_fingerprint(regional, small_config())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_fingerprint(regional, small_config(), cache="dma-legacy")
        assert default == legacy


class TestConfigEquivalence:
    def test_explicit_dma_placement_is_the_default(self, regional):
        implicit = run_fingerprint(regional, small_config())
        explicit = run_fingerprint(
            regional, small_config(placement=PlacementConfig(kind="dma"))
        )
        assert implicit == explicit

    def test_placement_subsumes_evict_until_fits_knob(self, regional):
        legacy_knob = run_fingerprint(
            regional, small_config(evict_until_fits=True)
        )
        new_knob = run_fingerprint(
            regional,
            small_config(
                placement=PlacementConfig(kind="dma", evict_until_fits=True)
            ),
        )
        assert legacy_knob == new_knob

    def test_runs_are_deterministic(self, flash_crowd):
        assert run_fingerprint(flash_crowd, small_config()) == run_fingerprint(
            flash_crowd, small_config()
        )


class TestChaosReplayEquivalence:
    def test_chaos_replay_placement_invariant(self):
        from repro.experiments.resilience import run_resilience_experiment

        def chaos_fingerprint(config):
            run = run_resilience_experiment(
                seed=11,
                duration_s=3600.0,
                requests_per_node=6,
                config=config,
            )
            return session_fingerprint(run.service.sessions)

        base = ServiceConfig(retry_attempts=5, retry_backoff_s=20.0)
        explicit = ServiceConfig(
            retry_attempts=5,
            retry_backoff_s=20.0,
            placement=PlacementConfig(kind="dma"),
        )
        first = chaos_fingerprint(base)
        assert first == chaos_fingerprint(base)  # deterministic replay
        assert first == chaos_fingerprint(explicit)
