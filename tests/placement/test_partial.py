"""Unit tests for popularity-weighted partial caching."""

import pytest

from repro.errors import CacheError
from repro.placement import PlacementAction, PopularityWeightedPartial
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str, size_mb: float = 100.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=3600.0)


@pytest.fixture
def array() -> DiskArray:
    # 2 x 100 MB = 200 MB total, 10 MB clusters.
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=10.0)


class TestKnobValidation:
    def test_rejects_bad_floor(self, array):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(CacheError):
                PopularityWeightedPartial(array, floor_fraction=bad)


class TestProportionalBehaviour:
    def test_floor_caches_head_segment_for_cold_titles(self, array):
        policy = PopularityWeightedPartial(array, floor_fraction=0.25)
        for _ in range(9):
            policy.on_request(video("hot"))   # full copy; hot holds 9 points
        # cold's proportional share is (1/10) * (200/100) = 0.2 < floor.
        result = policy.on_request(video("cold"))
        assert result.action is PlacementAction.PREFIX_STORED
        # The floor, rounded up to whole clusters.
        assert 0.25 <= result.resident_fraction < 1.0
        assert array.has_segment("cold")

    def test_fraction_grows_with_points(self, array):
        # Two 400 MB titles over a 200 MB array: the repeatedly-requested
        # one ends up holding a strictly larger fraction.
        policy = PopularityWeightedPartial(array, floor_fraction=0.1)
        policy.on_request(video("cold", size_mb=400.0))
        for _ in range(4):
            policy.on_request(video("hot", size_mb=400.0))
        assert (
            array.resident_fraction("hot") > array.resident_fraction("cold")
        )

    def test_dominant_title_promoted_to_full_copy(self, array):
        stored = []
        policy = PopularityWeightedPartial(
            array, floor_fraction=0.1, on_store=stored.append
        )
        result = policy.on_request(video("v"))
        # Sole title -> share = capacity/size = 2.0, clamped to 1.0: the
        # segment covers every cluster and is stored as a full copy.
        assert result.cached
        assert array.has_video("v")
        assert "v" in stored
        assert policy.on_request(video("v")).action is PlacementAction.HIT

    def test_target_fraction_is_points_proportional(self, array):
        policy = PopularityWeightedPartial(array, floor_fraction=0.01)
        policy.on_request(video("a", size_mb=400.0))
        policy.on_request(video("b", size_mb=400.0))
        policy.on_request(video("b", size_mb=400.0))
        # a: 1/3 of points, b: 2/3; capacity/size = 0.5.
        assert policy.target_fraction(video("a", size_mb=400.0)) == pytest.approx(1 / 6)
        assert policy.target_fraction(video("b", size_mb=400.0)) == pytest.approx(1 / 3)

    def test_segments_extend_in_place(self, array):
        policy = PopularityWeightedPartial(array, floor_fraction=0.1)
        policy.on_request(video("a", size_mb=400.0))  # grabs the array
        policy.on_request(video("b", size_mb=400.0))  # 1 !> 1: point only
        policy.on_request(video("b", size_mb=400.0))  # 2 > 1: evicts a, cuts segment
        first = array.resident_cluster_count("b")
        assert first > 0
        assert not array.has_video("a")
        policy.on_request(video("b", size_mb=400.0))  # share grew: extend
        assert array.resident_cluster_count("b") > first
        # Still partial: capacity (200) / size (400) caps the share at 0.5.
        assert not array.has_video("b")
        assert array.resident_fraction("b") <= 0.5 + 1e-9
