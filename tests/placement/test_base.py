"""Contract tests for the PlacementPolicy interface and PlacementConfig."""

import pytest

from repro.errors import ServiceError
from repro.placement import (
    PLACEMENT_KINDS,
    PlacementAction,
    PlacementConfig,
    PlacementResult,
    PopularityWeightedPartial,
    PrefixReplication,
    WholeTitleDma,
)
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str, size_mb: float = 100.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=3600.0)


@pytest.fixture
def array() -> DiskArray:
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=25.0)


class TestPlacementResult:
    def test_frozen(self):
        result = PlacementResult(
            title_id="v", action=PlacementAction.HIT, points=1
        )
        with pytest.raises(AttributeError):
            result.points = 2

    def test_defaults(self):
        result = PlacementResult(
            title_id="v", action=PlacementAction.POINT_ONLY, points=0
        )
        assert result.evicted == ()
        assert not result.cached
        assert result.resident_fraction == 0.0


class TestPolicyContract:
    def test_action_counts_tally_every_pass(self, array):
        policy = WholeTitleDma(array)
        policy.on_request(video("a"))        # stored
        policy.on_request(video("a"))        # hit
        policy.on_request(video("b"))        # stored
        policy.on_request(video("c"))        # point only (1 !> 1? a has 1, b 0 -> replaced)
        total = sum(policy.action_counts.values())
        assert total == policy.pass_count == 4
        assert policy.action_counts["hit"] == policy.hit_count == 1

    def test_resident_ids_mirrors_array(self, array):
        policy = WholeTitleDma(array)
        policy.seed(video("b"))
        policy.seed(video("a"))
        assert policy.resident_ids() == ["a", "b"]
        assert policy.resident_ids() == array.resident_title_ids()

    def test_seed_gives_no_point(self, array):
        policy = WholeTitleDma(array)
        policy.seed(video("v"))
        assert policy.points_of("v") == 0
        assert array.has_video("v")

    def test_pin_protects_title(self, array):
        policy = WholeTitleDma(array)
        policy.seed(video("a"))
        policy.seed(video("b"))
        policy.pin("a")
        policy.on_request(video("c"))  # 1 point beats both 0-point residents
        assert array.has_video("a")   # pinned survives
        assert not array.has_video("b")

    def test_every_policy_satisfies_interface(self, array):
        for cls in (WholeTitleDma, PrefixReplication, PopularityWeightedPartial):
            policy = cls(DiskArray(disk_count=2, disk_capacity_mb=100.0,
                                   cluster_mb=25.0))
            result = policy.on_request(video("v"))
            assert isinstance(result, PlacementResult)
            assert policy.pass_count == 1
            assert isinstance(policy.resident_ids(), list)


class TestPlacementConfig:
    def test_default_is_dma(self):
        config = PlacementConfig()
        assert config.kind == "dma"
        assert not config.fractional

    def test_fractional_kinds(self):
        assert PlacementConfig(kind="prefix").fractional
        assert PlacementConfig(kind="partial").fractional

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            PlacementConfig(kind="mru")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ServiceError):
            PlacementConfig(kind="prefix", prefix_minutes=0.0)
        with pytest.raises(ServiceError):
            PlacementConfig(kind="partial", partial_floor=1.5)
        with pytest.raises(ServiceError):
            PlacementConfig(kind="prefix", hot_points=-1)

    def test_build_constructs_matching_policy(self, array):
        cases = {
            "dma": WholeTitleDma,
            "prefix": PrefixReplication,
            "partial": PopularityWeightedPartial,
        }
        assert set(cases) == set(PLACEMENT_KINDS)
        for kind, cls in cases.items():
            policy = PlacementConfig(kind=kind).build(
                DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=25.0)
            )
            assert type(policy) is cls

    def test_build_forwards_dma_greedy_knob(self, array):
        policy = PlacementConfig(kind="dma", evict_until_fits=True).build(array)
        assert policy.evict_until_fits

    def test_build_forwards_hooks(self, array):
        stored, evicted = [], []
        policy = PlacementConfig(kind="dma").build(
            array, on_store=stored.append, on_evict=evicted.append
        )
        policy.on_request(video("a"))
        assert stored == ["a"]
