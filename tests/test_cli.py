"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert excinfo.value.code == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "Z"])

    def test_lvn_time_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lvn", "--time", "noon"])


class TestCaseStudy:
    def test_prints_tables_and_decisions(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        for exp in ("Experiment A", "Experiment B", "Experiment C", "Experiment D"):
            assert exp in out
        assert "Erratum" in out  # the Experiment A note


class TestExperiment:
    @pytest.mark.parametrize("exp_id", ["A", "B", "C", "D"])
    def test_each_experiment_runs(self, capsys, exp_id):
        assert main(["experiment", exp_id]) == 0
        out = capsys.readouterr().out
        assert "Decision (ours)" in out
        assert "Dijkstra step table" in out

    def test_experiment_a_reports_correction(self, capsys):
        main(["experiment", "A"])
        out = capsys.readouterr().out
        assert "download from U4" in out
        assert "paper printed U5" in out


class TestLvn:
    def test_default_8am_column(self, capsys):
        assert main(["lvn"]) == 0
        out = capsys.readouterr().out
        assert "Patra-Athens" in out
        assert "0.0831" in out  # 8am exact value 0.083158

    def test_time_option(self, capsys):
        assert main(["lvn", "--time", "4pm"]) == 0
        out = capsys.readouterr().out
        assert "1.5440" in out  # Thessaloniki-Athens @4pm

    def test_normalization_constant_option(self, capsys):
        main(["lvn", "--normalization-constant", "5"])
        out = capsys.readouterr().out
        assert "K=5" in out


class TestSimulate:
    def test_small_run_prints_metrics(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "6",
                "--requests-per-node", "4",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions" in out
        assert "transport cost" in out

    def test_policy_options_accepted(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "6",
                "--requests-per-node", "3",
                "--cache", "lru",
                "--selection", "minhop",
                "--switching", "never",
            ]
        )
        assert code == 0

    def test_bad_cache_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cache", "magic"])

    def test_placement_option_accepted(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "4",
                "--requests-per-node", "3",
                "--placement", "prefix",
                "--prefix-minutes", "12",
                "--hot-points", "1",
            ]
        )
        assert code == 0
        assert "sessions" in capsys.readouterr().out

    def test_bad_placement_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--placement", "mru"])

    def test_placement_conflicts_with_baseline_cache(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--placement", "prefix", "--cache", "lru"])

    def test_report_flag_prints_analysis(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "4",
                "--requests-per-node", "3",
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Run analysis" in out
        assert "Sources (by bytes served):" in out

    def test_custom_topology_file(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        assert main(["export-grnet", str(path), "--time", "8am"]) == 0
        code = main(
            [
                "simulate",
                "--topology", str(path),
                "--catalog-size", "4",
                "--requests-per-node", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions" in out


class TestExportGrnet:
    def test_export_writes_valid_topology(self, capsys, tmp_path):
        from repro.io import load_topology

        path = tmp_path / "grnet.json"
        assert main(["export-grnet", str(path)]) == 0
        topology = load_topology(path)
        assert topology.node_count == 6
        assert topology.link_count == 7
        assert all(link.background_mbps == 0.0 for link in topology.links())

    def test_export_with_traffic_column(self, tmp_path):
        from repro.io import load_topology

        path = tmp_path / "grnet-8am.json"
        assert main(["export-grnet", str(path), "--time", "8am"]) == 0
        topology = load_topology(path)
        assert topology.link_named("Patra-Athens").background_mbps == pytest.approx(0.2)

    def test_bad_time_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["export-grnet", str(tmp_path / "x.json"), "--time", "noon"])


class TestPlacement:
    def test_comparison_table_covers_all_policies(self, capsys):
        code = main(
            [
                "placement",
                "--requests-per-node", "3",
                "--catalog-size", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Placement-policy comparison" in out
        for kind in ("dma", "prefix", "partial"):
            assert kind in out
        assert "replay determinism" not in out  # gates only with --check

    def test_check_runs_replay_gates(self, capsys):
        code = main(
            [
                "placement",
                "--requests-per-node", "2",
                "--catalog-size", "4",
                "--check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replay determinism (dma rerun): PASS" in out
        assert "dma-policy equivalence (legacy shim): PASS" in out

    def test_bad_knob_rejected(self):
        with pytest.raises(SystemExit):
            main(["placement", "--prefix-minutes", "nope"])


class TestChaos:
    FAST = ["chaos", "--duration-hours", "0.5", "--requests-per-node", "3",
            "--seed", "11"]

    def test_prints_resilience_report(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "resilience report" in out
        assert "availability" in out
        assert "seed 11" in out

    def test_json_output_is_valid(self, capsys):
        import json

        assert main(self.FAST + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 11
        assert "availability" in payload
        assert set(payload["faults_injected"]) == {
            "link-flap", "link-degrade", "server-crash",
            "disk-failure", "snmp-blackout",
        }

    def test_show_faults_prints_log(self, capsys):
        assert main(self.FAST + ["--show-faults"]) == 0
        out = capsys.readouterr().out
        assert "inject" in out

    def test_min_availability_floor_gates_exit_code(self, capsys):
        assert main(self.FAST + ["--min-availability", "0.0"]) == 0
        assert main(self.FAST + ["--min-availability", "1.01"]) == 1
        assert "below floor" in capsys.readouterr().err

    def test_replays_identically(self, capsys):
        assert main(self.FAST + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.FAST + ["--json"]) == 0
        assert capsys.readouterr().out == first

    def test_bad_rate_type_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--link-flap-rate", "often"])


class TestObs:
    FAST = ["obs", "--requests-per-node", "2", "--catalog-size", "3",
            "--sample-period", "300"]

    def test_summary_reports_instruments_and_spans(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "Telemetry summary" in out
        assert "instruments:" in out
        assert "spans:" in out
        assert "hottest links" in out

    def test_jsonl_export_is_valid_and_diverse(self, capsys, tmp_path):
        import json

        path = tmp_path / "run.jsonl"
        assert main(self.FAST + ["--format", "jsonl", "--out", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) > 100
        assert {"sample", "counter", "histogram", "span"} <= {r["kind"] for r in rows}
        families = {r["name"] for r in rows if r["kind"] == "sample"}
        # The acceptance bar: at least five distinct instrument families.
        assert len(families) >= 5

    def test_csv_export_has_header_and_rows(self, capsys):
        assert main(self.FAST + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "kind,name,labels,time,value,count,mean,p50,p95,max"
        assert len(lines) > 10

    def test_timeline_renders_sparklines(self, capsys):
        assert main(self.FAST + ["--timeline", "link.utilization"]) == 0
        out = capsys.readouterr().out
        assert "link.utilization" in out
        assert "peak" in out

    def test_trace_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(self.FAST + ["--trace-out", str(path)]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["category"].startswith("span.") for r in rows)
        assert any(r["category"] == "vra.decision" for r in rows)

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["obs", "--scenario", "tsunami"])
