"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([])
        assert excinfo.value.code == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "Z"])

    def test_lvn_time_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lvn", "--time", "noon"])


class TestCaseStudy:
    def test_prints_tables_and_decisions(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        for exp in ("Experiment A", "Experiment B", "Experiment C", "Experiment D"):
            assert exp in out
        assert "Erratum" in out  # the Experiment A note


class TestExperiment:
    @pytest.mark.parametrize("exp_id", ["A", "B", "C", "D"])
    def test_each_experiment_runs(self, capsys, exp_id):
        assert main(["experiment", exp_id]) == 0
        out = capsys.readouterr().out
        assert "Decision (ours)" in out
        assert "Dijkstra step table" in out

    def test_experiment_a_reports_correction(self, capsys):
        main(["experiment", "A"])
        out = capsys.readouterr().out
        assert "download from U4" in out
        assert "paper printed U5" in out


class TestLvn:
    def test_default_8am_column(self, capsys):
        assert main(["lvn"]) == 0
        out = capsys.readouterr().out
        assert "Patra-Athens" in out
        assert "0.0831" in out  # 8am exact value 0.083158

    def test_time_option(self, capsys):
        assert main(["lvn", "--time", "4pm"]) == 0
        out = capsys.readouterr().out
        assert "1.5440" in out  # Thessaloniki-Athens @4pm

    def test_normalization_constant_option(self, capsys):
        main(["lvn", "--normalization-constant", "5"])
        out = capsys.readouterr().out
        assert "K=5" in out


class TestSimulate:
    def test_small_run_prints_metrics(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "6",
                "--requests-per-node", "4",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions" in out
        assert "transport cost" in out

    def test_policy_options_accepted(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "6",
                "--requests-per-node", "3",
                "--cache", "lru",
                "--selection", "minhop",
                "--switching", "never",
            ]
        )
        assert code == 0

    def test_bad_cache_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cache", "magic"])

    def test_report_flag_prints_analysis(self, capsys):
        code = main(
            [
                "simulate",
                "--catalog-size", "4",
                "--requests-per-node", "3",
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Run analysis" in out
        assert "Sources (by bytes served):" in out

    def test_custom_topology_file(self, capsys, tmp_path):
        path = tmp_path / "net.json"
        assert main(["export-grnet", str(path), "--time", "8am"]) == 0
        code = main(
            [
                "simulate",
                "--topology", str(path),
                "--catalog-size", "4",
                "--requests-per-node", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sessions" in out


class TestExportGrnet:
    def test_export_writes_valid_topology(self, capsys, tmp_path):
        from repro.io import load_topology

        path = tmp_path / "grnet.json"
        assert main(["export-grnet", str(path)]) == 0
        topology = load_topology(path)
        assert topology.node_count == 6
        assert topology.link_count == 7
        assert all(link.background_mbps == 0.0 for link in topology.links())

    def test_export_with_traffic_column(self, tmp_path):
        from repro.io import load_topology

        path = tmp_path / "grnet-8am.json"
        assert main(["export-grnet", str(path), "--time", "8am"]) == 0
        topology = load_topology(path)
        assert topology.link_named("Patra-Athens").background_mbps == pytest.approx(0.2)

    def test_bad_time_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["export-grnet", str(tmp_path / "x.json"), "--time", "noon"])
