"""Unit tests for the VoDService facade."""

import pytest

from repro.client.client import Client
from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.errors import ServiceError
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def small_config(**overrides) -> ServiceConfig:
    defaults = dict(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=500.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(grnet_8am):
    sim = Simulator(start_time=8 * 3600.0)
    return VoDService(sim, grnet_8am, small_config())


def movie(title_id="m1", size_mb=400.0, duration_s=3600.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=duration_s)


class TestInitialisation:
    def test_one_server_and_entry_per_node(self, service, grnet_8am):
        assert set(service.servers) == {n.uid for n in grnet_8am.nodes()}
        assert service.database.server_uids() == sorted(service.servers)

    def test_link_entries_registered_with_bandwidth(self, service):
        entry = service.database.link_entry("Thessaloniki-Athens")
        assert entry.total_bandwidth_mbps == 18.0

    def test_seed_title_advertises(self, service):
        service.seed_title("U4", movie())
        assert service.database.servers_with_title("m1") == ["U4"]
        assert service.servers["U4"].has_title("m1")

    def test_seed_on_unknown_server_rejected(self, service):
        with pytest.raises(ServiceError):
            service.seed_title("U9", movie())

    def test_access_network_attachment(self, service):
        service.attach_access_network("10.2.0", "U2")
        client = Client("alice", "10.2.0.7")
        assert service.register_client(client) == "U2"

    def test_conflicting_subnet_rejected(self, service):
        service.attach_access_network("10.2.0", "U2")
        with pytest.raises(ServiceError):
            service.attach_access_network("10.2.0", "U3")

    def test_same_subnet_reattachment_ok(self, service):
        service.attach_access_network("10.2.0", "U2")
        service.attach_access_network("10.2.0", "U2")

    def test_unknown_server_attachment_rejected(self, service):
        with pytest.raises(ServiceError):
            service.attach_access_network("10.0.0", "U9")


class TestRequestPath:
    def test_remote_request_completes(self, service):
        service.seed_title("U4", movie())
        request, session, process = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.servers_used == ["U4"]
        assert process.finished

    def test_local_request_served_from_home(self, service):
        service.seed_title("U2", movie())
        request, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.servers_used == ["U2"]
        assert session.record.clusters[0].path_nodes == ("U2",)

    def test_submit_resolves_home_from_client_address(self, service):
        service.seed_title("U4", movie())
        service.attach_access_network("10.2.0", "U2")
        client = Client("alice", "10.2.0.7")
        service.register_client(client)
        request, _, _ = service.submit(client, "m1")
        assert request.home_uid == "U2"

    def test_submit_by_client_id(self, service):
        service.seed_title("U4", movie())
        service.attach_access_network("10.2.0", "U2")
        service.register_client(Client("alice", "10.2.0.7"))
        request, _, _ = service.submit("alice", "m1")
        assert request.client_id == "alice"

    def test_unregistered_client_rejected(self, service):
        service.seed_title("U4", movie())
        with pytest.raises(ServiceError):
            service.submit("ghost", "m1")
        with pytest.raises(ServiceError):
            service.submit(Client("ghost", "10.2.0.9"), "m1")

    def test_unknown_home_rejected(self, service):
        service.seed_title("U4", movie())
        with pytest.raises(ServiceError):
            service.request_by_home("U9", "m1")

    def test_unknown_title_rejected(self, service):
        with pytest.raises(Exception):
            service.request_by_home("U2", "ghost")


class TestDmaIntegration:
    def test_remote_fetch_caches_at_home_after_completion(self, service):
        service.seed_title("U4", movie())
        service.request_by_home("U2", "m1")
        # While streaming, the copy must not be advertised at U2.
        service.sim.run(until=service.sim.now + 10.0)
        assert service.database.servers_with_title("m1") == ["U4"]
        assert service.servers["U2"].pending_title_ids() == ["m1"]
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        assert service.database.servers_with_title("m1") == ["U2", "U4"]
        assert service.servers["U2"].pending_title_ids() == []

    def test_second_request_served_locally_after_caching(self, service):
        service.seed_title("U4", movie())
        service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        _, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 3600.0)
        assert session.record.servers_used == ["U2"]

    def test_mid_session_decisions_ignore_pending_copy(self, service):
        service.seed_title("U4", movie())
        _, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        # Every cluster must have come from U4 (the pending local copy
        # never participates in its own download).
        assert session.record.servers_used == ["U4"]


class TestDecide:
    def test_decide_uses_advertisements(self, service):
        service.seed_title("U4", movie())
        service.seed_title("U5", movie())
        decision = service.decide("U2", "m1")
        assert decision.chosen_uid in {"U4", "U5"}

    def test_decide_respects_admission_poll(self, service, grnet_8am):
        config = small_config(max_streams=1)
        sim = Simulator(start_time=8 * 3600.0)
        svc = VoDService(sim, grnet_8am, config)
        svc.seed_title("U4", movie())
        svc.seed_title("U5", movie())
        lease = svc.servers["U4"].begin_serving("m1")
        decision = svc.decide("U2", "m1")
        assert decision.chosen_uid == "U5"
        svc.servers["U4"].end_serving(lease)


class TestStatisticsIntegration:
    def test_reported_stats_feed_vra(self, grnet_8am):
        sim = Simulator(start_time=8 * 3600.0)
        service = VoDService(sim, grnet_8am, small_config(use_reported_stats=True))
        service.start()
        # Before any SNMP window closes, the DB reports idle links.
        weights_before = service.vra.weights()
        assert all(w == 0.0 for w in weights_before.values())
        sim.run(until=sim.now + 130.0)
        weights_after = service.vra.weights()
        # After two polls the Table 2 background shows up in the weights.
        assert weights_after["Patra-Athens"] > 0.0

    def test_start_is_idempotent(self, service):
        service.start()
        service.start()
        service.sim.run(until=service.sim.now + 61.0)


class TestIntrospection:
    def test_sessions_recorded(self, service):
        service.seed_title("U4", movie())
        service.request_by_home("U2", "m1")
        assert len(service.sessions) == 1
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        assert len(service.completed_sessions()) == 1

    def test_title_video_roundtrip(self, service):
        original = movie()
        service.seed_title("U4", original)
        rebuilt = service.title_video("m1")
        assert rebuilt.size_mb == original.size_mb
        assert rebuilt.bitrate_mbps == pytest.approx(original.bitrate_mbps)
