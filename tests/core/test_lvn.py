"""Unit tests for the LVN equations (1)-(4) against hand computations and
the paper's Table 3."""

import pytest

from repro.core.lvn import (
    DEFAULT_NORMALIZATION_CONSTANT,
    link_traffic,
    link_utilization_term,
    link_validation_number,
    link_value,
    node_validation,
    weight_table,
)
from repro.errors import ReproError
from repro.network.grnet import PAPER_TABLE3_LVN, apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology


class TestNodeValidation:
    def test_eq2_aggregates_adjacent_links(self, grnet_8am):
        # NV(Patra) = (0.2 + 0.0001) / (2 + 2) per the paper's example form.
        assert node_validation(grnet_8am, "U2") == pytest.approx(0.2001 / 4.0)

    def test_eq2_athens_with_three_links(self, grnet_8am):
        # NV(Athens) = (0.2 + 1.7 + 0.5) / (2 + 18 + 18).
        assert node_validation(grnet_8am, "U1") == pytest.approx(2.4 / 38.0)

    def test_idle_network_gives_zero(self, grnet):
        for node in grnet.nodes():
            assert node_validation(grnet, node.uid) == 0.0

    def test_isolated_node_rejected(self):
        topology = Topology()
        topology.add_node(Node("A"))
        with pytest.raises(ReproError):
            node_validation(topology, "A")

    def test_custom_used_of_provider(self, grnet):
        nv = node_validation(grnet, "U2", used_of=lambda link: link.capacity_mbps / 2.0)
        assert nv == pytest.approx(0.5)


class TestLinkValue:
    def test_eq4_divides_by_k(self, grnet):
        link = grnet.link_named("Thessaloniki-Athens")
        assert link_value(link) == pytest.approx(1.8)
        assert link_value(link, normalization_constant=9.0) == pytest.approx(2.0)

    def test_small_link(self, grnet):
        assert link_value(grnet.link_named("Patra-Athens")) == pytest.approx(0.2)

    def test_invalid_k_rejected(self, grnet):
        with pytest.raises(ReproError):
            link_value(grnet.link_named("Patra-Athens"), normalization_constant=0.0)


class TestLinkTrafficAndLU:
    def test_lt_is_utilization(self, grnet_8am):
        assert link_traffic(grnet_8am.link_named("Patra-Athens")) == pytest.approx(0.1)

    def test_eq3_lu_is_lt_times_lv(self, grnet_8am):
        link = grnet_8am.link_named("Thessaloniki-Athens")
        # LT = 1.7/18, LV = 1.8 -> LU = 0.17.
        assert link_utilization_term(link) == pytest.approx(0.17)


class TestLinkValidationNumber:
    def test_eq1_patra_athens_8am(self, grnet_8am):
        link = grnet_8am.link_named("Patra-Athens")
        # max(NV) = NV(Athens) = 2.4/38; LU = 0.1 * 0.2.
        expected = 2.4 / 38.0 + 0.02
        assert link_validation_number(grnet_8am, link) == pytest.approx(expected)

    def test_takes_worse_endpoint(self, grnet_8am):
        link = grnet_8am.link_named("Patra-Ioannina")
        nv_patra = node_validation(grnet_8am, "U2")
        nv_ioannina = node_validation(grnet_8am, "U3")
        assert nv_ioannina > nv_patra
        lvn = link_validation_number(grnet_8am, link)
        assert lvn == pytest.approx(nv_ioannina + link_utilization_term(link))

    def test_weight_table_matches_per_link_function(self, grnet_8am):
        table = weight_table(grnet_8am)
        for link in grnet_8am.links():
            assert table[link.name] == pytest.approx(
                link_validation_number(grnet_8am, link)
            )

    def test_idle_network_weights_are_zero(self, grnet):
        assert all(w == 0.0 for w in weight_table(grnet).values())


class TestAgainstPaperTable3:
    @pytest.mark.parametrize("time_label", ["8am", "10am", "4pm", "6pm"])
    def test_all_cells_within_paper_rounding(self, time_label):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, time_label)
        weights = weight_table(topology)
        for link_name, row in PAPER_TABLE3_LVN.items():
            # The paper rounds inconsistently (DESIGN.md erratum 2); all
            # printed cells agree with exact arithmetic to within 0.006.
            assert weights[link_name] == pytest.approx(row[time_label], abs=6e-3), link_name

    def test_exact_match_on_consistently_rounded_cells(self):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        weights = weight_table(topology)
        assert weights["Patra-Athens"] == pytest.approx(0.083, abs=5e-4)
        assert weights["Thessaloniki-Xanthi"] == pytest.approx(0.168, abs=5e-4)
        assert weights["Thessaloniki-Ioannina"] == pytest.approx(0.1427, abs=5e-4)


class TestMonotonicity:
    def test_lvn_increases_with_link_traffic(self, grnet):
        link = grnet.link_named("Patra-Athens")
        previous = -1.0
        for mbps in (0.0, 0.5, 1.0, 1.5, 2.0):
            link.set_background_mbps(mbps)
            lvn = link_validation_number(grnet, link)
            assert lvn > previous
            previous = lvn

    def test_lvn_increases_with_neighbor_traffic(self, grnet):
        target = grnet.link_named("Patra-Athens")
        before = link_validation_number(grnet, target)
        # Load a *different* link at Athens; the NV term must rise.
        grnet.link_named("Thessaloniki-Athens").set_background_mbps(9.0)
        after = link_validation_number(grnet, target)
        assert after > before
