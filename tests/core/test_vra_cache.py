"""Cache-invalidation edges of the epoch-versioned VRA routing cache,
exercised through the service facade (the paper-faithful data flow)."""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.core.vra import VirtualRoutingAlgorithm
from repro.database.records import LinkStats
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.storage.video import VideoTitle

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)


def build_service(**config_kwargs) -> VoDService:
    sim = Simulator()
    service = VoDService(
        sim, build_grnet_topology(), ServiceConfig(**config_kwargs)
    )
    service.seed_title("U4", MOVIE)
    service.seed_title("U5", MOVIE)
    service.start()
    return service


def report_traffic(service: VoDService, label: str = "8am") -> None:
    """Put the paper's Table 2 sample into the limited-access database,
    the way a completed SNMP round would."""
    apply_traffic_sample(service.topology, label)
    admin = service.database.limited_access()
    for link in service.topology.links():
        admin.update_link_stats(
            link.name,
            LinkStats(
                used_mbps=link.used_mbps,
                utilization=link.utilization,
                timestamp=service.sim.now,
            ),
        )


class TestCacheWiring:
    def test_cache_on_by_default(self):
        service = build_service()
        assert service.vra.cache is not None
        assert service.vra.cache.max_trees == 128

    def test_size_zero_bypasses_cache(self):
        service = build_service(routing_cache_size=0)
        assert service.vra.cache is None
        assert service.vra.cache_stats is None
        decision = service.decide("U2", "movie")
        assert decision.chosen_uid in {"U4", "U5"}

    def test_negative_size_rejected_through_config(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="cache size"):
            build_service(routing_cache_size=-1)

    def test_server_load_extension_disables_cache(self):
        service = build_service(use_server_load_in_vra=True)
        assert service.vra.cache is None

    def test_standalone_vra_defaults_uncached(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        assert vra.cache is None
        vra.decide("U2", "movie", holders=["U4"])


class TestCacheHitsAndEquivalence:
    def test_repeat_decision_hits_and_matches(self):
        service = build_service()
        first = service.decide("U2", "movie")
        second = service.decide("U2", "movie")
        stats = service.vra.cache_stats
        assert stats.tree_hits >= 1
        assert stats.weight_hits >= 1
        assert second.chosen_uid == first.chosen_uid
        assert second.path.nodes == first.path.nodes
        assert second.cost == first.cost

    def test_cached_decisions_match_uncached_service(self):
        cached = build_service()
        uncached = build_service(routing_cache_size=0)
        homes = ["U1", "U2", "U3", "U6"]
        for _ in range(3):
            for home in homes:
                a = cached.decide(home, "movie")
                b = uncached.decide(home, "movie")
                assert (a.chosen_uid, a.path.nodes, a.cost) == (
                    b.chosen_uid,
                    b.path.nodes,
                    b.cost,
                )
        assert cached.vra.cache_stats.hits > 0


class TestInvalidationEdges:
    def test_snmp_write_invalidates_before_next_decision(self):
        service = build_service()
        service.decide("U2", "movie")  # warm
        warm_misses = service.vra.cache_stats.tree_misses
        # An SNMP sample lands mid-session: the U2-U3 route becomes
        # reportedly saturated, so the next cluster decision must see it.
        admin = service.database.limited_access()
        admin.update_link_stats(
            "Patra-Ioannina",
            LinkStats(used_mbps=2.0, utilization=1.0, timestamp=service.sim.now),
        )
        decision = service.decide("U2", "movie")
        stats = service.vra.cache_stats
        assert stats.invalidations >= 1
        assert stats.tree_misses == warm_misses + 1
        # The recomputed weights reflect the new sample, not the cached 0s.
        assert decision.weights["Patra-Ioannina"] > 0.0

    def test_link_failure_bumps_epoch_between_snmp_rounds(self):
        service = build_service()
        report_traffic(service, "8am")
        before = service.decide("U2", "movie")
        # Experiment A: at 8am traffic U2 reaches U4 via Ioannina.
        assert before.path.nodes == ("U2", "U3", "U4")
        epoch_before = service.routing_epoch()
        # No simulated time passes — this failure lands between SNMP rounds.
        service.topology.link_named("Patra-Ioannina").online = False
        assert service.routing_epoch() != epoch_before
        after = service.decide("U2", "movie")
        hops = list(zip(after.path.nodes, after.path.nodes[1:]))
        assert ("U2", "U3") not in hops and ("U3", "U2") not in hops
        assert service.vra.cache_stats.invalidations >= 1

    def test_runtime_expansion_invalidates(self):
        from repro.network.link import Link
        from repro.network.node import Node

        service = build_service()
        service.decide("U2", "movie")
        epoch_before = service.routing_epoch()
        service.add_server(
            Node("U7", name="Larissa"),
            [Link("U7", "U1", capacity_mbps=10.0), Link("U7", "U4", capacity_mbps=10.0)],
        )
        assert service.routing_epoch() != epoch_before

    def test_ground_truth_mode_tracks_reservations(self):
        service = build_service(use_reported_stats=False)
        epoch_before = service.routing_epoch()
        service.flows.reserve(["U2", "U1"], 1.0)
        assert service.routing_epoch() != epoch_before


class TestHoldersNormalization:
    def test_accepts_generator(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide(
            "U2", "movie", holders=(uid for uid in ["U4", "U5"])
        )
        assert decision.chosen_uid == "U4"

    def test_accepts_set(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U2", "movie", holders={"U4"})
        assert decision.chosen_uid == "U4"

    def test_duplicates_polled_once(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        polled = []

        def poll(uid):
            polled.append(uid)
            return True

        decision = vra.decide(
            "U2", "movie", holders=["U4", "U5", "U4", "U5"], poll=poll
        )
        assert polled == ["U4", "U5"]
        assert decision.chosen_uid == "U4"

    def test_polled_out_order_preserved(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide(
            "U2",
            "movie",
            holders=["U5", "U4", "U6"],
            poll=lambda uid: uid == "U4",
        )
        assert decision.polled_out == ("U5", "U6")


class TestSnapshot:
    def test_snapshot_reports_cache_counters(self):
        service = build_service()
        service.decide("U2", "movie")
        service.decide("U2", "movie")
        snapshot = service.snapshot()
        assert snapshot["vra_decisions"] == 2
        assert snapshot["routing_cache"]["tree_hits"] >= 1
        assert snapshot["routing_epoch"] == service.routing_epoch()

    def test_snapshot_with_cache_off(self):
        service = build_service(routing_cache_size=0)
        snapshot = service.snapshot()
        assert snapshot["routing_cache"] is None

    def test_snapshot_traced_when_enabled(self):
        sim = Simulator()
        service = VoDService(
            sim, build_grnet_topology(), ServiceConfig(), tracer=Tracer(enabled=True)
        )
        service.snapshot()
        events = service.tracer.events("service.snapshot")
        assert len(events) == 1
        assert "routing_cache" in events[0].data
