"""Unit tests for the load-leveling admission queue.

The queue is a pure function of its arrival sequence: every outcome
(immediate / delayed / shed, assigned tick, cohort membership) must be
derivable by hand from ``capacity``, ``rate_per_s`` and ``tick_s``, and
identical on every replay.
"""

import pytest

from repro.core.admission_queue import AdmissionQueue
from repro.errors import ReproError


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ReproError, match="capacity"):
            AdmissionQueue(capacity=0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ReproError, match="rate"):
            AdmissionQueue(capacity=1, rate_per_s=0.0)
        with pytest.raises(ReproError, match="rate"):
            AdmissionQueue(capacity=1, rate_per_s=-1.0)

    def test_nonpositive_tick_rejected(self):
        with pytest.raises(ReproError, match="tick"):
            AdmissionQueue(capacity=1, tick_s=0.0)

    def test_quota_is_at_least_one(self):
        queue = AdmissionQueue(capacity=1, rate_per_s=0.001, tick_s=1.0)
        assert queue.quota_per_tick == 1

    def test_quota_rounds_down_fractional_rates(self):
        assert AdmissionQueue(1, rate_per_s=2.5, tick_s=1.0).quota_per_tick == 2
        assert AdmissionQueue(1, rate_per_s=0.5, tick_s=10.0).quota_per_tick == 5


class TestPacing:
    def test_within_quota_is_immediate(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=2.0, tick_s=1.0)
        first = queue.offer(0.25, key="a")
        second = queue.offer(0.25, key="a")
        for slot in (first, second):
            assert not slot.shed
            assert slot.wait_s == 0.0
            assert slot.admit_at == 0.25
        assert queue.stats.immediate == 2
        assert queue.depth == 0  # zero-wait admissions never occupy the queue

    def test_beyond_quota_lands_on_later_ticks_in_arrival_order(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=2.0, tick_s=1.0)
        queue.offer(0.25, key="a")
        queue.offer(0.25, key="a")
        third = queue.offer(0.25, key="a")
        fourth = queue.offer(0.25, key="a")
        fifth = queue.offer(0.25, key="a")
        assert (third.admit_at, third.wait_s) == (1.0, 0.75)
        assert (fourth.admit_at, fourth.wait_s) == (1.0, 0.75)
        assert (fifth.admit_at, fifth.wait_s) == (2.0, 1.75)
        assert queue.depth == 3
        assert queue.stats.delayed == 3
        assert queue.stats.max_depth == 3
        assert queue.stats.max_wait_s == 1.75

    def test_ticks_are_wall_aligned_not_arrival_aligned(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=1.0, tick_s=1.0)
        queue.offer(3.7, key="a")
        delayed = queue.offer(3.7, key="a")
        assert delayed.admit_at == 4.0  # the next tick boundary, not now+1
        assert delayed.wait_s == pytest.approx(0.3)

    def test_idle_gap_resets_the_drain_cursor(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=1.0, tick_s=1.0)
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="a")  # assigned to tick 1
        late = queue.offer(50.0, key="a")  # quota of tick 50 is untouched
        assert not late.shed and late.wait_s == 0.0

    def test_shed_once_capacity_waiting(self):
        queue = AdmissionQueue(capacity=1, rate_per_s=1.0 / 60.0, tick_s=60.0)
        assert queue.offer(0.0, key="a").wait_s == 0.0
        assert queue.offer(0.0, key="a").wait_s == 60.0
        slot = queue.offer(0.0, key="a")
        assert slot.shed
        assert slot.depth == 1
        assert queue.stats.shed == 1
        assert queue.stats.shed_rate == pytest.approx(1.0 / 3.0)

    def test_release_frees_a_waiting_slot(self):
        queue = AdmissionQueue(capacity=1, rate_per_s=1.0 / 60.0, tick_s=60.0)
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="a")
        assert queue.offer(0.0, key="a").shed
        queue.release()
        assert queue.depth == 0
        assert not queue.offer(61.0, key="a").shed
        assert queue.stats.released == 1

    def test_identical_arrivals_replay_identically(self):
        arrivals = [(0.0, "a"), (0.0, "b"), (0.5, "a"), (2.0, "c"), (2.0, "c")]

        def run():
            queue = AdmissionQueue(capacity=2, rate_per_s=1.0, tick_s=1.0)
            slots = [queue.offer(now, key) for now, key in arrivals]
            queue.finalize()
            return slots, queue.snapshot()

        assert run() == run()


class TestCohorts:
    def test_same_tick_admissions_form_a_batch_with_coalescing(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=3.0, tick_s=1.0)
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="b")
        # The fourth offer rolls the cursor to tick 1, flushing the cohort.
        queue.offer(0.0, key="b")
        stats = queue.stats
        assert stats.batches == 1
        assert stats.max_batch == 3
        assert stats.coalesced == 1  # the second "a" rides the first's decision

    def test_finalize_flushes_the_inflight_cohort(self):
        queue = AdmissionQueue(capacity=10, rate_per_s=10.0, tick_s=1.0)
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="a")
        assert queue.stats.batches == 0  # still filling the first tick
        queue.finalize()
        assert queue.stats.batches == 1
        assert queue.stats.max_batch == 2
        queue.finalize()  # idempotent: nothing new to flush
        assert queue.stats.batches == 1

    def test_snapshot_carries_counters_and_live_depth(self):
        queue = AdmissionQueue(capacity=2, rate_per_s=1.0 / 60.0, tick_s=60.0)
        queue.offer(0.0, key="a")
        queue.offer(0.0, key="a")
        view = queue.snapshot()
        assert view["offered"] == 2
        assert view["immediate"] == 1
        assert view["delayed"] == 1
        assert view["depth"] == 1
        assert view["mean_wait_s"] == 60.0

    def test_empty_queue_rates_are_zero(self):
        queue = AdmissionQueue(capacity=1)
        assert queue.stats.mean_wait_s == 0.0
        assert queue.stats.shed_rate == 0.0
