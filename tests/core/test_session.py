"""Unit tests for the per-cluster streaming session."""

import pytest

from repro.client.requests import RequestStatus, VideoRequest
from repro.core.session import StreamingSession
from repro.core.vra import VraDecision
from repro.errors import RoutingError
from repro.network.flows import FlowManager
from repro.network.routing.paths import Path
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.storage.video import VideoTitle


def make_decision(nodes, cost=0.1):
    path = Path(nodes=tuple(nodes), cost=cost)
    return VraDecision(
        title_id="v",
        home_uid=nodes[0],
        chosen_uid=nodes[-1],
        served_locally=len(nodes) == 1,
        path=path,
    )


def run_session(line, decide, video=None, cluster_mb=25.0, local_read_mbps=100.0):
    sim = Simulator()
    flows = FlowManager(line)
    video = video or VideoTitle("v", size_mb=100.0, duration_s=800.0)  # 1 Mbps
    request = VideoRequest(client_id="c", home_uid="A", title_id="v", submitted_at=sim.now)
    session = StreamingSession(
        sim=sim,
        request=request,
        video=video,
        cluster_mb=cluster_mb,
        decide=decide,
        flows=flows,
        servers={},
        local_read_mbps=local_read_mbps,
    )
    process = Process(sim, session.run(), name="test-session")
    sim.run()
    return session.record, process, sim, flows


class TestDelivery:
    def test_all_clusters_delivered_in_order(self, line):
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B", "C"]))
        assert record.request.status is RequestStatus.COMPLETED
        assert [c.index for c in record.clusters] == [0, 1, 2, 3]
        assert sum(c.size_mb for c in record.clusters) == pytest.approx(100.0)

    def test_transfer_time_matches_rate(self, line):
        # 100 MB at 1 Mbps bitrate = 800 s total.
        record, _, sim, _ = run_session(line, lambda: make_decision(["A", "B"]))
        assert record.completed_at == pytest.approx(800.0)
        assert sim.now == pytest.approx(800.0)

    def test_local_serve_uses_disk_rate(self, line):
        # 100 MB at 100 Mbps = 8 s.
        record, _, _, _ = run_session(line, lambda: make_decision(["A"]))
        assert record.completed_at == pytest.approx(8.0)
        assert all(c.rate_mbps == 100.0 for c in record.clusters)
        assert record.servers_used == ["A"]

    def test_flows_reserved_during_transfer_and_released_after(self, line):
        states = []

        def decide():
            states.append(line.link_between("A", "B").reserved_mbps)
            return make_decision(["A", "B"])

        record, _, _, flows = run_session(line, decide)
        # At each decide() call the previous cluster's flow was released.
        assert all(r == 0.0 for r in states)
        assert flows.active_count == 0
        assert record.completed

    def test_startup_delay_is_first_cluster_time(self, line):
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B"]))
        # 25 MB at 1 Mbps = 200 s.
        assert record.startup_delay_s == pytest.approx(200.0)

    def test_no_stall_when_bandwidth_sufficient(self, line):
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B"]))
        assert record.stall_s == pytest.approx(0.0)


class TestSwitching:
    def test_switch_counted_when_server_changes(self, line):
        decisions = iter(
            [
                make_decision(["A", "B"]),
                make_decision(["A", "B"]),
                make_decision(["A", "B", "C"]),
                make_decision(["A", "B", "C"]),
            ]
        )
        record, _, _, _ = run_session(line, lambda: next(decisions))
        assert record.switch_count == 1
        assert record.servers_used == ["B", "C"]
        assert [c.switched for c in record.clusters] == [False, False, True, False]

    def test_no_switch_when_server_stable(self, line):
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B"]))
        assert record.switch_count == 0

    def test_cluster_size_sets_decision_granularity(self, line):
        calls = []

        def decide():
            calls.append(True)
            return make_decision(["A", "B"])

        run_session(line, decide, cluster_mb=10.0)  # 10 clusters
        assert len(calls) == 10


class TestDegradation:
    def test_congested_path_degrades_rate_and_flags_qos(self, line):
        line.link_between("A", "B").set_background_mbps(9.5)  # 0.5 Mbps free
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B"]))
        assert record.completed
        assert record.qos_violation_count == len(record.clusters)
        assert all(c.rate_mbps == pytest.approx(0.5) for c in record.clusters)
        assert record.stall_s > 0.0

    def test_fully_saturated_path_uses_floor_rate(self, line):
        line.link_between("A", "B").set_background_mbps(10.0)
        video = VideoTitle("v", size_mb=1.0, duration_s=8.0)  # tiny, 1 Mbps
        record, _, _, _ = run_session(line, lambda: make_decision(["A", "B"]), video=video)
        assert record.completed
        assert all(c.rate_mbps == pytest.approx(0.05) for c in record.clusters)

    def test_decide_failure_fails_request(self, line):
        def decide():
            raise RoutingError("no candidates")

        record, process, _, _ = run_session(line, decide)
        assert record.request.status is RequestStatus.FAILED
        assert "no candidates" in record.request.failure_reason
        assert record.clusters == []
        assert process.finished

    def test_mid_stream_failure_keeps_partial_clusters(self, line):
        calls = {"n": 0}

        def decide():
            calls["n"] += 1
            if calls["n"] > 2:
                raise RoutingError("source died")
            return make_decision(["A", "B"])

        record, _, _, flows = run_session(line, decide)
        assert record.request.status is RequestStatus.FAILED
        assert len(record.clusters) == 2
        assert flows.active_count == 0  # nothing leaked


class TestPlaybackMetrics:
    def test_stall_accounts_for_late_clusters(self, line):
        # First cluster fast (local), rest slow (remote congested) --
        # playback must out-run the downloads and stall.
        line.link_between("A", "B").set_background_mbps(9.0)  # 1 Mbps free
        decisions = iter(
            [make_decision(["A"])] + [make_decision(["A", "B"])] * 3
        )
        video = VideoTitle("v", size_mb=100.0, duration_s=100.0)  # 8 Mbps playback
        record, _, _, _ = run_session(line, lambda: next(decisions), video=video)
        assert record.completed
        assert record.stall_s > 0.0

    def test_on_finish_callback_receives_record(self, line):
        sim = Simulator()
        flows = FlowManager(line)
        video = VideoTitle("v", size_mb=50.0, duration_s=400.0)
        request = VideoRequest(client_id="c", home_uid="A", title_id="v", submitted_at=0.0)
        finished = []
        session = StreamingSession(
            sim=sim,
            request=request,
            video=video,
            cluster_mb=25.0,
            decide=lambda: make_decision(["A", "B"]),
            flows=flows,
            servers={},
            on_finish=finished.append,
        )
        Process(sim, session.run())
        sim.run()
        assert finished == [session.record]
