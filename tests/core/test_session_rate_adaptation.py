"""Unit tests for best-effort in-flight rate adaptation (DESIGN.md §5b.1)."""

import pytest

from repro.client.requests import VideoRequest
from repro.core.session import StreamingSession
from repro.core.vra import VraDecision
from repro.errors import ReproError
from repro.network.flows import FlowManager
from repro.network.routing.paths import Path
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.storage.video import VideoTitle


def make_decision(nodes):
    return VraDecision(
        title_id="v",
        home_uid=nodes[0],
        chosen_uid=nodes[-1],
        served_locally=len(nodes) == 1,
        path=Path(nodes=tuple(nodes), cost=1.0),
    )


def build_session(line, video, quantum=60.0):
    sim = Simulator()
    flows = FlowManager(line)
    request = VideoRequest(client_id="c", home_uid="A", title_id="v", submitted_at=0.0)
    session = StreamingSession(
        sim=sim,
        request=request,
        video=video,
        cluster_mb=video.size_mb,  # single cluster: isolates in-flight behaviour
        decide=lambda: make_decision(["A", "B"]),
        flows=flows,
        servers={},
        rate_update_period_s=quantum,
    )
    Process(sim, session.run())
    return sim, session


class TestMidTransferDegradation:
    def test_congestion_mid_cluster_slows_the_transfer(self, line):
        # 100 MB at 8 Mbps playback would take 100 s; congesting the link
        # at t=30 s leaves ~70 MB to crawl at ~2 Mbps.
        video = VideoTitle("v", size_mb=100.0, duration_s=100.0)  # 8 Mbps
        sim, session = build_session(line, video, quantum=10.0)
        sim.schedule(30.0, lambda: line.link_between("A", "B").set_background_mbps(8.0))
        sim.run()
        record = session.record
        assert record.completed
        duration = record.completed_at - record.request.submitted_at
        # 30 s at 8 Mbps (30 MB) + 70 MB at 2 Mbps (280 s) = ~310 s.
        assert duration == pytest.approx(310.0, rel=0.05)
        assert record.qos_violation_count == 1

    def test_transfer_recovers_when_congestion_clears(self, line):
        video = VideoTitle("v", size_mb=100.0, duration_s=100.0)  # 8 Mbps
        line.link_between("A", "B").set_background_mbps(8.0)  # 2 Mbps free
        sim, session = build_session(line, video, quantum=10.0)
        sim.schedule(40.0, lambda: line.link_between("A", "B").set_background_mbps(0.0))
        sim.run()
        record = session.record
        # 40 s at 2 Mbps (10 MB) + 90 MB at 8 Mbps (90 s) = ~130 s;
        # without recovery it would have been 400 s.
        duration = record.completed_at - record.request.submitted_at
        assert duration == pytest.approx(130.0, rel=0.05)

    def test_steady_conditions_unaffected_by_quantum(self, line):
        video = VideoTitle("v", size_mb=100.0, duration_s=800.0)  # 1 Mbps
        durations = {}
        for quantum in (10.0, 60.0, 10_000.0):
            topology_line = line  # same idle conditions each time
            sim, session = build_session(topology_line, video, quantum=quantum)
            sim.run()
            durations[quantum] = session.record.completed_at
        values = list(durations.values())
        assert all(v == pytest.approx(values[0], rel=1e-6) for v in values)

    def test_rate_reported_is_average(self, line):
        video = VideoTitle("v", size_mb=100.0, duration_s=100.0)
        sim, session = build_session(line, video, quantum=10.0)
        sim.schedule(30.0, lambda: line.link_between("A", "B").set_background_mbps(8.0))
        sim.run()
        cluster = session.record.clusters[0]
        expected = 100.0 * 8.0 / (cluster.end - cluster.start)
        assert cluster.rate_mbps == pytest.approx(expected)

    def test_invalid_quantum_rejected(self, line):
        video = VideoTitle("v", size_mb=10.0, duration_s=10.0)
        with pytest.raises(ReproError):
            build_session(line, video, quantum=0.0)

    def test_reservation_follows_rerating(self, line):
        # While degraded, the session must not keep its original larger
        # reservation pinned on the link.
        video = VideoTitle("v", size_mb=100.0, duration_s=100.0)  # 8 Mbps
        link = line.link_between("A", "B")
        sim, session = build_session(line, video, quantum=10.0)
        sim.schedule(30.0, lambda: link.set_background_mbps(8.0))
        sim.run(until=100.0)
        # At t=100 the transfer crawls at ~2 Mbps: reservation <= 2.
        assert link.reserved_mbps <= 2.0 + 1e-9
        sim.run()
        assert session.record.completed
        assert link.reserved_mbps == 0.0
