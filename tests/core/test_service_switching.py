"""Unit tests for per-session switching-wrapper wiring in the service."""

import pytest

from repro.baselines.switching import NeverSwitch, PeriodicRecompute
from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service():
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(
        sim,
        topology,
        ServiceConfig(cluster_mb=100.0, use_reported_stats=False),
    )


def movie():
    return VideoTitle("m", size_mb=400.0, duration_s=3600.0)


class TestDecideWrapperWiring:
    def test_never_switch_freezes_per_session_not_globally(self):
        # Each session must get its own frozen decision: a later session
        # starting after conditions changed should still decide fresh.
        service = make_service()
        service.decide_wrapper = NeverSwitch
        service.seed_title("U4", movie())
        _, first, _ = service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        assert first.record.completed
        assert first.record.servers_used == ["U4"]

        # A fresh title (so the DMA cache at U2 cannot shortcut it) with
        # replicas at U4 and U1, requested after the U3 route congested:
        # the new session's own frozen decision must reflect the new state.
        title2 = VideoTitle("m2", size_mb=400.0, duration_s=3600.0)
        service.seed_title("U4", title2)
        service.seed_title("U1", title2)
        service.topology.link_named("Patra-Ioannina").set_background_mbps(1.95)
        _, second, _ = service.request_by_home("U2", "m2")
        service.sim.run(until=service.sim.now + 3600.0)
        assert second.record.completed
        # Frozen within the session, but the session-start decision is new.
        assert second.record.servers_used == ["U1"]
        assert second.record.switch_count == 0

    def test_periodic_wrapper_counts_underlying_calls(self):
        service = make_service()
        wrappers = []

        def factory(decide):
            wrapper = PeriodicRecompute(decide, 2)
            wrappers.append(wrapper)
            return wrapper

        service.decide_wrapper = factory
        service.seed_title("U4", movie())
        _, session, _ = service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        assert session.record.completed
        assert len(wrappers) == 1
        clusters = len(session.record.clusters)
        assert wrappers[0].underlying_calls == -(-clusters // 2)

    def test_default_service_has_no_wrapper(self):
        service = make_service()
        assert service.decide_wrapper is None
