"""Unit tests for the service-level future-work extensions:
server-load-aware validation and strict QoS admission."""

import pytest

from repro.client.requests import RequestStatus
from repro.core.lvn import node_validation
from repro.core.service import ServiceConfig, VoDService
from repro.core.vra import VirtualRoutingAlgorithm
from repro.errors import ReproError
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**overrides):
    defaults = dict(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=2_000.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(overrides)
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def movie(title_id="m1", size_mb=400.0, duration_s=3600.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=duration_s)


class TestNodeLoadTerm:
    def test_default_is_paper_equation(self, grnet_8am):
        plain = node_validation(grnet_8am, "U2")
        with_zero_load = node_validation(grnet_8am, "U2", node_load=lambda _uid: 0.0)
        assert plain == with_zero_load

    def test_load_adds_to_validation(self, grnet_8am):
        loaded = node_validation(grnet_8am, "U2", node_load=lambda _uid: 0.4)
        assert loaded == pytest.approx(node_validation(grnet_8am, "U2") + 0.4)

    def test_negative_load_rejected(self, grnet_8am):
        with pytest.raises(ReproError):
            node_validation(grnet_8am, "U2", node_load=lambda _uid: -0.1)

    def test_vra_avoids_loaded_servers(self, grnet):
        # Idle network: every path costs 0, so the unloaded tie from U5
        # breaks lexicographically to U1.  Loading U1 makes its adjacent
        # links expensive and flips the decision to U4.
        unloaded = VirtualRoutingAlgorithm(grnet)
        assert unloaded.decide("U5", "m", holders=["U1", "U4"]).chosen_uid == "U1"
        loads = {"U1": 0.9}
        vra = VirtualRoutingAlgorithm(
            grnet, node_load=lambda uid: loads.get(uid, 0.0)
        )
        decision = vra.decide("U5", "m", holders=["U1", "U4"])
        assert decision.chosen_uid == "U4"
        assert decision.candidate_paths["U1"].cost >= 0.9

    def test_service_wires_stream_occupancy(self):
        service = make_service(use_server_load_in_vra=True, max_streams=4)
        service.seed_title("U4", movie())
        service.seed_title("U1", movie())
        # Occupy 3 of U4's 4 slots: its node validation rises by 0.75.
        leases = [service.servers["U4"].begin_serving("m1") for _ in range(3)]
        decision = service.decide("U5", "m1")
        assert decision.chosen_uid == "U1"
        for lease in leases:
            service.servers["U4"].end_serving(lease)
        assert service.decide("U5", "m1").chosen_uid == "U4"

    def test_service_default_ignores_load(self):
        service = make_service(max_streams=4)
        service.seed_title("U4", movie())
        service.seed_title("U1", movie())
        leases = [service.servers["U4"].begin_serving("m1") for _ in range(3)]
        # Paper behaviour: stream occupancy is invisible to the weights
        # (the admission *poll* still works, but U4 has a slot free).
        assert service.decide("U5", "m1").chosen_uid == "U4"
        for lease in leases:
            service.servers["U4"].end_serving(lease)


class TestServerOverrides:
    def test_overridden_node_gets_different_hardware(self):
        service = make_service(
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=16,
            server_overrides={
                "U1": {"disk_count": 8, "disk_capacity_mb": 4_000.0, "max_streams": 64}
            },
        )
        assert service.servers["U1"].array.disk_count == 8
        assert service.servers["U1"].array.total_capacity_mb == 32_000.0
        assert service.servers["U1"].admission.max_streams == 64
        assert service.servers["U2"].array.disk_count == 2
        assert service.servers["U2"].admission.max_streams == 16

    def test_database_entry_reflects_overrides(self):
        service = make_service(
            server_overrides={"U4": {"disk_capacity_mb": 9_000.0}}
        )
        entry = service.database.server_entry("U4")
        assert entry.disk_capacity_mb == 9_000.0
        assert service.database.server_entry("U2").disk_capacity_mb == 2_000.0

    def test_override_for_absent_node_waits_for_expansion(self):
        # Overrides may pre-declare hardware for nodes that join later.
        service = make_service(server_overrides={"U9": {"disk_count": 4}})
        assert "U9" not in service.servers

    def test_unknown_knob_rejected(self):
        with pytest.raises(Exception) as excinfo:
            make_service(server_overrides={"U1": {"cpu_ghz": 3.0}})
        assert "cpu_ghz" in str(excinfo.value)

    def test_runtime_expansion_honours_overrides(self):
        from repro.network.link import Link
        from repro.network.node import Node

        service = make_service(
            server_overrides={"U7": {"disk_count": 6, "max_streams": 4}}
        )
        service.add_server(
            Node("U7"), [Link("U7", "U2", capacity_mbps=2.0, name="new")]
        )
        assert service.servers["U7"].array.disk_count == 6
        assert service.servers["U7"].admission.max_streams == 4


class TestStrictQosAdmission:
    def test_admits_when_path_sustains_bitrate(self):
        service = make_service(strict_qos_admission=True)
        service.seed_title("U4", movie())  # 0.89 Mbps playback
        request, _, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 2 * 3600.0)
        assert request.status is RequestStatus.COMPLETED

    def test_blocks_when_no_path_sustains_bitrate(self):
        service = make_service(strict_qos_admission=True)
        service.seed_title("U4", movie())
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        request, session, process = service.request_by_home("U2", "m1")
        assert request.status is RequestStatus.FAILED
        assert request.failure_reason.startswith("qos-blocked")
        assert session.record.clusters == []
        service.sim.run(until=service.sim.now + 10.0)
        assert process.finished

    def test_local_serve_always_admitted(self):
        service = make_service(strict_qos_admission=True)
        service.seed_title("U2", movie())
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        request, _, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 3600.0)
        assert request.status is RequestStatus.COMPLETED

    def test_any_sustaining_candidate_admits(self):
        service = make_service(strict_qos_admission=True)
        service.seed_title("U4", movie())
        service.seed_title("U6", movie())
        # Starve every route to U4 but leave Athens-Heraklio able to carry
        # the stream toward U2 via U1.
        for name in ("Patra-Ioannina", "Thessaloniki-Ioannina", "Thessaloniki-Athens", "Thessaloniki-Xanthi", "Xanthi-Heraklio"):
            link = service.topology.link_named(name)
            link.set_background_mbps(link.capacity_mbps)
        request, session, _ = service.request_by_home("U2", "m1")
        assert request.status is not RequestStatus.FAILED
        service.sim.run(until=service.sim.now + 3 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.servers_used == ["U6"]

    def test_blocked_request_rolls_back_dma_store(self):
        service = make_service(strict_qos_admission=True)
        service.seed_title("U4", movie())
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        service.request_by_home("U2", "m1")
        assert not service.servers["U2"].array.has_video("m1")
        assert service.servers["U2"].pending_title_ids() == []

    def test_default_degrades_instead_of_blocking(self):
        service = make_service()  # strict admission off
        service.seed_title("U4", movie("m1", size_mb=50.0, duration_s=600.0))
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        request, session, _ = service.request_by_home("U2", "m1")
        service.sim.run(until=service.sim.now + 5 * 24 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert session.record.qos_violation_count > 0
