"""Unit tests for the Virtual Routing Algorithm (paper Figure 5)."""

import pytest

from repro.core.vra import VirtualRoutingAlgorithm
from repro.errors import RoutingError, TitleUnavailableError


class TestLocalShortcut:
    def test_home_holder_serves_locally(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U2", "movie", holders=["U2", "U4"])
        assert decision.served_locally
        assert decision.chosen_uid == "U2"
        assert decision.path.nodes == ("U2",)
        assert decision.cost == 0.0
        assert decision.dijkstra_result is None

    def test_home_holder_that_polls_out_is_skipped(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide(
            "U2", "movie", holders=["U2", "U4"], poll=lambda uid: uid != "U2"
        )
        assert not decision.served_locally
        assert decision.chosen_uid == "U4"


class TestRemoteSelection:
    def test_picks_cheapest_candidate(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U2", "movie", holders=["U4", "U5"])
        # Experiment A corrected: U4 via U2,U3,U4 (~0.218) beats U5 (~0.316).
        assert decision.chosen_uid == "U4"
        assert decision.path.nodes == ("U2", "U3", "U4")
        assert decision.cost == pytest.approx(0.2178, abs=1e-3)

    def test_candidate_paths_cover_all_available(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U1", "movie", holders=["U3", "U4", "U5"])
        assert set(decision.candidate_paths) == {"U3", "U4", "U5"}
        assert all(path.source == "U1" for path in decision.candidate_paths.values())

    def test_download_route_reverses_path(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U2", "movie", holders=["U5"])
        assert decision.download_route().nodes == tuple(reversed(decision.path.nodes))

    def test_poll_excludes_candidates(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide(
            "U2", "movie", holders=["U4", "U5"], poll=lambda uid: uid != "U4"
        )
        assert decision.chosen_uid == "U5"
        assert decision.polled_out == ("U4",)

    def test_weights_recorded_in_decision(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        decision = vra.decide("U2", "movie", holders=["U4"])
        assert set(decision.weights) == {link.name for link in grnet_8am.links()}

    def test_cost_tie_broken_by_uid(self, grnet):
        # Idle network: all weights zero, every path costs 0.
        vra = VirtualRoutingAlgorithm(grnet)
        decision = vra.decide("U2", "movie", holders=["U5", "U4"])
        assert decision.chosen_uid == "U4"

    def test_decision_count_increments(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        vra.decide("U2", "m", holders=["U4"])
        vra.decide("U2", "m", holders=["U2"])
        assert vra.decision_count == 2


class TestErrors:
    def test_no_holders_raises_title_unavailable(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        with pytest.raises(TitleUnavailableError):
            vra.decide("U2", "ghost", holders=[])

    def test_all_candidates_poll_out(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        with pytest.raises(RoutingError):
            vra.decide("U2", "movie", holders=["U4", "U5"], poll=lambda _uid: False)

    def test_home_only_holder_polling_out(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am)
        with pytest.raises(RoutingError):
            vra.decide("U2", "movie", holders=["U2"], poll=lambda _uid: False)


class TestConfiguration:
    def test_custom_used_of_changes_decision(self, grnet):
        # Ground truth idle; a reporter claiming Patra-Ioannina is slammed
        # must push the decision onto the Athens route.
        def reported(link):
            return link.capacity_mbps * (0.95 if link.name == "Patra-Ioannina" else 0.01)

        vra = VirtualRoutingAlgorithm(grnet, used_of=reported)
        decision = vra.decide("U2", "movie", holders=["U4"])
        assert decision.path.nodes == ("U2", "U1", "U4")

    def test_normalization_constant_scales_lu(self, grnet_8am):
        table_k10 = VirtualRoutingAlgorithm(grnet_8am).weights()
        table_k5 = VirtualRoutingAlgorithm(
            grnet_8am, normalization_constant=5.0
        ).weights()
        for name in table_k10:
            assert table_k5[name] >= table_k10[name]

    def test_trace_mode_records_steps(self, grnet_8am):
        vra = VirtualRoutingAlgorithm(grnet_8am, trace=True)
        decision = vra.decide("U2", "movie", holders=["U4", "U5"])
        assert decision.dijkstra_result is not None
        assert len(decision.dijkstra_result.steps) == grnet_8am.node_count

    def test_no_trace_by_default(self, grnet_8am):
        decision = VirtualRoutingAlgorithm(grnet_8am).decide(
            "U2", "movie", holders=["U4"]
        )
        assert decision.dijkstra_result.steps == []
