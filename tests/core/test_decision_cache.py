"""Unit tests for the whole-decision memo and its service wiring.

Covers the :class:`~repro.network.routing.cache.DecisionCache` mechanics
directly (LRU, hit/miss accounting, epoch-transition invalidation), then
the :class:`~repro.core.service.VoDService` integration: the freshness
token that powers the same-state replay layer (pinned against
``routing_epoch()`` as promised in the service source), the availability
hooks that keep holder signatures honest, telemetry parity on replays,
and the new snapshot sections.
"""

import dataclasses

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.database.records import LinkStats
from repro.errors import ReproError, RoutingError
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.routing.cache import (
    EPOCH_FULL,
    EPOCH_INITIAL,
    EPOCH_PARTIAL,
    DecisionCache,
    EpochTransition,
)
from repro.network.routing.dijkstra import DijkstraResult, LinkDelta
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)


@dataclasses.dataclass(frozen=True)
class FakeDecision:
    """Minimal stand-in with the ``weights`` field the refresh rebases."""

    label: str
    weights: object = None


# --------------------------------------------------------------------- #
# DecisionCache mechanics
# --------------------------------------------------------------------- #
class TestDecisionCacheUnit:
    def test_negative_size_rejected(self):
        with pytest.raises(ReproError, match="decision cache size"):
            DecisionCache(max_decisions=-1)

    def test_size_zero_is_inert_passthrough(self):
        cache = DecisionCache(max_decisions=0)
        assert not cache.enabled
        cache.put("k", FakeDecision("d"), tree=None)
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_hit_miss_and_peek_accounting(self):
        cache = DecisionCache(max_decisions=4)
        assert cache.get("k") is None
        cache.put("k", FakeDecision("d"), tree=None, candidate_count=2)
        entry = cache.get("k")
        assert entry.decision.label == "d"
        assert entry.candidate_count == 2
        assert cache.peek("k") is entry  # no accounting
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        cache.count_hit()  # the service replay layer's parity path
        assert cache.stats.hits == 2

    def test_lru_evicts_least_recently_used(self):
        cache = DecisionCache(max_decisions=2)
        cache.put("a", FakeDecision("a"), tree=None)
        cache.put("b", FakeDecision("b"), tree=None)
        cache.get("a")  # refresh "a" so "b" is the LRU victim
        cache.put("c", FakeDecision("c"), tree=None)
        assert cache.peek("a") is not None
        assert cache.peek("b") is None
        assert cache.peek("c") is not None
        assert cache.stats.evictions == 1

    def test_initial_and_none_transitions_are_noops(self):
        cache = DecisionCache(max_decisions=4)
        cache.put("k", FakeDecision("d"), tree=None)
        cache.apply(None)
        cache.apply(EpochTransition(EPOCH_INITIAL))
        assert cache.peek("k") is not None
        assert cache.stats.invalidations == 0

    def test_full_transition_flushes_everything(self):
        cache = DecisionCache(max_decisions=4)
        cache.put("k1", FakeDecision("d1"), tree=None)
        cache.put("k2", FakeDecision("d2"), tree=None)
        cache.apply(EpochTransition(EPOCH_FULL))
        assert len(cache) == 0
        assert cache.stats.full_invalidations == 1
        assert cache.stats.decisions_flushed == 2

    def test_partial_transition_scopes_drops_to_touched_trees(self):
        # Tree rooted at A over link A-B; the delta hits that tree edge.
        touched_tree = DijkstraResult(
            source="A",
            distances={"A": 0.0, "B": 1.0},
            predecessors={"A": None, "B": "A"},
        )
        # Tree of a disjoint component: the delta's endpoints are
        # unreachable from it, so the proof keeps it bit-for-bit valid.
        spared_tree = DijkstraResult(
            source="C", distances={"C": 0.0}, predecessors={"C": None}
        )
        delta = LinkDelta(
            link=Link("A", "B", capacity_mbps=10.0),
            old_weight=1.0,
            new_weight=2.0,
            was_online=True,
            now_online=True,
        )
        table = {"A-B": 2.0}
        cache = DecisionCache(max_decisions=8)
        cache.put("dropped", FakeDecision("routed"), tree=touched_tree)
        cache.put("spared", FakeDecision("routed", weights={}), tree=spared_tree)
        cache.put("local", FakeDecision("local"), tree=None)
        cache.apply(
            EpochTransition(EPOCH_PARTIAL, weights=table, deltas=(delta,))
        )
        assert cache.peek("dropped") is None
        assert cache.peek("local") is not None  # no routing state involved
        spared = cache.peek("spared")
        assert spared is not None
        assert spared.decision.weights is table  # rebased onto the patch
        stats = cache.stats
        assert stats.partial_invalidations == 1
        assert stats.decisions_dropped == 1
        assert stats.decisions_refreshed == 1

    def test_empty_delta_batch_keeps_everything_untouched(self):
        cache = DecisionCache(max_decisions=4)
        decision = FakeDecision("d", weights={"L": 1.0})
        cache.put("k", decision, tree=None)
        cache.apply(EpochTransition(EPOCH_PARTIAL, weights={}, deltas=()))
        assert cache.peek("k").decision is decision
        assert cache.stats.partial_invalidations == 1
        assert cache.stats.decisions_refreshed == 0

    def test_clear_preserves_counters(self):
        cache = DecisionCache(max_decisions=4)
        cache.put("k", FakeDecision("d"), tree=None)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


# --------------------------------------------------------------------- #
# Service wiring
# --------------------------------------------------------------------- #
def build_service(**config_kwargs) -> VoDService:
    service = VoDService(
        Simulator(), build_grnet_topology(), ServiceConfig(**config_kwargs)
    )
    service.seed_title("U4", MOVIE)
    service.seed_title("U5", MOVIE)
    service.start()
    return service


def report_traffic(service: VoDService, label: str = "8am") -> None:
    apply_traffic_sample(service.topology, label)
    admin = service.database.limited_access()
    for link in service.topology.links():
        admin.update_link_stats(
            link.name,
            LinkStats(
                used_mbps=link.used_mbps,
                utilization=link.utilization,
                timestamp=service.sim.now,
            ),
        )


class TestServiceWiring:
    def test_decision_cache_rides_on_the_routing_cache(self):
        service = build_service(routing_cache_size=0, decision_cache_size=256)
        assert service.vra.decision_cache is None  # no epoch, no memo
        assert service.decide("U2", "movie").chosen_uid in {"U4", "U5"}

    def test_default_config_leaves_the_memo_off(self):
        service = build_service()
        assert service.vra.decision_cache is None
        assert service.admission_queue is None

    def test_replay_returns_the_cached_object_with_counter_parity(self):
        service = build_service(decision_cache_size=256)
        first = service.decide("U2", "movie")
        decisions_before = service.vra.decision_count
        second = service.decide("U2", "movie")
        assert second is first  # same-state replay, not a recompute
        assert service.vra.decision_count == decisions_before + 1
        stats = service.vra.decision_cache_stats
        assert stats.hits == 1 and stats.misses == 1

    @pytest.mark.parametrize("use_reported_stats", [True, False])
    def test_freshness_token_pins_routing_epoch(self, use_reported_stats):
        """The replay token must change whenever ``routing_epoch()``
        does — the parity promised in the service source."""
        service = build_service(
            decision_cache_size=256, use_reported_stats=use_reported_stats
        )

        def observe():
            return service._freshness(), service.routing_epoch()

        token, epoch = observe()
        for mutate in (
            lambda: report_traffic(service),
            lambda: setattr(
                service.topology.link_named("Thessaloniki-Athens"),
                "online",
                False,
            ),
            lambda: service.topology.link_named(
                "Patra-Athens"
            ).set_background_mbps(3.0),
        ):
            mutate()
            new_token, new_epoch = observe()
            if new_epoch != epoch:
                assert new_token != token
            token, epoch = new_token, new_epoch

    def test_availability_churn_invalidates_the_replay(self):
        service = build_service(decision_cache_size=256)
        first = service.decide("U2", "movie")
        chosen = service.servers[first.chosen_uid]
        # Fill the chosen holder's last stream slots: its poll answer
        # flips, so the same lookup must re-decide, not replay.
        leases = [
            chosen.admission.admit() for _ in range(chosen.admission.max_streams)
        ]
        second = service.decide("U2", "movie")
        assert second is not first
        assert second.chosen_uid != first.chosen_uid
        for lease in leases:
            chosen.end_serving(lease)
        third = service.decide("U2", "movie")
        assert third.chosen_uid == first.chosen_uid

    def test_dma_title_and_disk_and_crash_churn_move_the_token(self):
        service = build_service(decision_cache_size=256)
        token = service._freshness()
        service.database.add_title_to_server("U1", "movie")
        assert service._freshness() != token
        token = service._freshness()
        service.servers["U4"].array.fail_disk(0)
        assert service._freshness() != token
        token = service._freshness()
        service.servers["U5"].online = False
        assert service._freshness() != token

    def test_errors_are_never_cached(self):
        service = build_service(decision_cache_size=256)
        for link in service.topology.links():
            link.online = False
        for _ in range(2):
            with pytest.raises(RoutingError):
                service.decide("U2", "movie")
        stats = service.vra.decision_cache_stats
        assert stats.hits == 0
        assert stats.misses == 2
        assert len(service.vra.decision_cache) == 0

    def test_snapshot_reports_the_new_sections(self):
        plain = build_service()
        assert plain.snapshot()["decision_cache"] is None
        assert plain.snapshot()["admission_queue"] is None
        tuned = build_service(
            decision_cache_size=256,
            admission_queue_capacity=8,
            admission_rate_per_s=2.0,
        )
        tuned.decide("U2", "movie")
        snapshot = tuned.snapshot()
        assert snapshot["decision_cache"]["misses"] == 1
        assert snapshot["admission_queue"]["offered"] == 0

    def test_queue_delay_and_shed_surface_in_session_records(self):
        service = build_service(
            decision_cache_size=256,
            admission_queue_capacity=2,
            admission_rate_per_s=1.0 / 60.0,
            admission_tick_s=60.0,
        )
        requests = [
            service.request_by_home("U2", "movie", f"c{i}")[0] for i in range(5)
        ]
        service.sim.run(until=8 * 3600.0)
        records = {r.request.client_id: r for r in service.sessions}
        assert records["c0"].admission_wait_s == 0.0
        assert records["c1"].admission_wait_s == 60.0
        assert records["c2"].admission_wait_s == 120.0
        for shed in ("c3", "c4"):
            assert requests[int(shed[1])].failure_reason.startswith(
                "admission-shed"
            )
            assert records[shed].completed_at is None
        assert service.admission_queue.stats.shed == 2
        assert service.admission_queue.stats.released == 2
