"""Unit tests for the whole-title DMA placement policy (paper Figure 2)."""

import pytest

from repro.placement import PlacementAction, WholeTitleDma
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id: str, size_mb: float = 100.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=600.0)


@pytest.fixture
def array() -> DiskArray:
    # Two disks x 100 MB: room for two 100 MB titles.
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=25.0)


@pytest.fixture
def dma(array) -> WholeTitleDma:
    return WholeTitleDma(array)


class TestFigure2Branches:
    def test_cached_video_gets_a_point(self, dma):
        dma.on_request(video("v"))  # stored (fits)
        result = dma.on_request(video("v"))
        assert result.action is PlacementAction.HIT
        assert result.points == 1
        assert result.cached

    def test_fitting_video_stored_without_point(self, dma):
        # Figure 2 quirk 1: the immediate-store branch gives no point.
        result = dma.on_request(video("v"))
        assert result.action is PlacementAction.STORED
        assert result.points == 0
        assert dma.array.has_video("v")

    def test_non_fitting_video_gets_point_only(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("b"))  # array now full
        dma.on_request(video("a"))  # a: 1 point
        dma.on_request(video("b"))  # b: 1 point
        result = dma.on_request(video("c"))  # c: 1 point, not > 1
        assert result.action is PlacementAction.POINT_ONLY
        assert result.points == 1
        assert not result.cached
        assert dma.array.stored_title_ids() == ["a", "b"]

    def test_replacement_when_points_exceed_least_popular(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("b"))
        dma.on_request(video("b"))  # b: 1 point; a: 0 points
        result = dma.on_request(video("c"))  # c: 1 point > a's 0
        assert result.action is PlacementAction.REPLACED
        assert result.evicted == ("a",)
        assert dma.array.stored_title_ids() == ["b", "c"]

    def test_equal_points_do_not_evict(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("a"))  # a: 1 point
        dma.on_request(video("b"))  # stored, 0 points
        dma.on_request(video("b"))  # b: 1 point
        result = dma.on_request(video("c"))  # c: 1 point, not > 1
        assert result.action is PlacementAction.POINT_ONLY
        assert dma.array.stored_title_ids() == ["a", "b"]

    def test_popular_title_survives_replacement(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("a"))
        dma.on_request(video("a"))  # a: 2 points
        dma.on_request(video("b"))  # b stored, 0 points
        result = dma.on_request(video("c"))  # c: 1 > b: 0 -> b evicted
        assert result.action is PlacementAction.REPLACED
        assert result.evicted == ("b",)
        assert dma.array.has_video("a")  # the popular title is untouched

    def test_victim_is_least_popular(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("b"))
        dma.on_request(video("a"))  # a: 1, b: 0
        result = dma.on_request(video("c"))  # c: 1 > b: 0
        assert result.evicted == ("b",)

    def test_evicted_title_keeps_points_and_can_return(self, dma):
        dma.on_request(video("a"))
        dma.on_request(video("b"))
        dma.on_request(video("c"))  # c: 1, evicts a (0)
        assert dma.array.stored_title_ids() == ["b", "c"]
        dma.on_request(video("a"))  # a: 1, b has 0 -> a evicts b
        result = dma.on_request(video("a"))
        assert dma.array.has_video("a") or result.cached

    def test_single_eviction_even_if_still_unfit(self):
        # Figure 2 quirk 2: one victim only; newcomer may stay uncached
        # and the victim stays lost.
        array = DiskArray(disk_count=1, disk_capacity_mb=100.0, cluster_mb=25.0)
        dma = WholeTitleDma(array)
        dma.on_request(video("a", 50.0))
        dma.on_request(video("b", 50.0))
        big = video("big", 100.0)
        result = dma.on_request(big)  # big: 1 > a: 0 -> evict a; 50 free < 100
        assert result.action is PlacementAction.EVICTED_NOT_STORED
        assert result.evicted == ("a",)
        assert not array.has_video("big")
        assert array.stored_title_ids() == ["b"]

    def test_evict_until_fits_extension(self):
        array = DiskArray(disk_count=1, disk_capacity_mb=100.0, cluster_mb=25.0)
        dma = WholeTitleDma(array, evict_until_fits=True)
        dma.on_request(video("a", 50.0))
        dma.on_request(video("b", 50.0))
        result = dma.on_request(video("big", 100.0))  # 1 point beats both 0-point victims
        assert result.action is PlacementAction.REPLACED
        assert set(result.evicted) == {"a", "b"}
        assert array.stored_title_ids() == ["big"]

    def test_evict_until_fits_stops_at_popular_victim(self):
        array = DiskArray(disk_count=1, disk_capacity_mb=100.0, cluster_mb=25.0)
        dma = WholeTitleDma(array, evict_until_fits=True)
        dma.on_request(video("a", 50.0))
        dma.on_request(video("b", 50.0))
        for _ in range(5):
            dma.on_request(video("b"))  # b: 5 points
        result = dma.on_request(video("big", 100.0))  # 1 > a: 0 but not > b: 5
        assert result.action is PlacementAction.EVICTED_NOT_STORED
        assert result.evicted == ("a",)
        assert array.stored_title_ids() == ["b"]
        # A later request re-points big but still cannot beat b.
        second = dma.on_request(video("big", 100.0))
        assert second.action is PlacementAction.POINT_ONLY


class TestSeedAndCallbacks:
    def test_seed_stores_and_notifies(self, array):
        stored = []
        dma = WholeTitleDma(array, on_store=stored.append)
        dma.seed(video("v"))
        assert stored == ["v"]
        assert dma.points_of("v") == 0
        assert array.has_video("v")

    def test_store_and_evict_callbacks_fire(self, array):
        stored, evicted = [], []
        dma = WholeTitleDma(array, on_store=stored.append, on_evict=evicted.append)
        dma.on_request(video("a"))
        dma.on_request(video("b"))
        dma.on_request(video("c"))  # evicts a
        assert stored == ["a", "b", "c"]
        assert evicted == ["a"]

    def test_pass_count(self, dma):
        for _ in range(3):
            dma.on_request(video("v"))
        assert dma.pass_count == 3

    def test_cached_title_ids(self, dma):
        dma.on_request(video("b"))
        dma.on_request(video("a"))
        assert dma.cached_title_ids() == ["a", "b"]
