"""Service-level placement behaviour: trace families, fraction-aware
holder advertisement, and the prefix-local serving fast path."""

import warnings

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.placement import PlacementConfig
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.storage.video import VideoTitle


def build_service(grnet_8am, tracer=None, **config_kwargs) -> VoDService:
    config = ServiceConfig(
        cluster_mb=50.0, use_reported_stats=False, **config_kwargs
    )
    sim = Simulator(start_time=8 * 3600.0)
    return VoDService(sim, grnet_8am, config, tracer=tracer)


def title(title_id: str = "m", size_mb: float = 200.0) -> VideoTitle:
    return VideoTitle(title_id, size_mb=size_mb, duration_s=3600.0)


class TestTraceFamilies:
    def test_default_policy_emits_placement_pass_only(self, grnet_8am):
        tracer = Tracer()
        service = build_service(grnet_8am, tracer=tracer)
        service.seed_title("U4", title())
        service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        passes = tracer.events("placement.pass")
        assert passes
        assert "resident_fraction" in passes[0].data
        assert tracer.events("dma.pass") == []

    def test_legacy_shim_also_emits_dma_pass_alias(self, grnet_8am):
        from repro.experiments.harness import _legacy_dma_factory

        tracer = Tracer()
        service = build_service(grnet_8am, tracer=tracer)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for server in service.servers.values():
                server.set_cache_policy(_legacy_dma_factory)
        service.seed_title("U4", title())
        service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        new_family = tracer.events("placement.pass")
        old_family = tracer.events("dma.pass")
        assert len(new_family) == len(old_family) == 1
        # Identical payload, minus the fraction field the old family
        # never had.
        legacy_data = dict(new_family[0].data)
        legacy_data.pop("resident_fraction")
        assert old_family[0].data == legacy_data


class TestFractionAwareAdvertisement:
    def test_prefix_holder_advertised_with_fraction(self, grnet_8am):
        service = build_service(
            grnet_8am,
            placement=PlacementConfig(
                kind="prefix", prefix_minutes=15.0, hot_points=1
            ),
        )
        service.seed_title("U4", title())
        service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        # 15 of 60 minutes -> a quarter of the title at the home server.
        assert service.database.holder_fraction("m", "U2") == pytest.approx(0.25)
        assert service.database.holder_fraction("m", "U4") == 1.0

    def test_vra_prefers_full_holders_over_prefix_holders(self, grnet_8am):
        service = build_service(
            grnet_8am,
            placement=PlacementConfig(
                kind="prefix", prefix_minutes=15.0, hot_points=1
            ),
        )
        service.seed_title("U4", title())
        service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        # U2 now holds a prefix; the full-holder list must exclude it.
        holders = service.database.servers_with_title("m", min_fraction=1.0)
        assert holders == ["U4"]
        # A neighbouring request must therefore stream its remote clusters
        # from U4, never from the prefix holder U2.  (U1 cuts its own
        # prefix on the pass, so its first cluster is local to U1.)
        _, session, _ = service.request_by_home("U1", "m")
        service.sim.run(until=service.sim.now + 3600.0)
        sources = {c.server_uid for c in session.record.clusters}
        assert "U2" not in sources
        assert "U4" in sources


class TestPrefixLocalServing:
    def test_prefix_clusters_served_locally_suffix_remote(self, grnet_8am):
        service = build_service(
            grnet_8am,
            placement=PlacementConfig(
                kind="prefix", prefix_minutes=15.0, hot_points=1
            ),
        )
        service.seed_title("U4", title())
        _, session, _ = service.request_by_home("U2", "m")
        service.sim.run(until=service.sim.now + 4 * 3600.0)
        record = session.record
        assert record.completed_at is not None
        # 4 clusters of 50 MB; the first (the 0.25 prefix) is local.
        assert record.clusters[0].server_uid == "U2"
        assert record.clusters[0].path_nodes == ("U2",)
        assert {c.server_uid for c in record.clusters[1:]} == {"U4"}

    def test_default_dma_path_has_no_cluster_decider(self, grnet_8am):
        service = build_service(grnet_8am)
        service.seed_title("U4", title())
        _, session, _ = service.request_by_home("U2", "m")
        assert session._decide_for_cluster is None
        service.sim.run(until=service.sim.now + 3600.0)
        assert session.record.completed_at is not None
