"""Unit tests for the strip-level distributed caching extension."""

import pytest

from repro.errors import CacheError, ReproError, TitleUnavailableError
from repro.extensions.strip_caching import (
    StripCachingEvaluator,
    StripStore,
    strip_key,
)
from repro.network.grnet import build_grnet_topology
from repro.storage.video import VideoTitle

NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def make_catalog(count=4, size_mb=100.0):
    return [VideoTitle(f"t{i}", size_mb=size_mb, duration_s=600.0) for i in range(count)]


def make_evaluator(granularity="strip", cache_mb=150.0, cluster_mb=25.0, count=4):
    catalog = make_catalog(count)
    origins = {v.title_id: NODES[i % len(NODES)] for i, v in enumerate(catalog)}
    return StripCachingEvaluator(
        build_grnet_topology(),
        catalog,
        origins,
        cluster_mb=cluster_mb,
        cache_capacity_mb=cache_mb,
        granularity=granularity,
    )


class TestStripKey:
    def test_format_and_ordering(self):
        assert strip_key("movie", 3) == "movie#00003"
        assert strip_key("movie", 2) < strip_key("movie", 10)


class TestStripStore:
    def test_store_until_full_then_replacement(self):
        store = StripStore(capacity_mb=50.0)
        assert store.on_request("a#0", 25.0)
        assert store.on_request("a#1", 25.0)
        assert store.free_mb == pytest.approx(0.0)
        # b's first point (1) immediately out-scores the 0-point earliest
        # resident a#0, which is evicted to make room.
        assert store.on_request("b#0", 25.0)
        assert store.has("b#0")
        assert not store.has("a#0")
        assert store.has("a#1")

    def test_pointed_residents_resist_replacement(self):
        store = StripStore(capacity_mb=50.0)
        store.on_request("a#0", 25.0)
        store.on_request("a#1", 25.0)
        store.on_request("a#0", 25.0)  # a#0: 1 point
        store.on_request("a#1", 25.0)  # a#1: 1 point
        assert not store.on_request("b#0", 25.0)  # 1 point, not > 1
        assert store.has("a#0") and store.has("a#1")

    def test_hit_gives_point(self):
        store = StripStore(50.0)
        store.on_request("a#0", 25.0)
        store.on_request("a#0", 25.0)
        assert store.tracker.points_of("a#0") == 1

    def test_pinned_strips_never_evicted_nor_counted(self):
        store = StripStore(25.0)
        store.pin("origin#0", 100.0)
        assert store.used_mb == 0.0  # pinned copies live outside the budget
        store.on_request("a#0", 25.0)
        for _ in range(5):
            store.on_request("b#0", 25.0)
        assert store.has("origin#0")

    def test_eviction_drains_tail_first(self):
        # All strips of "a" tie on points; first-seen order means the
        # earliest strip is evicted first... which for equal points is
        # a#0.  The *surviving* strips of a cooling title are therefore
        # its most recently admitted ones; with on-path request order the
        # title refills front-first, so steady state holds prefixes.
        store = StripStore(75.0)
        for i in range(3):
            store.on_request(f"a#{i}", 25.0)
        for _ in range(2):
            for i in range(3):
                store.on_request(f"b#{i}", 25.0)
        assert sum(store.has(f"b#{i}") for i in range(3)) == 3

    def test_single_eviction_mode(self):
        store = StripStore(50.0, evict_until_fits=False)
        store.on_request("a#0", 25.0)
        store.on_request("a#1", 25.0)
        # First try: evicts one 25 MB victim, still unfit, gives up
        # (Figure 2 semantics).
        assert not store.on_request("big#0", 50.0)
        assert store.used_mb == pytest.approx(25.0)
        # Second try out-scores the survivor too and succeeds.
        assert store.on_request("big#0", 50.0)
        assert store.has("big#0")

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            StripStore(-1.0)


class TestEvaluator:
    def test_invalid_granularity_rejected(self):
        with pytest.raises(ReproError):
            make_evaluator(granularity="bytes")

    def test_unknown_title_rejected(self):
        evaluator = make_evaluator()
        with pytest.raises(TitleUnavailableError):
            evaluator.request("U2", "ghost")

    def test_origin_for_unknown_title_rejected(self):
        catalog = make_catalog(2)
        origins = {"t0": "U1", "ghost": "U2"}
        with pytest.raises(TitleUnavailableError):
            StripCachingEvaluator(
                build_grnet_topology(), catalog, origins, 25.0, 100.0
            )

    def test_first_request_fetches_everything_remotely(self):
        evaluator = make_evaluator()
        # t1's origin is U2; ask from U1 (1 hop away).
        cost = evaluator.request("U1", "t1")
        assert cost == pytest.approx(100.0 * 1)
        assert evaluator.report.local_mb == 0.0

    def test_second_request_is_fully_local(self):
        evaluator = make_evaluator()
        evaluator.request("U1", "t1")
        cost = evaluator.request("U1", "t1")
        assert cost == 0.0
        assert evaluator.report.local_mb == pytest.approx(100.0)
        assert evaluator.report.byte_hit_ratio == pytest.approx(0.5)

    def test_request_at_origin_is_local(self):
        evaluator = make_evaluator()
        cost = evaluator.request("U1", "t0")  # t0's origin is U1
        assert cost == 0.0
        assert evaluator.report.byte_hit_ratio == pytest.approx(1.0)

    def test_cached_copies_become_closer_sources(self):
        evaluator = make_evaluator(cache_mb=400.0)
        # t3's origin is U4.  U2 fetches it (2 hops via U3 or U1)...
        first_cost = evaluator.request("U2", "t3")
        assert first_cost == pytest.approx(100.0 * 2)
        # ...then U3 finds the whole title 1 hop away at U2 or U4.
        next_cost = evaluator.request("U3", "t3")
        assert next_cost == pytest.approx(100.0 * 1)

    def test_partial_caching_emerges_under_pressure(self):
        # Budget for 6 strips; two 4-strip titles compete at one node.
        evaluator = make_evaluator(cache_mb=150.0)
        evaluator.request("U6", "t1")
        evaluator.request("U6", "t2")
        held_t1 = evaluator.resident_strip_count("U6", "t1")
        held_t2 = evaluator.resident_strip_count("U6", "t2")
        assert held_t1 + held_t2 == 6  # budget full, no stranded space
        assert 0 < held_t1 < 4 or 0 < held_t2 < 4  # someone holds a partial

    def test_replay_returns_report(self):
        evaluator = make_evaluator()
        report = evaluator.replay([("U1", "t1"), ("U1", "t1"), ("U5", "t0")])
        assert report.request_count == 3
        assert report.total_mb == pytest.approx(300.0)


class TestGranularityComparison:
    def test_title_mode_is_all_or_nothing(self):
        evaluator = make_evaluator(granularity="title", cache_mb=150.0)
        evaluator.request("U6", "t1")
        evaluator.request("U6", "t2")
        for title in ("t1", "t2"):
            held = evaluator.resident_strip_count("U6", title)
            assert held in (0, 4), (title, held)

    def test_strip_mode_beats_title_mode_at_awkward_budgets(self):
        """The fractional-knapsack win: at a budget that strands capacity
        under whole-title caching, strip caching achieves a strictly
        higher byte hit ratio on the same workload."""
        events = []
        for _ in range(6):
            events.extend([("U6", "t1"), ("U6", "t2"), ("U6", "t3")])
        reports = {}
        for granularity in ("strip", "title"):
            evaluator = make_evaluator(granularity=granularity, cache_mb=150.0)
            reports[granularity] = evaluator.replay(list(events))
        assert (
            reports["strip"].byte_hit_ratio > reports["title"].byte_hit_ratio
        )
        assert (
            reports["strip"].megabyte_hops < reports["title"].megabyte_hops
        )

    def test_generous_budget_converges_both_modes(self):
        events = [("U6", "t1")] * 4
        hits = {}
        for granularity in ("strip", "title"):
            evaluator = make_evaluator(granularity=granularity, cache_mb=1_000.0)
            hits[granularity] = evaluator.replay(list(events)).byte_hit_ratio
        assert hits["strip"] == pytest.approx(hits["title"])
