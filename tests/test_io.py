"""Unit tests for JSON (de)serialisation of topologies and catalogs."""

import json

import pytest

from repro.io import (
    SerializationError,
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    load_topology,
    save_catalog,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.storage.video import VideoTitle


class TestTopologyRoundtrip:
    def test_grnet_roundtrips(self):
        original = build_grnet_topology()
        apply_traffic_sample(original, "4pm")
        original.link_named("Patra-Athens").online = False
        restored = topology_from_dict(topology_to_dict(original))
        assert restored.name == original.name
        assert restored.node_uids() == original.node_uids()
        assert restored.link_count == original.link_count
        for link in original.links():
            twin = restored.link_named(link.name)
            assert twin.capacity_mbps == link.capacity_mbps
            assert twin.background_mbps == pytest.approx(link.background_mbps)
            assert twin.online == link.online
        for node in original.nodes():
            assert restored.node(node.uid).name == node.name

    def test_file_roundtrip(self, tmp_path):
        original = build_grnet_topology()
        path = tmp_path / "net.json"
        save_topology(original, path)
        restored = load_topology(path)
        assert restored.node_uids() == original.node_uids()
        # The file is valid, stable JSON.
        document = json.loads(path.read_text())
        assert document["name"] == "GRNET"
        assert len(document["links"]) == 7

    def test_restored_topology_validates_and_routes(self):
        from repro.core.vra import VirtualRoutingAlgorithm

        original = build_grnet_topology()
        apply_traffic_sample(original, "8am")
        restored = topology_from_dict(topology_to_dict(original))
        restored.validate()
        decision = VirtualRoutingAlgorithm(restored).decide(
            "U2", "m", holders=["U4", "U5"]
        )
        assert decision.chosen_uid == "U4"  # corrected Experiment A


class TestTopologyErrors:
    def test_missing_keys_rejected(self):
        with pytest.raises(SerializationError):
            topology_from_dict({"nodes": []})
        with pytest.raises(SerializationError):
            topology_from_dict({"nodes": [{"name": "no-uid"}], "links": []})

    def test_malformed_capacity_rejected(self):
        document = {
            "nodes": [{"uid": "A"}, {"uid": "B"}],
            "links": [{"a": "A", "b": "B", "capacity_mbps": "plenty"}],
        }
        with pytest.raises(SerializationError):
            topology_from_dict(document)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_topology(tmp_path / "nope.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_topology(path)


class TestCatalogRoundtrip:
    def test_roundtrip_preserves_titles(self):
        titles = [
            VideoTitle("m1", size_mb=700.0, duration_s=5400.0, name="First"),
            VideoTitle("m2", size_mb=900.0, duration_s=6000.0, bitrate_mbps=2.0),
        ]
        restored = catalog_from_dict(catalog_to_dict(titles))
        assert restored == titles

    def test_file_roundtrip(self, tmp_path):
        titles = [VideoTitle("m1", size_mb=700.0, duration_s=5400.0)]
        path = tmp_path / "catalog.json"
        save_catalog(titles, path)
        assert load_catalog(path) == titles

    def test_malformed_catalog_rejected(self):
        with pytest.raises(SerializationError):
            catalog_from_dict({"titles": [{"title_id": "x"}]})
        with pytest.raises(SerializationError):
            catalog_from_dict({})
