"""Unit tests for the cache-policy baselines."""

import pytest

from repro.baselines.caching import (
    FullReplicationPolicy,
    LruCachePolicy,
    NoCachePolicy,
)
from repro.placement import PlacementAction
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


def video(title_id, size_mb=100.0):
    return VideoTitle(title_id, size_mb=size_mb, duration_s=600.0)


@pytest.fixture
def array():
    return DiskArray(disk_count=2, disk_capacity_mb=100.0, cluster_mb=25.0)


class TestNoCache:
    def test_never_stores_on_request(self, array):
        policy = NoCachePolicy(array)
        result = policy.on_request(video("v"))
        assert result.action is PlacementAction.POINT_ONLY
        assert not array.has_video("v")

    def test_seeded_titles_hit(self, array):
        policy = NoCachePolicy(array)
        policy.seed(video("v"))
        result = policy.on_request(video("v"))
        assert result.action is PlacementAction.HIT

    def test_points_still_counted(self, array):
        policy = NoCachePolicy(array)
        policy.on_request(video("v"))
        policy.on_request(video("v"))
        assert policy.points_of("v") == 2


class TestLru:
    def test_admits_everything_that_fits(self, array):
        policy = LruCachePolicy(array)
        assert policy.on_request(video("a")).action is PlacementAction.STORED
        assert policy.on_request(video("b")).action is PlacementAction.STORED
        assert array.stored_title_ids() == ["a", "b"]

    def test_evicts_least_recently_used(self, array):
        policy = LruCachePolicy(array)
        policy.on_request(video("a"))
        policy.on_request(video("b"))
        policy.on_request(video("a"))  # refresh a
        result = policy.on_request(video("c"))
        assert result.action is PlacementAction.REPLACED
        assert result.evicted == ("b",)
        assert array.stored_title_ids() == ["a", "c"]

    def test_hit_refreshes_recency(self, array):
        policy = LruCachePolicy(array)
        policy.on_request(video("a"))
        policy.on_request(video("b"))
        policy.on_request(video("a"))
        policy.on_request(video("c"))  # evicts b
        policy.on_request(video("d"))  # evicts a (b already gone)
        assert array.stored_title_ids() == ["c", "d"]

    def test_evicts_multiple_victims_for_big_title(self, array):
        policy = LruCachePolicy(array)
        policy.on_request(video("a", 100.0))
        policy.on_request(video("b", 100.0))
        result = policy.on_request(video("big", 150.0))
        assert result.action is PlacementAction.REPLACED
        assert set(result.evicted) == {"a", "b"}
        assert array.stored_title_ids() == ["big"]

    def test_title_bigger_than_array_not_stored(self, array):
        policy = LruCachePolicy(array)
        policy.on_request(video("a"))
        result = policy.on_request(video("huge", 500.0))
        assert not result.cached
        assert result.action in (PlacementAction.POINT_ONLY, PlacementAction.EVICTED_NOT_STORED)

    def test_seed_participates_in_recency(self, array):
        policy = LruCachePolicy(array)
        policy.seed(video("seeded"))
        policy.on_request(video("b"))
        policy.on_request(video("c"))  # seeded is LRU -> evicted
        assert "seeded" not in array.stored_title_ids()


class TestFullReplication:
    def test_stores_while_space_lasts(self, array):
        policy = FullReplicationPolicy(array)
        assert policy.on_request(video("a")).action is PlacementAction.STORED
        assert policy.on_request(video("b")).action is PlacementAction.STORED
        assert policy.on_request(video("c")).action is PlacementAction.POINT_ONLY
        assert array.stored_title_ids() == ["a", "b"]

    def test_never_evicts(self, array):
        policy = FullReplicationPolicy(array)
        policy.on_request(video("a"))
        policy.on_request(video("b"))
        for _ in range(10):
            policy.on_request(video("c"))
        assert array.stored_title_ids() == ["a", "b"]

    def test_hits_on_stored(self, array):
        policy = FullReplicationPolicy(array)
        policy.on_request(video("a"))
        assert policy.on_request(video("a")).action is PlacementAction.HIT


class TestCallbacks:
    def test_store_and_evict_hooks_fire(self, array):
        stored, evicted = [], []
        policy = LruCachePolicy(array, on_store=stored.append, on_evict=evicted.append)
        policy.on_request(video("a"))
        policy.on_request(video("b"))
        policy.on_request(video("c"))
        assert stored == ["a", "b", "c"]
        assert evicted == ["a"]
