"""Behavioural contrast: StaticNearestSelection's frozen tables vs the
adaptive policies when the network changes after deployment."""

import pytest

from repro.baselines.selection import MinHopSelection, StaticNearestSelection
from repro.errors import RoutingError
from repro.network.link import Link
from repro.network.node import Node


class TestFrozenTables:
    def test_static_tables_ignore_links_added_later(self, grnet_8am):
        static = StaticNearestSelection(grnet_8am)
        minhop = MinHopSelection(grnet_8am)
        # A new shortcut U2-U5 appears after installation.
        grnet_8am.add_node(Node("X0"))  # unrelated node keeps graph valid
        grnet_8am.add_link(Link("X0", "U2", capacity_mbps=2.0, name="X0-U2"))
        grnet_8am.add_link(Link("U2", "U5", capacity_mbps=10.0, name="shortcut"))
        # Min-hop (recomputed per decision) uses the 1-hop shortcut...
        assert minhop.decide("U2", "m", holders=["U5"]).path.hop_count == 1
        # ...the static tables still route the long way.
        assert static.decide("U2", "m", holders=["U5"]).path.hop_count == 3

    def test_static_tables_survive_for_unchanged_routes(self, grnet_8am):
        static = StaticNearestSelection(grnet_8am)
        decision = static.decide("U2", "m", holders=["U1"])
        assert decision.path.nodes == ("U2", "U1")

    def test_static_tables_ignore_link_failures(self, grnet_8am):
        # The dangerous half of frozen routing: it happily routes into a
        # dead link (the decision is made; the transfer would fail).
        static = StaticNearestSelection(grnet_8am)
        before = static.decide("U2", "m", holders=["U3"]).path.nodes
        grnet_8am.link_named("Patra-Ioannina").online = False
        after = static.decide("U2", "m", holders=["U3"]).path.nodes
        assert after == before  # blind to the failure
        # The adaptive min-hop reroutes around it.
        adaptive = MinHopSelection(grnet_8am).decide("U2", "m", holders=["U3"])
        assert adaptive.path.nodes == ("U2", "U1", "U4", "U3")
