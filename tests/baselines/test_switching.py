"""Unit tests for the switching-cadence baselines."""

import pytest

from repro.baselines.switching import NeverSwitch, PeriodicRecompute
from repro.core.vra import VraDecision
from repro.errors import ReproError
from repro.network.routing.paths import Path


def decision(server):
    return VraDecision(
        title_id="t",
        home_uid="A",
        chosen_uid=server,
        served_locally=False,
        path=Path(nodes=("A", server), cost=1.0),
    )


def rotating_decider(servers):
    state = {"i": 0}

    def decide():
        value = decision(servers[state["i"] % len(servers)])
        state["i"] += 1
        return value

    return decide


class TestNeverSwitch:
    def test_freezes_first_decision(self):
        wrapper = NeverSwitch(rotating_decider(["B", "C", "D"]))
        results = [wrapper().chosen_uid for _ in range(5)]
        assert results == ["B"] * 5
        assert wrapper.underlying_calls == 1

    def test_independent_instances_refreeze(self):
        decide = rotating_decider(["B", "C"])
        first = NeverSwitch(decide)
        second = NeverSwitch(decide)
        assert first().chosen_uid == "B"
        assert second().chosen_uid == "C"


class TestPeriodicRecompute:
    def test_period_one_recomputes_always(self):
        wrapper = PeriodicRecompute(rotating_decider(["B", "C", "D"]), period=1)
        assert [wrapper().chosen_uid for _ in range(3)] == ["B", "C", "D"]
        assert wrapper.underlying_calls == 3

    def test_period_three_holds_decision(self):
        wrapper = PeriodicRecompute(rotating_decider(["B", "C", "D"]), period=3)
        results = [wrapper().chosen_uid for _ in range(7)]
        assert results == ["B", "B", "B", "C", "C", "C", "D"]
        assert wrapper.underlying_calls == 3

    def test_invalid_period_rejected(self):
        with pytest.raises(ReproError):
            PeriodicRecompute(lambda: decision("B"), period=0)
