"""Unit tests for the server-selection baselines."""

import random

import pytest

from repro.baselines.selection import (
    HomeOnlySelection,
    MinHopSelection,
    RandomSelection,
    StaticNearestSelection,
)
from repro.errors import RoutingError, TitleUnavailableError


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda t: RandomSelection(t, rng=random.Random(0)),
            MinHopSelection,
            StaticNearestSelection,
            lambda t: HomeOnlySelection(t, origin_uid="U1"),
        ],
    )
    def test_home_shortcut_preserved(self, grnet_8am, factory):
        policy = factory(grnet_8am)
        decision = policy.decide("U2", "m", holders=["U2", "U4"])
        assert decision.served_locally
        assert decision.chosen_uid == "U2"

    @pytest.mark.parametrize(
        "factory",
        [
            lambda t: RandomSelection(t, rng=random.Random(0)),
            MinHopSelection,
            StaticNearestSelection,
        ],
    )
    def test_no_holders_raises(self, grnet_8am, factory):
        with pytest.raises(TitleUnavailableError):
            factory(grnet_8am).decide("U2", "m", holders=[])

    def test_poll_filters_candidates(self, grnet_8am):
        policy = MinHopSelection(grnet_8am)
        decision = policy.decide(
            "U2", "m", holders=["U1", "U4"], poll=lambda uid: uid != "U1"
        )
        assert decision.chosen_uid == "U4"

    def test_all_poll_out_raises(self, grnet_8am):
        policy = MinHopSelection(grnet_8am)
        with pytest.raises(RoutingError):
            policy.decide("U2", "m", holders=["U4"], poll=lambda _uid: False)


class TestMinHop:
    def test_picks_fewest_hops_ignoring_load(self, grnet_8am):
        # From U2: U1 is one hop, U4 is two hops -- the congested
        # Patra-Athens link (91% at 10am) is ignored by design.
        policy = MinHopSelection(grnet_8am)
        decision = policy.decide("U2", "m", holders=["U1", "U4"])
        assert decision.chosen_uid == "U1"
        assert decision.path.hop_count == 1

    def test_hop_tie_broken_by_uid(self, grnet_8am):
        policy = MinHopSelection(grnet_8am)
        decision = policy.decide("U2", "m", holders=["U3", "U1"])
        assert decision.chosen_uid == "U1"  # both 1 hop; "U1" < "U3"

    def test_differs_from_vra_under_congestion(self, grnet):
        from repro.core.vra import VirtualRoutingAlgorithm
        from repro.network.grnet import apply_traffic_sample

        apply_traffic_sample(grnet, "10am")
        vra_choice = VirtualRoutingAlgorithm(grnet).decide(
            "U2", "m", holders=["U1", "U4"]
        )
        minhop_choice = MinHopSelection(grnet).decide("U2", "m", holders=["U1", "U4"])
        assert minhop_choice.chosen_uid == "U1"
        # The VRA sees Patra-Athens at 91% and picks U1 too only if it is
        # still cheapest; what must differ is the *cost awareness*:
        assert vra_choice.candidate_paths["U1"].cost > 0.0


class TestRandom:
    def test_choice_is_seed_deterministic(self, grnet_8am):
        a = RandomSelection(grnet_8am, rng=random.Random(7))
        b = RandomSelection(grnet_8am, rng=random.Random(7))
        for _ in range(10):
            assert (
                a.decide("U2", "m", holders=["U4", "U5", "U6"]).chosen_uid
                == b.decide("U2", "m", holders=["U4", "U5", "U6"]).chosen_uid
            )

    def test_spreads_over_candidates(self, grnet_8am):
        policy = RandomSelection(grnet_8am, rng=random.Random(1))
        chosen = {
            policy.decide("U2", "m", holders=["U4", "U5", "U6"]).chosen_uid
            for _ in range(50)
        }
        assert chosen == {"U4", "U5", "U6"}


class TestStaticNearest:
    def test_matches_minhop_on_static_network(self, grnet_8am):
        static = StaticNearestSelection(grnet_8am)
        minhop = MinHopSelection(grnet_8am)
        for home in ("U1", "U2", "U6"):
            assert (
                static.decide(home, "m", holders=["U3", "U4"]).chosen_uid
                == minhop.decide(home, "m", holders=["U3", "U4"]).chosen_uid
            )


class TestHomeOnly:
    def test_always_fetches_from_origin(self, grnet_8am):
        policy = HomeOnlySelection(grnet_8am, origin_uid="U1")
        decision = policy.decide("U5", "m", holders=["U1", "U4"])
        assert decision.chosen_uid == "U1"

    def test_origin_without_title_raises(self, grnet_8am):
        policy = HomeOnlySelection(grnet_8am, origin_uid="U1")
        with pytest.raises(RoutingError):
            policy.decide("U5", "m", holders=["U4"])

    def test_unknown_origin_rejected(self, grnet_8am):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            HomeOnlySelection(grnet_8am, origin_uid="U9")
