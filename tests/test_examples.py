"""Smoke tests: every shipped example must run cleanly end to end.

These guard the examples against API drift; each runs as a subprocess the
way a user would run it, and key lines of its narrative are asserted.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["request status ......... completed", "second viewing"],
    "grnet_case_study.py": ["Table 2", "Table 3", "Experiment A", "Summary of decisions"],
    "dynamic_switching.py": ["per-cluster VRA (the paper)", "<-- switched"],
    "popularity_caching.py": ["dma", "nocache", "Patra (U2) after the day"],
    "custom_topology.py": ["metro-ring", "flash crowd"],
    "future_work.py": ["Strip-level distributed caching", "blocked at admission"],
    "failure_recovery.py": ["Server failover", "A new city joins"],
    "observability.py": [
        "Telemetry summary",
        "link utilization over the day",
        "hottest cache entries (DMA points)",
        "sessions traced",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_narrates(name):
    stdout = run_example(name)
    for snippet in EXPECTED_SNIPPETS[name]:
        assert snippet in stdout, f"{name} output missing {snippet!r}"


def test_every_shipped_example_is_covered():
    shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTED_SNIPPETS)
