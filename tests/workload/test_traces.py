"""Unit tests for background-traffic shapers."""

import random

import pytest

from repro.errors import WorkloadError
from repro.network.grnet import build_grnet_topology, traffic_at
from repro.sim.engine import Simulator
from repro.workload.traces import DiurnalTrafficShaper, Table2Replayer


class TestTable2Replayer:
    def test_start_applies_current_instant(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        Table2Replayer(sim, topology).start()
        assert topology.link_named("Patra-Athens").background_mbps == pytest.approx(0.2)

    def test_traffic_morphs_over_time(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        Table2Replayer(sim, topology, update_period_s=60.0).start()
        sim.run(until=10 * 3600.0)
        assert topology.link_named("Patra-Athens").background_mbps == pytest.approx(
            traffic_at("10am")["Patra-Athens"], abs=0.05
        )

    def test_stop_freezes_levels(self):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        replayer = Table2Replayer(sim, topology, update_period_s=60.0)
        replayer.start()
        sim.run(until=9 * 3600.0)
        frozen = topology.link_named("Patra-Athens").background_mbps
        replayer.stop()
        sim.run(until=16 * 3600.0)
        assert topology.link_named("Patra-Athens").background_mbps == frozen


class TestDiurnalTrafficShaper:
    def test_utilization_bounds(self, triangle):
        sim = Simulator()
        shaper = DiurnalTrafficShaper(
            sim, triangle, base_fraction=0.1, peak_fraction=0.8
        )
        for hour in range(0, 25, 3):
            u = shaper.utilization_at(hour * 3600.0)
            assert 0.1 - 1e-9 <= u <= 0.8 + 1e-9

    def test_minimum_at_phase(self, triangle):
        sim = Simulator()
        shaper = DiurnalTrafficShaper(
            sim, triangle, base_fraction=0.1, peak_fraction=0.8, phase_s=4 * 3600.0
        )
        assert shaper.utilization_at(4 * 3600.0) == pytest.approx(0.1)
        assert shaper.utilization_at(16 * 3600.0) == pytest.approx(0.8)

    def test_start_scales_links_by_capacity(self, triangle):
        sim = Simulator(start_time=16 * 3600.0)
        shaper = DiurnalTrafficShaper(
            sim, triangle, base_fraction=0.0, peak_fraction=0.5, phase_s=4 * 3600.0
        )
        shaper.start()
        big = triangle.link_between("A", "B")  # 10 Mb
        small = triangle.link_between("A", "C")  # 2 Mb
        assert big.background_mbps == pytest.approx(5.0)
        assert small.background_mbps == pytest.approx(1.0)

    def test_jitter_applied(self, triangle):
        sim = Simulator(start_time=16 * 3600.0)
        rng = random.Random(3)
        shaper = DiurnalTrafficShaper(
            sim,
            triangle,
            base_fraction=0.5,
            peak_fraction=0.5,
            jitter=lambda: rng.uniform(0.5, 1.5),
        )
        shaper.start()
        levels = {l.name: l.background_mbps / l.capacity_mbps for l in triangle.links()}
        assert len(set(round(v, 6) for v in levels.values())) > 1

    def test_invalid_fractions_rejected(self, triangle):
        sim = Simulator()
        with pytest.raises(WorkloadError):
            DiurnalTrafficShaper(sim, triangle, base_fraction=0.9, peak_fraction=0.5)
        with pytest.raises(WorkloadError):
            DiurnalTrafficShaper(sim, triangle, base_fraction=-0.1)
        with pytest.raises(WorkloadError):
            DiurnalTrafficShaper(sim, triangle, day_s=0.0)
