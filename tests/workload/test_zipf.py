"""Unit tests for the Zipf popularity model."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_weights_normalised(self):
        assert sum(zipf_weights(100, 0.9)) == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = zipf_weights(50, 1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_classic_ratio_at_s1(self):
        weights = zipf_weights(10, 1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)
        assert weights[0] / weights[4] == pytest.approx(5.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_weights(10, -0.5)


class TestZipfSampler:
    def test_samples_come_from_catalog(self):
        items = [f"t{i}" for i in range(20)]
        sampler = ZipfSampler(items, rng=random.Random(1))
        assert set(sampler.sample_many(200)) <= set(items)

    def test_rank_one_dominates(self):
        items = [f"t{i}" for i in range(10)]
        sampler = ZipfSampler(items, exponent=1.2, rng=random.Random(7))
        draws = sampler.sample_many(3000)
        counts = {item: draws.count(item) for item in items}
        assert counts["t0"] == max(counts.values())
        assert counts["t0"] > counts["t9"] * 2

    def test_deterministic_under_seed(self):
        items = ["a", "b", "c"]
        first = ZipfSampler(items, rng=random.Random(5)).sample_many(50)
        second = ZipfSampler(items, rng=random.Random(5)).sample_many(50)
        assert first == second

    def test_probability_of_rank(self):
        sampler = ZipfSampler(["a", "b"], exponent=1.0, rng=random.Random(0))
        assert sampler.probability_of_rank(1) == pytest.approx(2.0 / 3.0)
        assert sampler.probability_of_rank(2) == pytest.approx(1.0 / 3.0)
        with pytest.raises(WorkloadError):
            sampler.probability_of_rank(3)

    def test_empty_catalog_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler([])

    def test_negative_count_rejected(self):
        sampler = ZipfSampler(["a"], rng=random.Random(0))
        with pytest.raises(WorkloadError):
            sampler.sample_many(-1)

    def test_empirical_matches_theoretical(self):
        items = [f"t{i}" for i in range(5)]
        sampler = ZipfSampler(items, exponent=0.8, rng=random.Random(11))
        draws = sampler.sample_many(20000)
        freq = draws.count("t0") / len(draws)
        assert freq == pytest.approx(sampler.probability_of_rank(1), abs=0.02)
