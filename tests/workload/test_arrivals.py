"""Unit tests for arrival processes."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import PoissonArrivals, UniformArrivals


class TestPoissonArrivals:
    def test_times_sorted_and_within_horizon(self):
        arrivals = PoissonArrivals(0.1, rng=random.Random(3))
        times = arrivals.times_until(1000.0)
        assert times == sorted(times)
        assert all(0.0 < t <= 1000.0 for t in times)

    def test_mean_rate_approximated(self):
        arrivals = PoissonArrivals(0.05, rng=random.Random(9))
        times = arrivals.times_until(100_000.0)
        assert len(times) == pytest.approx(5000, rel=0.1)

    def test_deterministic_under_seed(self):
        a = PoissonArrivals(0.2, rng=random.Random(1)).times_until(500.0)
        b = PoissonArrivals(0.2, rng=random.Random(1)).times_until(500.0)
        assert a == b

    def test_start_offsets_window(self):
        arrivals = PoissonArrivals(0.5, rng=random.Random(2))
        times = arrivals.times_until(200.0, start=100.0)
        assert all(100.0 < t <= 200.0 for t in times)

    def test_invalid_rate_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)

    def test_horizon_before_start_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(1.0).times_until(5.0, start=10.0)

    def test_stream_is_endless_and_increasing(self):
        stream = PoissonArrivals(1.0, rng=random.Random(4)).stream()
        times = [next(stream) for _ in range(100)]
        assert times == sorted(times)
        assert len(set(times)) == 100


class TestUniformArrivals:
    def test_even_spacing(self):
        times = UniformArrivals(10.0).times_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_offset(self):
        times = UniformArrivals(10.0).times_until(35.0, start=15.0)
        assert times == [25.0, 35.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(WorkloadError):
            UniformArrivals(0.0)

    def test_stream(self):
        stream = UniformArrivals(2.5).stream(start=10.0)
        assert [next(stream) for _ in range(3)] == [12.5, 15.0, 17.5]
