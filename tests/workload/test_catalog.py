"""Unit tests for the catalog generator."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workload.catalog import CatalogGenerator


class TestCatalogGenerator:
    def test_generates_requested_count(self):
        titles = CatalogGenerator(rng=random.Random(1)).generate(25)
        assert len(titles) == 25
        assert len({t.title_id for t in titles}) == 25

    def test_ids_rank_ordered_and_padded(self):
        titles = CatalogGenerator(rng=random.Random(1)).generate(3, prefix="movie")
        assert [t.title_id for t in titles] == ["movie-001", "movie-002", "movie-003"]

    def test_sizes_within_range(self):
        generator = CatalogGenerator(
            rng=random.Random(2), min_size_mb=100.0, max_size_mb=200.0
        )
        assert all(100.0 <= t.size_mb <= 200.0 for t in generator.generate(50))

    def test_durations_within_range(self):
        generator = CatalogGenerator(
            rng=random.Random(2), min_duration_s=60.0, max_duration_s=120.0
        )
        assert all(60.0 <= t.duration_s <= 120.0 for t in generator.generate(50))

    def test_deterministic_under_seed(self):
        a = CatalogGenerator(rng=random.Random(5)).generate(10)
        b = CatalogGenerator(rng=random.Random(5)).generate(10)
        assert a == b

    def test_invalid_ranges_rejected(self):
        with pytest.raises(WorkloadError):
            CatalogGenerator(min_size_mb=200.0, max_size_mb=100.0)
        with pytest.raises(WorkloadError):
            CatalogGenerator(min_duration_s=0.0)

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            CatalogGenerator().generate(0)

    def test_uniform_catalog_identical_shapes(self):
        titles = CatalogGenerator().uniform_catalog(5, size_mb=500.0, duration_s=3000.0)
        assert all(t.size_mb == 500.0 and t.duration_s == 3000.0 for t in titles)
        assert len({t.title_id for t in titles}) == 5
