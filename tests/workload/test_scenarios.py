"""Unit tests for packaged workload scenarios."""

import pytest

from repro.errors import WorkloadError
from repro.workload.scenarios import regional_scenario


class TestRegionalScenario:
    def test_events_sorted_by_time(self):
        scenario = regional_scenario(["U1", "U2"], catalog_size=10, requests_per_node=20)
        times = [e.time_s for e in scenario.events]
        assert times == sorted(times)

    def test_events_reference_catalog_titles(self):
        scenario = regional_scenario(["U1", "U2"], catalog_size=10, requests_per_node=20)
        title_ids = {t.title_id for t in scenario.catalog}
        assert all(e.title_id in title_ids for e in scenario.events)

    def test_deterministic_under_seed(self):
        a = regional_scenario(["U1", "U2"], catalog_size=5, requests_per_node=10, seed=3)
        b = regional_scenario(["U1", "U2"], catalog_size=5, requests_per_node=10, seed=3)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = regional_scenario(["U1"], catalog_size=5, requests_per_node=30, seed=1)
        b = regional_scenario(["U1"], catalog_size=5, requests_per_node=30, seed=2)
        assert a.events != b.events

    def test_regional_rotation_shifts_popularity(self):
        scenario = regional_scenario(
        ["U1", "U2"],
            catalog_size=20,
            requests_per_node=300,
            regional_shift=10,
            zipf_exponent=1.2,
            seed=5,
        )
        by_home = scenario.events_by_home()

        def top_title(events):
            counts = {}
            for event in events:
                counts[event.title_id] = counts.get(event.title_id, 0) + 1
            return max(counts, key=counts.get)

        # Node 0's favourite is rank 1 of the global order; node 1's is
        # rotated 10 places away.
        assert top_title(by_home["U1"]) != top_title(by_home["U2"])

    def test_zero_shift_gives_same_tastes(self):
        scenario = regional_scenario(
            ["U1", "U2"],
            catalog_size=10,
            requests_per_node=500,
            regional_shift=0,
            zipf_exponent=1.5,
            seed=5,
        )
        by_home = scenario.events_by_home()
        favourites = set()
        for events in by_home.values():
            counts = {}
            for event in events:
                counts[event.title_id] = counts.get(event.title_id, 0) + 1
            favourites.add(max(counts, key=counts.get))
        assert favourites == {scenario.catalog[0].title_id}

    def test_client_ids_unique(self):
        scenario = regional_scenario(["U1", "U2"], catalog_size=5, requests_per_node=20)
        ids = [e.client_id for e in scenario.events]
        assert len(ids) == len(set(ids))

    def test_title_by_id(self):
        scenario = regional_scenario(["U1"], catalog_size=5, requests_per_node=5)
        title = scenario.catalog[0]
        assert scenario.title_by_id(title.title_id) is title
        with pytest.raises(WorkloadError):
            scenario.title_by_id("ghost")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            regional_scenario([], catalog_size=5)
        with pytest.raises(WorkloadError):
            regional_scenario(["U1"], requests_per_node=0)
        with pytest.raises(WorkloadError):
            regional_scenario(["U1"], horizon_s=0.0)

    def test_prebuilt_catalog_reused(self):
        first = regional_scenario(["U1"], catalog_size=5, requests_per_node=5)
        second = regional_scenario(
            ["U1"], requests_per_node=5, catalog=first.catalog
        )
        assert second.catalog is first.catalog


class TestFlashCrowdScenario:
    def _title(self):
        from repro.storage.video import VideoTitle

        return VideoTitle("special", size_mb=300.0, duration_s=1800.0)

    def test_all_events_same_home_and_title(self):
        from repro.workload.scenarios import flash_crowd_scenario

        scenario = flash_crowd_scenario("U2", self._title(), viewer_count=20)
        assert len(scenario.events) == 20
        assert all(e.home_uid == "U2" for e in scenario.events)
        assert all(e.title_id == "special" for e in scenario.events)

    def test_arrivals_within_ramp_window(self):
        from repro.workload.scenarios import flash_crowd_scenario

        scenario = flash_crowd_scenario(
            "U2", self._title(), viewer_count=50, start_s=100.0, ramp_s=200.0
        )
        times = [e.time_s for e in scenario.events]
        assert times == sorted(times)
        assert all(100.0 <= t <= 300.0 for t in times)

    def test_deterministic_under_seed(self):
        from repro.workload.scenarios import flash_crowd_scenario

        a = flash_crowd_scenario("U2", self._title(), seed=3)
        b = flash_crowd_scenario("U2", self._title(), seed=3)
        assert a.events == b.events
        c = flash_crowd_scenario("U2", self._title(), seed=4)
        assert a.events != c.events

    def test_invalid_parameters_rejected(self):
        from repro.workload.scenarios import flash_crowd_scenario

        with pytest.raises(WorkloadError):
            flash_crowd_scenario("U2", self._title(), viewer_count=0)
        with pytest.raises(WorkloadError):
            flash_crowd_scenario("U2", self._title(), ramp_s=0.0)

    def test_client_ids_unique(self):
        from repro.workload.scenarios import flash_crowd_scenario

        scenario = flash_crowd_scenario("U2", self._title(), viewer_count=30)
        ids = [e.client_id for e in scenario.events]
        assert len(set(ids)) == 30
