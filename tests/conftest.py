"""Shared fixtures: topologies, videos and service setups used across the
test suite."""

from __future__ import annotations

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator at t=0."""
    return Simulator()


@pytest.fixture
def grnet() -> Topology:
    """The paper's Figure 6 GRNET backbone, idle."""
    return build_grnet_topology()


@pytest.fixture
def grnet_8am() -> Topology:
    """GRNET loaded with the 8am Table 2 sample."""
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return topology


@pytest.fixture
def triangle() -> Topology:
    """Minimal 3-node triangle: A-B (10 Mb), B-C (10 Mb), A-C (2 Mb)."""
    topology = Topology(name="triangle")
    for uid in ("A", "B", "C"):
        topology.add_node(Node(uid=uid))
    topology.add_link(Link("A", "B", capacity_mbps=10.0))
    topology.add_link(Link("B", "C", capacity_mbps=10.0))
    topology.add_link(Link("A", "C", capacity_mbps=2.0))
    return topology


@pytest.fixture
def line() -> Topology:
    """4-node line: A-B-C-D, all 10 Mb."""
    topology = Topology(name="line")
    for uid in ("A", "B", "C", "D"):
        topology.add_node(Node(uid=uid))
    topology.add_link(Link("A", "B", capacity_mbps=10.0))
    topology.add_link(Link("B", "C", capacity_mbps=10.0))
    topology.add_link(Link("C", "D", capacity_mbps=10.0))
    return topology


@pytest.fixture
def small_video() -> VideoTitle:
    """A 100 MB / 10-minute video (bitrate ~1.33 Mbps)."""
    return VideoTitle("small", size_mb=100.0, duration_s=600.0)


@pytest.fixture
def movie() -> VideoTitle:
    """A 900 MB / 90-minute feature (bitrate ~1.33 Mbps)."""
    return VideoTitle("movie", size_mb=900.0, duration_s=5400.0)


@pytest.fixture
def grnet_service(grnet_8am: Topology) -> VoDService:
    """A service on loaded GRNET with small disks and fast SNMP."""
    simulator = Simulator(start_time=8 * 3600.0)
    config = ServiceConfig(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=500.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    return VoDService(simulator, grnet_8am, config)
