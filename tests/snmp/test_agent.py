"""Unit tests for the per-node SNMP agent."""

import pytest

from repro.errors import SnmpError
from repro.snmp.agent import SnmpAgent
from repro.snmp.counters import counter_delta


class TestSnmpAgent:
    def test_instruments_adjacent_links_only(self, grnet):
        agent = SnmpAgent(grnet, "U2")
        assert agent.link_names == ["Patra-Athens", "Patra-Ioannina"]

    def test_unknown_node_rejected(self, grnet):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            SnmpAgent(grnet, "U9")

    def test_counters_integrate_constant_rate(self, grnet):
        grnet.link_named("Patra-Athens").set_background_mbps(1.0)
        agent = SnmpAgent(grnet, "U2", start_time=0.0)
        first = agent.poll(0.0)
        second = agent.poll(60.0)
        in_delta = counter_delta(first["Patra-Athens"][0], second["Patra-Athens"][0])
        out_delta = counter_delta(first["Patra-Athens"][1], second["Patra-Athens"][1])
        # 1 Mbps for 60 s = 60 Mbit = 7.5e6 octets, split across directions.
        assert in_delta + out_delta == pytest.approx(7_500_000, rel=1e-6)

    def test_idle_link_counters_static(self, grnet):
        agent = SnmpAgent(grnet, "U2")
        first = agent.poll(10.0)
        second = agent.poll(20.0)
        assert first == second

    def test_rate_change_between_polls_uses_current_rate(self, grnet):
        link = grnet.link_named("Patra-Athens")
        agent = SnmpAgent(grnet, "U2")
        agent.poll(0.0)
        link.set_background_mbps(2.0)
        counters = agent.poll(30.0)
        total = counters["Patra-Athens"][0] + counters["Patra-Athens"][1]
        # 2 Mbps over 30 s = 60 Mbit = 7.5e6 octets.
        assert total == pytest.approx(7_500_000, rel=1e-6)

    def test_time_backwards_rejected(self, grnet):
        agent = SnmpAgent(grnet, "U2")
        agent.advance(100.0)
        with pytest.raises(SnmpError):
            agent.advance(50.0)

    def test_zero_elapsed_is_noop(self, grnet):
        grnet.link_named("Patra-Athens").set_background_mbps(1.0)
        agent = SnmpAgent(grnet, "U2")
        first = agent.poll(10.0)
        second = agent.poll(10.0)
        assert first == second
