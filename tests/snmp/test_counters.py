"""Unit tests for Counter32 semantics."""

import pytest

from repro.errors import SnmpError
from repro.snmp.counters import (
    COUNTER32_MODULUS,
    OctetCounter,
    counter_delta,
    delta_to_mbps,
)


class TestOctetCounter:
    def test_starts_at_zero(self):
        counter = OctetCounter()
        assert counter.value == 0
        assert counter.wraps == 0

    def test_accumulates(self):
        counter = OctetCounter()
        counter.add_octets(100)
        counter.add_octets(50)
        assert counter.value == 150

    def test_wraps_at_2_32(self):
        counter = OctetCounter(COUNTER32_MODULUS - 10)
        counter.add_octets(15)
        assert counter.value == 5
        assert counter.wraps >= 1

    def test_initial_above_modulus_normalised(self):
        counter = OctetCounter(COUNTER32_MODULUS + 7)
        assert counter.value == 7
        assert counter.wraps == 1

    def test_negative_add_rejected(self):
        with pytest.raises(SnmpError):
            OctetCounter().add_octets(-1)

    def test_negative_initial_rejected(self):
        with pytest.raises(SnmpError):
            OctetCounter(-5)

    def test_add_megabits(self):
        counter = OctetCounter()
        counter.add_megabits(8.0)  # 8 Mbit = 1 MB = 1_000_000 octets
        assert counter.value == 1_000_000

    def test_multiple_wraps_tracked(self):
        counter = OctetCounter()
        counter.add_octets(3 * COUNTER32_MODULUS + 9)
        assert counter.value == 9
        assert counter.wraps == 3


class TestCounterDelta:
    def test_simple_delta(self):
        assert counter_delta(100, 150) == 50

    def test_zero_delta(self):
        assert counter_delta(42, 42) == 0

    def test_wrap_corrected(self):
        assert counter_delta(COUNTER32_MODULUS - 10, 5) == 15

    def test_roundtrip_with_counter(self):
        counter = OctetCounter(COUNTER32_MODULUS - 100)
        before = counter.value
        counter.add_octets(250)
        assert counter_delta(before, counter.value) == 250

    def test_out_of_range_rejected(self):
        with pytest.raises(SnmpError):
            counter_delta(-1, 5)
        with pytest.raises(SnmpError):
            counter_delta(0, COUNTER32_MODULUS)


class TestDeltaToMbps:
    def test_conversion(self):
        # 7.5 MB over 60 s = 1 Mbps.
        assert delta_to_mbps(7_500_000, 60.0) == pytest.approx(1.0)

    def test_zero_octets_is_zero_rate(self):
        assert delta_to_mbps(0, 60.0) == 0.0

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SnmpError):
            delta_to_mbps(100, 0.0)
        with pytest.raises(SnmpError):
            delta_to_mbps(100, -5.0)
