"""Unit tests for the SNMP statistics modules and the collection service."""

import pytest

from repro.database.records import LinkEntry
from repro.database.store import ServiceDatabase
from repro.errors import SnmpError
from repro.sim.engine import Simulator
from repro.snmp.collector import NodeStatisticsModule, StatisticsService


def make_db(topology) -> ServiceDatabase:
    database = ServiceDatabase()
    for link in topology.links():
        database.register_link(
            LinkEntry(
                link_name=link.name,
                endpoints=link.endpoints,
                total_bandwidth_mbps=link.capacity_mbps,
            )
        )
    return database


class TestNodeStatisticsModule:
    def test_first_poll_is_baseline_only(self, grnet):
        database = make_db(grnet)
        module = NodeStatisticsModule(grnet, "U2", database.limited_access())
        assert module.collect(0.0) == {}
        assert module.samples_written == 0

    def test_second_poll_writes_utilization(self, grnet):
        grnet.link_named("Patra-Athens").set_background_mbps(1.0)
        database = make_db(grnet)
        module = NodeStatisticsModule(grnet, "U2", database.limited_access())
        module.collect(0.0)
        written = module.collect(60.0)
        stats = written["Patra-Athens"]
        assert stats.used_mbps == pytest.approx(1.0, rel=1e-3)
        assert stats.utilization == pytest.approx(0.5, rel=1e-3)
        assert stats.timestamp == 60.0
        assert database.link_entry("Patra-Athens").used_mbps == pytest.approx(1.0, rel=1e-3)

    def test_rate_averaged_over_interval(self, grnet):
        link = grnet.link_named("Patra-Athens")
        database = make_db(grnet)
        module = NodeStatisticsModule(grnet, "U2", database.limited_access())
        module.collect(0.0)
        link.set_background_mbps(2.0)
        module.agent.advance(30.0)  # 30 s at 2 Mbps
        link.set_background_mbps(0.0)
        written = module.collect(60.0)  # 30 s idle
        assert written["Patra-Athens"].used_mbps == pytest.approx(1.0, rel=1e-3)

    def test_non_positive_interval_rejected(self, grnet):
        database = make_db(grnet)
        module = NodeStatisticsModule(grnet, "U2", database.limited_access())
        module.collect(10.0)
        with pytest.raises(SnmpError):
            module.collect(10.0)

    def test_utilization_capped_at_one(self, grnet):
        grnet.link_named("Patra-Athens").set_background_mbps(5.0)  # clamps to 2
        database = make_db(grnet)
        module = NodeStatisticsModule(grnet, "U2", database.limited_access())
        module.collect(0.0)
        written = module.collect(60.0)
        assert written["Patra-Athens"].utilization <= 1.0


class TestStatisticsService:
    def test_periodic_collection_updates_all_links(self, grnet):
        sim = Simulator()
        for link in grnet.links():
            link.set_background_mbps(0.25 * link.capacity_mbps)
        database = make_db(grnet)
        service = StatisticsService(sim, grnet, database.limited_access(), period_s=60.0)
        service.start()
        sim.run(until=130.0)
        for entry in database.link_entries():
            assert entry.latest_stats is not None
            assert entry.utilization == pytest.approx(0.25, rel=1e-3)

    def test_one_module_per_node(self, grnet):
        sim = Simulator()
        database = make_db(grnet)
        service = StatisticsService(sim, grnet, database.limited_access())
        assert len(service.modules) == grnet.node_count

    def test_stop_halts_updates(self, grnet):
        sim = Simulator()
        grnet.link_named("Patra-Athens").set_background_mbps(1.0)
        database = make_db(grnet)
        service = StatisticsService(sim, grnet, database.limited_access(), period_s=60.0)
        service.start()
        sim.run(until=70.0)
        stamp = database.link_entry("Patra-Athens").latest_stats.timestamp
        service.stop()
        sim.run(until=700.0)
        assert database.link_entry("Patra-Athens").latest_stats.timestamp == stamp

    def test_invalid_period_rejected(self, grnet):
        sim = Simulator()
        database = make_db(grnet)
        with pytest.raises(SnmpError):
            StatisticsService(sim, grnet, database.limited_access(), period_s=0.0)

    def test_stats_track_changing_traffic(self, grnet):
        sim = Simulator()
        database = make_db(grnet)
        link = grnet.link_named("Patra-Athens")
        service = StatisticsService(sim, grnet, database.limited_access(), period_s=60.0)
        service.start()
        link.set_background_mbps(0.4)
        sim.run(until=61.0)
        first = database.link_entry("Patra-Athens").used_mbps
        link.set_background_mbps(1.6)
        sim.run(until=121.0)
        second = database.link_entry("Patra-Athens").used_mbps
        assert first == pytest.approx(0.4, rel=1e-2)
        assert second == pytest.approx(1.6, rel=1e-2)
