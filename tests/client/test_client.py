"""Unit tests for the client model."""

import pytest

from repro.client.client import Client
from repro.errors import ServiceError


class TestClient:
    def test_subnet_is_first_three_octets(self):
        assert Client("c", "10.2.0.17").subnet == "10.2.0"

    def test_resolve_home(self):
        client = Client("c", "10.2.0.17")
        assert client.resolve_home({"10.2.0": "U2"}) == "U2"

    def test_resolve_unknown_subnet_raises(self):
        client = Client("c", "192.168.1.5")
        with pytest.raises(ServiceError):
            client.resolve_home({"10.2.0": "U2"})

    def test_invalid_address_rejected(self):
        with pytest.raises(ServiceError):
            Client("c", "10.2.0")
        with pytest.raises(ServiceError):
            Client("c", "not-an-ip")

    def test_empty_id_rejected(self):
        with pytest.raises(ServiceError):
            Client("", "10.0.0.1")

    def test_frozen(self):
        client = Client("c", "10.0.0.1")
        with pytest.raises(AttributeError):
            client.address = "10.0.0.2"  # type: ignore[misc]
