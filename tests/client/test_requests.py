"""Unit tests for the request lifecycle."""

from repro.client.requests import RequestStatus, VideoRequest


def make_request() -> VideoRequest:
    return VideoRequest(client_id="c", home_uid="U2", title_id="t", submitted_at=5.0)


class TestLifecycle:
    def test_starts_pending(self):
        request = make_request()
        assert request.status is RequestStatus.PENDING
        assert not request.finished

    def test_streaming_transition(self):
        request = make_request()
        request.mark_streaming()
        assert request.status is RequestStatus.STREAMING
        assert not request.finished

    def test_completed_is_terminal(self):
        request = make_request()
        request.mark_streaming()
        request.mark_completed()
        assert request.status is RequestStatus.COMPLETED
        assert request.finished
        assert request.failure_reason is None

    def test_failed_records_reason(self):
        request = make_request()
        request.mark_failed("no source")
        assert request.status is RequestStatus.FAILED
        assert request.finished
        assert request.failure_reason == "no source"

    def test_request_ids_unique_and_increasing(self):
        a, b = make_request(), make_request()
        assert b.request_id > a.request_id

    def test_submitted_at_recorded(self):
        assert make_request().submitted_at == 5.0
