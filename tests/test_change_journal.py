"""Unit tests for the bounded change journal (delta invalidation base)."""

import pytest

from repro.changes import ChangeJournal
from repro.errors import ReproError


class TestChangeJournal:
    def test_fresh_journal_has_head_zero_and_empty_drain(self):
        journal = ChangeJournal()
        assert journal.head == 0
        head, keys = journal.since(0)
        assert head == 0
        assert keys == frozenset()

    def test_records_drain_once_per_cursor(self):
        journal = ChangeJournal()
        journal.record("a")
        journal.record("b")
        head, keys = journal.since(0)
        assert keys == {"a", "b"}
        # Same cursor again: nothing new.
        head2, keys2 = journal.since(head)
        assert head2 == head
        assert keys2 == frozenset()

    def test_multiple_consumers_have_independent_cursors(self):
        journal = ChangeJournal()
        journal.record("a")
        c1, keys1 = journal.since(0)
        journal.record("b")
        c2, keys2 = journal.since(c1)
        _, keys_late = journal.since(0)
        assert keys1 == {"a"}
        assert keys2 == {"b"}
        assert keys_late == {"a", "b"}

    def test_repeat_after_drain_is_not_collapsed(self):
        # Regression: collapsing an immediate repeat would hide a change
        # from a consumer whose cursor already passed the earlier record.
        journal = ChangeJournal()
        journal.record("x")
        cursor, keys = journal.since(0)
        assert keys == {"x"}
        journal.record("x")  # the same key changes again
        _, keys2 = journal.since(cursor)
        assert keys2 == {"x"}

    def test_kinds_filter_returns_only_matching_records(self):
        journal = ChangeJournal()
        journal.record("a", kind="state")
        journal.record("b", kind="traffic")
        head, keys = journal.since(0, kinds=("state",))
        assert keys == {"a"}
        # The cursor still advanced past the filtered-out record.
        _, keys2 = journal.since(head)
        assert keys2 == frozenset()

    def test_overflow_returns_none_for_stale_cursor(self):
        journal = ChangeJournal(capacity=3)
        for i in range(6):
            journal.record(f"k{i}")
        head, keys = journal.since(0)
        assert keys is None
        assert head == 6
        # A cursor at the new head drains cleanly again.
        journal.record("fresh")
        _, keys2 = journal.since(head)
        assert keys2 == {"fresh"}

    def test_cursor_at_oldest_retained_record_still_drains(self):
        journal = ChangeJournal(capacity=3)
        for i in range(5):
            journal.record(f"k{i}")
        # Records 1-2 dropped; cursor 2 needs records 3..5 — all retained.
        head, keys = journal.since(2)
        assert keys == {"k2", "k3", "k4"}
        assert head == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            ChangeJournal(capacity=0)
