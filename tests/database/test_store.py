"""Unit tests for the service database."""

import pytest

from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo
from repro.database.store import ServiceDatabase
from repro.errors import DuplicateEntryError, MissingEntryError


@pytest.fixture
def db() -> ServiceDatabase:
    database = ServiceDatabase()
    database.register_server(ServerEntry("U1"))
    database.register_server(ServerEntry("U2"))
    database.register_link(LinkEntry("U1-U2", ("U1", "U2"), total_bandwidth_mbps=2.0))
    database.register_title(TitleInfo("t1", "First Movie", 900.0, 5400.0))
    database.register_title(TitleInfo("t2", "Second Movie", 700.0, 5400.0))
    return database


class TestRegistration:
    def test_duplicate_server_rejected(self, db):
        with pytest.raises(DuplicateEntryError):
            db.register_server(ServerEntry("U1"))

    def test_duplicate_link_rejected(self, db):
        with pytest.raises(DuplicateEntryError):
            db.register_link(LinkEntry("U1-U2", ("U1", "U2"), total_bandwidth_mbps=2.0))

    def test_identical_title_reregistration_is_noop(self, db):
        db.register_title(TitleInfo("t1", "First Movie", 900.0, 5400.0))
        assert len(db.list_titles()) == 2

    def test_conflicting_title_rejected(self, db):
        with pytest.raises(DuplicateEntryError):
            db.register_title(TitleInfo("t1", "Different", 100.0, 600.0))

    def test_server_with_initial_titles_indexed(self):
        database = ServiceDatabase()
        database.register_title(TitleInfo("t1", "Movie", 900.0, 5400.0))
        database.register_server(ServerEntry("U1", title_ids={"t1"}))
        assert database.servers_with_title("t1") == ["U1"]

    def test_server_uids_sorted(self, db):
        assert db.server_uids() == ["U1", "U2"]


class TestCatalog:
    def test_list_titles_sorted(self, db):
        assert [t.title_id for t in db.list_titles()] == ["t1", "t2"]

    def test_search_case_insensitive(self, db):
        assert [t.title_id for t in db.search_titles("FIRST")] == ["t1"]
        assert [t.title_id for t in db.search_titles("movie")] == ["t1", "t2"]
        assert db.search_titles("zebra") == []

    def test_title_info_unknown_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.title_info("nope")

    def test_has_title(self, db):
        assert db.has_title("t1")
        assert not db.has_title("zzz")


class TestTitleLocations:
    def test_add_and_remove_title(self, db):
        db.add_title_to_server("U1", "t1")
        db.add_title_to_server("U2", "t1")
        assert db.servers_with_title("t1") == ["U1", "U2"]
        db.remove_title_from_server("U1", "t1")
        assert db.servers_with_title("t1") == ["U2"]

    def test_add_is_idempotent(self, db):
        db.add_title_to_server("U1", "t1")
        db.add_title_to_server("U1", "t1")
        assert db.servers_with_title("t1") == ["U1"]

    def test_remove_unadvertised_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.remove_title_from_server("U1", "t1")

    def test_unknown_title_location_query_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.servers_with_title("nope")

    def test_add_unknown_title_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.add_title_to_server("U1", "nope")

    def test_add_to_unknown_server_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.add_title_to_server("U9", "t1")

    def test_server_title_ids_is_copy(self, db):
        db.add_title_to_server("U1", "t1")
        ids = db.server_title_ids("U1")
        ids.add("t2")
        assert db.server_title_ids("U1") == {"t1"}


class TestMutations:
    def test_update_link_stats(self, db):
        stats = LinkStats(used_mbps=1.5, utilization=0.75, timestamp=60.0)
        db.update_link_stats("U1-U2", stats)
        assert db.link_entry("U1-U2").latest_stats == stats

    def test_update_unknown_link_raises(self, db):
        with pytest.raises(MissingEntryError):
            db.update_link_stats("X-Y", LinkStats(1.0, 0.5, 0.0))

    def test_update_server_config_bumps_version(self, db):
        db.update_server_config("U1", max_streams=8, online=False)
        entry = db.server_entry("U1")
        assert entry.max_streams == 8
        assert not entry.online
        assert entry.config_version == 1

    def test_update_protected_attribute_rejected(self, db):
        with pytest.raises(MissingEntryError):
            db.update_server_config("U1", title_ids=set())

    def test_update_unknown_attribute_rejected(self, db):
        with pytest.raises(MissingEntryError):
            db.update_server_config("U1", nonsense=1)

    def test_link_entries_sorted(self, db):
        db.register_link(LinkEntry("A-B", ("A", "B"), total_bandwidth_mbps=1.0))
        assert [e.link_name for e in db.link_entries()] == ["A-B", "U1-U2"]
