"""Unit tests for the database entry types."""

import pytest

from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo


class TestTitleInfo:
    def test_bitrate_defaults_from_size_and_duration(self):
        info = TitleInfo("t1", "Title", size_mb=900.0, duration_s=5400.0)
        assert info.bitrate_mbps == pytest.approx(900 * 8 / 5400)

    def test_explicit_bitrate_kept(self):
        info = TitleInfo("t1", "Title", size_mb=900.0, duration_s=5400.0, bitrate_mbps=2.0)
        assert info.bitrate_mbps == 2.0

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            TitleInfo("", "x", 1.0, 1.0)
        with pytest.raises(ValueError):
            TitleInfo("t", "x", 0.0, 1.0)
        with pytest.raises(ValueError):
            TitleInfo("t", "x", 1.0, -2.0)

    def test_frozen_and_comparable(self):
        a = TitleInfo("t1", "Title", 100.0, 600.0)
        b = TitleInfo("t1", "Title", 100.0, 600.0)
        assert a == b


class TestServerEntry:
    def test_defaults(self):
        entry = ServerEntry("U1")
        assert entry.online
        assert entry.title_ids == set()
        assert entry.config_version == 0

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            ServerEntry("")
        with pytest.raises(ValueError):
            ServerEntry("U1", disk_count=0)


class TestLinkEntry:
    def test_defaults_before_first_sample(self):
        entry = LinkEntry("A-B", ("A", "B"), total_bandwidth_mbps=2.0)
        assert entry.latest_stats is None
        assert entry.used_mbps == 0.0
        assert entry.utilization == 0.0

    def test_stats_reflected(self):
        entry = LinkEntry("A-B", ("A", "B"), total_bandwidth_mbps=2.0)
        entry.latest_stats = LinkStats(used_mbps=1.0, utilization=0.5, timestamp=60.0)
        assert entry.used_mbps == 1.0
        assert entry.utilization == 0.5

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            LinkEntry("", ("A", "B"), 2.0)
        with pytest.raises(ValueError):
            LinkEntry("A-B", ("A", "B"), 0.0)
