"""Unit tests for the full/limited access split."""

import pytest

from repro.database.access import AccessLevel
from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo
from repro.database.store import ServiceDatabase
from repro.errors import AccessDeniedError


@pytest.fixture
def db() -> ServiceDatabase:
    database = ServiceDatabase()
    database.register_server(ServerEntry("U1"))
    database.register_link(LinkEntry("U1-U2", ("U1", "U2"), total_bandwidth_mbps=2.0))
    database.register_title(TitleInfo("t1", "Movie", 900.0, 5400.0))
    database.add_title_to_server("U1", "t1")
    return database


class TestFullAccess:
    def test_catalog_operations_allowed(self, db):
        handle = db.full_access()
        assert handle.level is AccessLevel.FULL
        assert [t.title_id for t in handle.list_titles()] == ["t1"]
        assert handle.search_titles("mov")[0].title_id == "t1"
        assert handle.title_info("t1").name == "Movie"
        assert handle.servers_with_title("t1") == ["U1"]
        assert handle.server_title_ids("U1") == {"t1"}

    def test_admin_reads_denied(self, db):
        handle = db.full_access()
        with pytest.raises(AccessDeniedError):
            handle.server_entry("U1")
        with pytest.raises(AccessDeniedError):
            handle.link_entry("U1-U2")
        with pytest.raises(AccessDeniedError):
            handle.link_entries()

    def test_admin_writes_denied(self, db):
        handle = db.full_access()
        with pytest.raises(AccessDeniedError):
            handle.update_link_stats("U1-U2", LinkStats(1.0, 0.5, 0.0))
        with pytest.raises(AccessDeniedError):
            handle.update_server_config("U1", max_streams=4)
        with pytest.raises(AccessDeniedError):
            handle.set_server_online("U1", False)


class TestLimitedAccess:
    def test_catalog_operations_still_allowed(self, db):
        handle = db.limited_access()
        assert handle.servers_with_title("t1") == ["U1"]

    def test_admin_operations_allowed(self, db):
        handle = db.limited_access()
        assert handle.level is AccessLevel.LIMITED
        assert handle.server_entry("U1").server_uid == "U1"
        assert handle.link_entry("U1-U2").total_bandwidth_mbps == 2.0
        handle.update_link_stats("U1-U2", LinkStats(1.0, 0.5, 42.0))
        assert handle.link_entry("U1-U2").used_mbps == 1.0
        handle.set_server_online("U1", False)
        assert not handle.server_entry("U1").online

    def test_update_server_config(self, db):
        handle = db.limited_access()
        handle.update_server_config("U1", disk_capacity_mb=100.0)
        assert handle.server_entry("U1").disk_capacity_mb == 100.0
