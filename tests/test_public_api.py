"""Public API surface tests.

Every name promised by a package's ``__all__`` must resolve, and the
top-level convenience imports must stay stable — downstream code imports
these paths.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.client",
    "repro.core",
    "repro.database",
    "repro.experiments",
    "repro.extensions",
    "repro.faults",
    "repro.metrics",
    "repro.network",
    "repro.network.routing",
    "repro.placement",
    "repro.sim",
    "repro.snmp",
    "repro.storage",
    "repro.workload",
]


class TestAllExportsResolve:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_all_entry_exists(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_is_sorted_for_readability(self, package_name):
        package = importlib.import_module(package_name)
        exported = [n for n in package.__all__ if n != "__version__"]
        assert exported == sorted(exported), package_name


class TestTopLevelConvenience:
    def test_headline_classes_importable_from_root(self):
        from repro import (  # noqa: F401
            Client,
            DiskManipulationAlgorithm,
            ServiceConfig,
            Simulator,
            Topology,
            VideoTitle,
            VirtualRoutingAlgorithm,
            VoDService,
        )

    def test_version_is_semver_like(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_quickstart_docstring_example_names_exist(self):
        # The module docstring's quickstart must reference real API.
        import repro

        assert "VoDService" in repro.__doc__
        assert "build_grnet_topology" in repro.__doc__


class TestErrorCatchability:
    def test_facade_errors_catchable_at_top_level(self):
        from repro.errors import ReproError, ServiceError

        from repro import ServiceConfig, Simulator, VoDService
        from repro.network.grnet import build_grnet_topology

        service = VoDService(Simulator(), build_grnet_topology(), ServiceConfig())
        with pytest.raises(ReproError):
            service.seed_title("nope", None)  # type: ignore[arg-type]
        with pytest.raises(ServiceError):
            service.attach_access_network("10.0.0", "nope")
