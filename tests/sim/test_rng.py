"""Unit tests for the named RNG registry."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_same_instance(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_reproducible_across_registries(self):
        first = RngRegistry(42).stream("arrivals")
        second = RngRegistry(42).stream("arrivals")
        assert [first.random() for _ in range(10)] == [
            second.random() for _ in range(10)
        ]

    def test_different_names_give_independent_streams(self):
        rngs = RngRegistry(42)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_master_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_adding_a_stream_does_not_shift_existing(self):
        plain = RngRegistry(7)
        baseline = [plain.stream("keep").random() for _ in range(5)]

        busy = RngRegistry(7)
        busy.stream("other")  # extra stream created first
        busy.stream("another")
        values = [busy.stream("keep").random() for _ in range(5)]
        assert values == baseline

    def test_reseed_resets_streams(self):
        rngs = RngRegistry(1)
        first = rngs.stream("x").random()
        rngs.reseed(1)
        assert rngs.stream("x").random() == first

    def test_names_lists_created_streams(self):
        rngs = RngRegistry(0)
        rngs.stream("b")
        rngs.stream("a")
        assert list(rngs.names()) == ["a", "b"]
