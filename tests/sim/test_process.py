"""Unit tests for generator-based processes and signals."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, Signal, WaitSignal


class TestProcessBasics:
    def test_process_runs_and_returns_result(self, sim):
        def body():
            yield Delay(5.0)
            return "done"

        process = Process(sim, body())
        sim.run()
        assert process.finished
        assert process.check() == "done"

    def test_delays_advance_simulated_time(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield Delay(3.0)
            times.append(sim.now)
            yield Delay(4.0)
            times.append(sim.now)

        Process(sim, body())
        sim.run()
        assert times == [0.0, 3.0, 7.0]

    def test_bare_numbers_act_as_delays(self, sim):
        times = []

        def body():
            yield 2.5
            times.append(sim.now)
            yield 1
            times.append(sim.now)

        Process(sim, body())
        sim.run()
        assert times == [2.5, 3.5]

    def test_construction_does_not_run_body_synchronously(self, sim):
        ran = []

        def body():
            ran.append(True)
            yield Delay(1.0)

        Process(sim, body())
        assert ran == []
        sim.run()
        assert ran == [True]

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_exception_captured_and_reraised_by_check(self, sim):
        def body():
            yield Delay(1.0)
            raise ValueError("boom")

        process = Process(sim, body())
        sim.run()  # engine survives
        assert process.finished
        with pytest.raises(ValueError, match="boom"):
            process.check()

    def test_unsupported_yield_value_errors_process(self, sim):
        def body():
            yield "not a delay"

        process = Process(sim, body())
        sim.run()
        assert process.finished
        with pytest.raises(SimulationError):
            process.check()

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(name, gap):
            for _ in range(3):
                yield Delay(gap)
                log.append((name, sim.now))

        Process(sim, worker("fast", 1.0))
        Process(sim, worker("slow", 2.5))
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]


class TestInterrupt:
    def test_interrupt_stops_future_work(self, sim):
        log = []

        def body():
            yield Delay(5.0)
            log.append("never")

        process = Process(sim, body())
        sim.run(until=1.0)
        assert process.interrupt()
        sim.run()
        assert log == []
        assert process.finished

    def test_interrupt_after_finish_returns_false(self, sim):
        def body():
            yield Delay(1.0)

        process = Process(sim, body())
        sim.run()
        assert not process.interrupt()


class TestSignals:
    def test_signal_wakes_waiter_with_payload(self, sim):
        received = []

        def waiter():
            payload = yield WaitSignal(signal)
            received.append((sim.now, payload))

        signal = Signal("data")
        Process(sim, waiter())
        sim.schedule(4.0, lambda: signal.trigger(sim, "hello"))
        sim.run()
        assert received == [(4.0, "hello")]

    def test_signal_wakes_all_waiters(self, sim):
        woken = []

        def waiter(name):
            yield WaitSignal(signal)
            woken.append(name)

        signal = Signal()
        for name in ("a", "b", "c"):
            Process(sim, waiter(name))
        sim.schedule(1.0, lambda: signal.trigger(sim))
        sim.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_trigger_with_no_waiters_returns_zero(self, sim):
        signal = Signal()
        assert signal.trigger(sim) == 0
        assert signal.trigger_count == 1

    def test_finished_signal_fires_on_completion(self, sim):
        results = []

        def body():
            yield Delay(2.0)
            return 42

        def watcher():
            finished_process = yield WaitSignal(process.finished_signal)
            results.append(finished_process.result)

        process = Process(sim, body())
        Process(sim, watcher())
        sim.run()
        assert results == [42]

    def test_waiter_count_tracks_registrations(self, sim):
        signal = Signal()

        def waiter():
            yield WaitSignal(signal)

        Process(sim, waiter())
        Process(sim, waiter())
        sim.run(until=0.0)  # let both park
        assert signal.waiter_count == 2
        signal.trigger(sim)
        assert signal.waiter_count == 0
