"""Unit tests for PeriodicTask."""

import pytest

from repro.errors import SchedulingError
from repro.sim.timers import PeriodicTask


class TestPeriodicTask:
    def test_fires_every_period(self, sim):
        times = []
        task = PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_delay_offsets_first_firing(self, sim):
        times = []
        task = PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        task.start(start_delay=0.0)
        sim.run(until=25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_halts_firings(self, sim):
        times = []
        task = PeriodicTask(sim, 5.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=12.0)
        task.stop()
        sim.run(until=50.0)
        assert times == [5.0, 10.0]
        assert not task.running

    def test_stop_from_inside_callback(self, sim):
        times = []

        def callback():
            times.append(sim.now)
            if len(times) == 2:
                task.stop()

        task = PeriodicTask(sim, 5.0, callback)
        task.start()
        sim.run(until=100.0)
        assert times == [5.0, 10.0]

    def test_set_period_changes_cadence(self, sim):
        times = []

        def callback():
            times.append(sim.now)
            task.set_period(20.0)

        task = PeriodicTask(sim, 5.0, callback)
        task.start()
        sim.run(until=50.0)
        assert times == [5.0, 25.0, 45.0]

    def test_fire_count(self, sim):
        task = PeriodicTask(sim, 1.0, lambda: None)
        task.start()
        sim.run(until=7.5)
        assert task.fire_count == 7

    def test_double_start_is_noop(self, sim):
        times = []
        task = PeriodicTask(sim, 10.0, lambda: times.append(sim.now))
        task.start()
        task.start()
        sim.run(until=15.0)
        assert times == [10.0]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SchedulingError):
            PeriodicTask(sim, 0.0, lambda: None)
        with pytest.raises(SchedulingError):
            PeriodicTask(sim, -5.0, lambda: None)

    def test_set_invalid_period_rejected(self, sim):
        task = PeriodicTask(sim, 1.0, lambda: None)
        with pytest.raises(SchedulingError):
            task.set_period(0.0)

    def test_restart_after_stop(self, sim):
        times = []
        task = PeriodicTask(sim, 5.0, lambda: times.append(sim.now))
        task.start()
        sim.run(until=6.0)
        task.stop()
        sim.run(until=20.0)
        task.start()
        sim.run(until=26.0)
        assert times == [5.0, 25.0]
