"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_start_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=100.0).now == 100.0

    def test_schedule_fires_callback_at_delay(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(12.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [12.5]

    def test_callback_args_are_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.run()
        assert seen == [("x", 2)]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda: None)

    def test_infinite_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(2.0, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]


class TestOrdering:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_fire_fifo(self, sim):
        order = []
        for i in range(10):
            sim.schedule(5.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_events_scheduled_from_callbacks_run(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(5.0, lambda: order.append("last"))
        sim.run()
        assert order == ["first", "nested", "last"]

    def test_clock_never_goes_backwards(self, sim):
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0):
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_run_advances_clock_to_until_when_drained(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_back_to_back_runs_compose(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(8.0, lambda: fired.append("b"))
        sim.run(until=5.0)
        sim.run(until=10.0)
        assert fired == ["a", "b"]

    def test_run_until_past_rejected(self, sim):
        sim.run(until=10.0)
        with pytest.raises(SchedulingError):
            sim.run(until=5.0)

    def test_stop_exits_loop(self, sim):
        fired = []

        def stopper():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_caps_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_reentrant_run_rejected(self, sim):
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        event = sim.step()
        assert fired == [1]
        assert event is not None and event.time == 1.0

    def test_step_on_empty_heap_returns_none(self, sim):
        assert sim.step() is None

    def test_events_fired_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        assert handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_returns_false_after_firing(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert handle.fired
        assert not handle.cancel()

    def test_double_cancel_returns_false(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_reflects_lifecycle(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending

    def test_peek_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0

    def test_pending_count_excludes_cancelled(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        handles[0].cancel()
        handles[2].cancel()
        assert sim.pending_count == 2
