"""Engine batching: schedule_many, precomputed keys, heap compaction."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import COMPACTION_FLOOR, Simulator
from repro.sim.events import Event


class TestEventKey:
    def test_key_precomputed_at_construction(self):
        event = Event(time=4.0, seq=7, callback=lambda: None)
        assert event.key == (4.0, 7)
        assert event.sort_key() is event.key

    def test_key_survives_frozen_dataclass(self):
        event = Event(time=1.0, seq=0, callback=lambda: None)
        with pytest.raises(Exception):
            event.time = 2.0
        assert event.key == (1.0, 0)


class TestScheduleMany:
    def test_batch_fires_in_same_order_as_sequential(self):
        batched, sequential = [], []
        sim_a, sim_b = Simulator(), Simulator()
        entries = [(3.0, batched.append, (3,)), (1.0, batched.append, (1,)),
                   (2.0, batched.append, (2,)), (1.0, batched.append, (10,))]
        sim_a.schedule_many(entries)
        for delay, _cb, args in entries:
            sim_b.schedule(delay, sequential.append, *args)
        sim_a.run()
        sim_b.run()
        assert batched == sequential == [1, 10, 2, 3]

    def test_absolute_times(self):
        sim = Simulator(start_time=100.0)
        fired = []
        sim.schedule_many(
            [(150.0, fired.append, (1,)), (120.0, fired.append, (2,))],
            absolute=True,
        )
        sim.run()
        assert fired == [2, 1]
        assert sim.now == 150.0

    def test_interleaves_with_existing_heap(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "push")
        sim.schedule_many([(1.0, fired.append, ("early",)), (3.0, fired.append, ("late",))])
        sim.run()
        assert fired == ["early", "push", "late"]

    def test_returns_cancellable_handles_in_entry_order(self):
        sim = Simulator()
        fired = []
        handles = sim.schedule_many([(1.0, fired.append, (1,)), (2.0, fired.append, (2,))])
        assert [h.event.args for h in handles] == [(1,), (2,)]
        handles[0].cancel()
        sim.run()
        assert fired == [2]

    def test_pending_count_tracks_batch(self):
        sim = Simulator()
        sim.schedule_many([(float(i), lambda: None) for i in range(10)])
        assert sim.pending_count == 10

    def test_invalid_entry_leaves_heap_untouched(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule_many([(1.0, lambda: None), (-5.0, lambda: None)])
        assert sim.pending_count == 0
        assert sim.heap_depth == 0

    def test_empty_batch(self):
        sim = Simulator()
        assert sim.schedule_many([]) == []

    def test_past_absolute_time_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule_many([(5.0, lambda: None)], absolute=True)


class TestCompaction:
    def fill(self, sim, count, spacing=1.0):
        return sim.schedule_many(
            [(spacing * (i + 1), lambda: None) for i in range(count)]
        )

    def test_compaction_triggers_when_carcasses_outnumber_pending(self):
        sim = Simulator()
        handles = self.fill(sim, 2 * COMPACTION_FLOOR)
        for handle in handles[: COMPACTION_FLOOR + 1]:
            handle.cancel()
        assert sim.compactions == 1
        assert sim.heap_depth == sim.pending_count == COMPACTION_FLOOR - 1

    def test_heap_order_and_pending_count_survive_compaction(self):
        sim = Simulator()
        fired = []
        handles = sim.schedule_many(
            [(float(i + 1), fired.append, (i,)) for i in range(2 * COMPACTION_FLOOR)]
        )
        survivors = [i for i in range(2 * COMPACTION_FLOOR) if i % 3 == 0]
        for i, handle in enumerate(handles):
            if i % 3 != 0:
                handle.cancel()
        assert sim.compactions >= 1
        assert sim.pending_count == len(survivors)
        sim.run()
        assert fired == survivors
        assert sim.pending_count == 0

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        handles = self.fill(sim, COMPACTION_FLOOR - 2)
        for handle in handles:
            handle.cancel()
        assert sim.compactions == 0
        assert sim.heap_depth == COMPACTION_FLOOR - 2  # swept lazily instead

    def test_compaction_during_run_keeps_loop_coherent(self):
        sim = Simulator()
        fired = []
        late = sim.schedule_many(
            [(100.0 + i, fired.append, (f"late{i}",)) for i in range(2 * COMPACTION_FLOOR)]
        )

        def cancel_most():
            for handle in late[: COMPACTION_FLOOR + 10]:
                handle.cancel()
            fired.append("cancelled")

        sim.schedule(1.0, cancel_most)
        sim.run()
        assert sim.compactions >= 1
        assert fired[0] == "cancelled"
        assert fired[1:] == [f"late{i}" for i in range(COMPACTION_FLOOR + 10, 2 * COMPACTION_FLOOR)]

    def test_on_compaction_hook_fires(self):
        sim = Simulator()
        ticks = []
        sim.on_compaction = lambda: ticks.append(1)
        handles = self.fill(sim, 2 * COMPACTION_FLOOR)
        for handle in handles:
            handle.cancel()
        assert len(ticks) == sim.compactions >= 1
