"""Unit tests for the structured tracer."""

import json

from repro.sim.trace import (
    TraceEvent,
    Tracer,
    category_pad_width,
    register_category,
    registered_categories,
)


class TestRecording:
    def test_records_events_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a", "first")
        tracer.record(2.0, "b", "second", key="value")
        assert len(tracer) == 2
        events = tracer.events()
        assert events[0].message == "first"
        assert events[1].data == {"key": "value"}

    def test_disabled_tracer_drops_everything(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "a", "ignored")
        assert len(tracer) == 0

    def test_capacity_bound_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(float(i), "c", f"event-{i}")
        assert len(tracer) == 3
        assert tracer.dropped_count == 2
        assert [e.message for e in tracer.events()] == [
            "event-2",
            "event-3",
            "event-4",
        ]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "a", "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped_count == 0


class TestQueries:
    def test_category_prefix_filter(self):
        tracer = Tracer()
        tracer.record(1.0, "vra.decision", "a")
        tracer.record(2.0, "vra", "b")
        tracer.record(3.0, "vrawhatever", "c")
        tracer.record(4.0, "dma.pass", "d")
        assert [e.message for e in tracer.events("vra")] == ["a", "b"]
        assert [e.message for e in tracer.events("dma")] == ["d"]

    def test_between(self):
        tracer = Tracer()
        for t in (1.0, 2.0, 3.0, 4.0):
            tracer.record(t, "c", str(t))
        assert [e.message for e in tracer.between(2.0, 4.0)] == ["2.0", "3.0"]

    def test_categories_sorted_distinct(self):
        tracer = Tracer()
        tracer.record(1.0, "b", "x")
        tracer.record(2.0, "a", "y")
        tracer.record(3.0, "b", "z")
        assert tracer.categories() == ["a", "b"]

    def test_dump_and_format(self):
        tracer = Tracer()
        tracer.record(12.5, "vra.decision", "chose U4")
        dump = tracer.dump()
        assert "12.5s" in dump
        assert "vra.decision" in dump
        assert "chose U4" in dump

    def test_dump_limit(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record(float(i), "c", f"e{i}")
        assert tracer.dump(limit=2).splitlines() == [
            TraceEvent(3.0, "c", "e3", {}).format(),
            TraceEvent(4.0, "c", "e4", {}).format(),
        ]


class TestFormatPadding:
    def test_pad_width_covers_every_registered_category(self):
        # The historical bug: format() hard-coded an 18-char pad, which
        # "span.cluster.delivered" (22 chars) overflowed, breaking column
        # alignment.  The width now derives from the registered set.
        assert category_pad_width() == max(
            len(category) for category in registered_categories()
        )
        assert category_pad_width() >= len("span.cluster.delivered")

    def test_known_categories_align(self):
        short = TraceEvent(1.0, "dma.pass", "m", {}).format()
        long = TraceEvent(1.0, "span.cluster.delivered", "m", {}).format()
        assert short.index(" m") == long.index(" m")

    def test_unseen_category_registers_and_grows_the_pad(self):
        category = "x" * (category_pad_width() + 4)
        line = TraceEvent(1.0, category, "msg", {}).format()
        assert category in registered_categories()
        assert category_pad_width() >= len(category)
        # The event's own line never overflows its column.
        assert f"{category} msg" in line

    def test_register_category_is_idempotent(self):
        before = category_pad_width()
        register_category("dma.pass")
        register_category("dma.pass")
        assert category_pad_width() == before
        assert registered_categories().count("dma.pass") == 1


class TestJsonlExport:
    def test_to_jsonl_round_trips(self):
        tracer = Tracer()
        tracer.record(1.0, "vra.decision", "chose U4", chosen_uid="U4", cost=0.5)
        tracer.record(2.0, "dma.pass", "stored", evicted=("a", "b"))
        lines = tracer.to_jsonl().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows[0]["category"] == "vra.decision"
        assert rows[0]["data.chosen_uid"] == "U4"
        # Tuples coerced to lists so the export is valid JSON.
        assert rows[1]["data.evicted"] == ["a", "b"]

    def test_export_jsonl_counts_and_filters(self):
        import io

        tracer = Tracer()
        tracer.record(1.0, "vra.decision", "a")
        tracer.record(2.0, "dma.pass", "b")
        out = io.StringIO()
        assert tracer.export_jsonl(out, category="vra") == 1
        assert json.loads(out.getvalue())["category"] == "vra.decision"


class TestServiceIntegration:
    def test_service_emits_lifecycle_events(self, grnet_8am):
        from repro.core.service import ServiceConfig, VoDService
        from repro.sim.engine import Simulator
        from repro.storage.video import VideoTitle

        tracer = Tracer()
        sim = Simulator(start_time=8 * 3600.0)
        service = VoDService(
            sim,
            grnet_8am,
            ServiceConfig(cluster_mb=100.0, use_reported_stats=False),
            tracer=tracer,
        )
        service.seed_title("U4", VideoTitle("m", size_mb=200.0, duration_s=1200.0))
        service.request_by_home("U2", "m")
        sim.run(until=sim.now + 3600.0)
        categories = tracer.categories()
        assert "request.submitted" in categories
        assert "placement.pass" in categories
        # The legacy dma.pass alias only appears under the deprecated
        # DiskManipulationAlgorithm shim; the default policy stays clean.
        assert "dma.pass" not in categories
        assert "vra.decision" in categories
        assert "session.finished" in categories
        finished = tracer.events("session.finished")
        assert len(finished) == 1
        assert finished[0].data["status"] == "completed"

    def test_service_default_tracer_disabled(self, grnet_8am):
        from repro.core.service import ServiceConfig, VoDService
        from repro.sim.engine import Simulator
        from repro.storage.video import VideoTitle

        sim = Simulator(start_time=8 * 3600.0)
        service = VoDService(
            sim, grnet_8am, ServiceConfig(use_reported_stats=False)
        )
        service.seed_title("U4", VideoTitle("m", size_mb=200.0, duration_s=1200.0))
        service.request_by_home("U2", "m")
        sim.run(until=sim.now + 3600.0)
        assert len(service.tracer) == 0
