"""Unit tests for the Event record."""

from repro.sim.events import Event


class TestEvent:
    def test_sort_key_orders_by_time_then_seq(self):
        early = Event(time=1.0, seq=5, callback=lambda: None)
        late = Event(time=2.0, seq=1, callback=lambda: None)
        tied = Event(time=1.0, seq=6, callback=lambda: None)
        assert early.sort_key() < late.sort_key()
        assert early.sort_key() < tied.sort_key()

    def test_fire_invokes_callback_with_args(self):
        seen = []
        event = Event(time=0.0, seq=0, callback=seen.append, args=("x",))
        event.fire()
        assert seen == ["x"]

    def test_fire_returns_callback_result(self):
        event = Event(time=0.0, seq=0, callback=lambda a, b: a + b, args=(2, 3))
        assert event.fire() == 5

    def test_label_prefers_explicit_name(self):
        event = Event(time=0.0, seq=0, callback=lambda: None, name="snmp:tick")
        assert event.label() == "snmp:tick"

    def test_label_falls_back_to_callback_qualname(self):
        def my_callback():
            return None

        event = Event(time=0.0, seq=0, callback=my_callback)
        assert "my_callback" in event.label()

    def test_frozen(self):
        import pytest

        event = Event(time=0.0, seq=0, callback=lambda: None)
        with pytest.raises(AttributeError):
            event.time = 5.0  # type: ignore[misc]
