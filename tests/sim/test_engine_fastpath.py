"""The O(1) pending counter and the fused run loop of the simulator."""

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def heap_pending(sim: Simulator) -> int:
    """Reference count: scan the heap the way the old property did."""
    return sum(1 for _, handle in sim._heap if handle.pending)


class TestLivePendingCounter:
    def test_counter_tracks_schedule_cancel_fire(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_count == 5 == heap_pending(sim)
        handles[1].cancel()
        handles[3].cancel()
        assert sim.pending_count == 3 == heap_pending(sim)
        sim.step()
        assert sim.pending_count == 2 == heap_pending(sim)
        sim.run()
        assert sim.pending_count == 0 == heap_pending(sim)

    def test_double_cancel_decrements_once(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()
        assert sim.pending_count == 0

    def test_cancel_after_fire_does_not_decrement(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        assert not handle.cancel()
        assert sim.pending_count == 1

    def test_counter_survives_reschedule_from_callback(self, sim):
        def chain(depth):
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(1.0, chain, 3)
        sim.run()
        assert sim.pending_count == 0 == heap_pending(sim)
        assert sim.events_fired == 4


class TestFusedRunLoop:
    def test_run_skips_cancelled_events(self, sim):
        fired = []
        keep = [sim.schedule(float(i), fired.append, i) for i in range(1, 6)]
        keep[0].cancel()
        keep[3].cancel()
        sim.run()
        assert fired == [2, 3, 5]

    def test_until_boundary_inclusive_and_clock_advances(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.schedule(3.0, fired.append, 3)
        end = sim.run(until=2.0)
        assert fired == [1, 2]
        assert end == 2.0
        end = sim.run(until=10.0)
        assert fired == [1, 2, 3]
        assert end == 10.0  # clock advanced past the drained heap

    def test_max_events_counts_only_fired(self, sim):
        fired = []
        cancelled = sim.schedule(0.5, fired.append, 0)
        for i in range(1, 5):
            sim.schedule(float(i), fired.append, i)
        cancelled.cancel()
        sim.run(max_events=2)
        assert fired == [1, 2]

    def test_stop_from_callback_halts_loop(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, 3)
        sim.run()
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending_count == 1

    def test_events_scheduled_during_run_fire_in_order(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(0.5, lambda: fired.append("inserted"))

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "inserted", "second"]
