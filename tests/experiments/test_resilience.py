"""Resilience experiment: bit-for-bit replay and retry-driven recovery."""

import pytest

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.experiments.resilience import (
    render_resilience_report,
    run_resilience_experiment,
)
from repro.faults import FaultInjector, FaultSchedule, ServerCrash
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def session_fingerprint(service):
    """Everything observable about a run's sessions, deterministically."""
    return [
        (
            r.request.client_id,
            r.request.title_id,
            r.request.status.value,
            r.retry_count,
            r.retry_wait_s,
            r.recovered,
            tuple(r.servers_used),
            len(r.clusters),
            r.startup_delay_s,
            r.stall_s,
        )
        for r in service.sessions
    ]


class TestReplay:
    def test_same_seed_replays_bit_for_bit(self):
        kwargs = dict(
            seed=13,
            duration_s=1800.0,
            requests_per_node=4,
            link_flap_rate_per_h=6.0,
            link_degrade_rate_per_h=6.0,
            server_crash_rate_per_h=4.0,
            disk_failure_rate_per_h=2.0,
            snmp_blackout_rate_per_h=2.0,
            mean_fault_duration_s=180.0,
        )
        first = run_resilience_experiment(**kwargs)
        second = run_resilience_experiment(**kwargs)
        # Identical reports (counts, availability, MTTR, session metrics)...
        assert first.report == second.report
        # ...identical fault timelines and injection counters...
        assert first.schedule == second.schedule
        assert first.injector.log == second.injector.log
        assert first.injector.report() == second.injector.report()
        # ...and identical per-session records.
        assert session_fingerprint(first.service) == session_fingerprint(
            second.service
        )

    def test_different_seed_differs(self):
        kwargs = dict(duration_s=1800.0, requests_per_node=4)
        a = run_resilience_experiment(seed=13, **kwargs)
        b = run_resilience_experiment(seed=14, **kwargs)
        assert a.schedule != b.schedule

    def test_report_counts_are_consistent(self):
        run = run_resilience_experiment(
            seed=13, duration_s=1800.0, requests_per_node=4
        )
        report = run.report
        assert report.session_count >= report.completed_count + report.failed_count
        assert 0.0 <= report.availability <= 1.0
        assert report.faults_scheduled == len(run.schedule)
        assert sum(report.faults_injected.values()) <= report.faults_scheduled
        # Everything injected recovered: the sim drains past the horizon.
        assert report.faults_injected == report.faults_recovered
        rendered = render_resilience_report(report)
        assert "availability" in rendered
        assert f"seed {report.seed}" in rendered

    def test_as_dict_is_json_shaped(self):
        import json

        run = run_resilience_experiment(
            seed=13, duration_s=900.0, requests_per_node=2
        )
        payload = json.loads(json.dumps(run.report.as_dict()))
        assert payload["seed"] == 13
        assert set(payload["faults_injected"]) == set(
            run.report.faults_injected
        )


class TestCrashRecovery:
    def make_service(self, **overrides):
        defaults = dict(
            cluster_mb=50.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            snmp_period_s=60.0,
            use_reported_stats=False,
            retry_attempts=6,
            retry_backoff_s=60.0,
        )
        defaults.update(overrides)
        sim = Simulator()
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        return VoDService(sim, topology, ServiceConfig(**defaults))

    def test_session_survives_crash_of_every_source(self):
        """The acceptance scenario: the only holder crashes mid-stream;
        retry/backoff rides out the outage and the session completes."""
        service = self.make_service()
        service.seed_title("U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        injector = FaultInjector(
            service,
            FaultSchedule.scripted(ServerCrash(600.0, 400.0, server_uid="U4")),
        )
        request, session, _ = service.request_by_home("U2", "m1")
        injector.start()
        service.sim.run(until=6 * 3600.0)

        record = session.record
        assert request.status is RequestStatus.COMPLETED
        assert record.retry_count > 0
        assert record.retry_wait_s > 0.0
        assert record.recovered
        assert injector.mean_mttr_s == pytest.approx(400.0)
        assert service.flows.active_count == 0

    def test_without_retry_same_crash_fails_the_session(self):
        """Control: the paper's fail-fast default dies where retry survives."""
        service = self.make_service(retry_attempts=0)
        service.seed_title("U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        injector = FaultInjector(
            service,
            FaultSchedule.scripted(ServerCrash(600.0, 400.0, server_uid="U4")),
        )
        request, session, _ = service.request_by_home("U2", "m1")
        injector.start()
        service.sim.run(until=6 * 3600.0)
        assert request.status is RequestStatus.FAILED
        assert session.record.retry_count == 0
        assert not session.record.recovered

    def test_exhausted_retry_budget_fails(self):
        """An outage longer than the whole backoff ladder still fails."""
        service = self.make_service(retry_attempts=2, retry_backoff_s=10.0)
        service.seed_title("U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        injector = FaultInjector(
            service,
            # Down for far longer than 10 + 20 s of backoff.
            FaultSchedule.scripted(ServerCrash(600.0, 7_200.0, server_uid="U4")),
        )
        request, session, _ = service.request_by_home("U2", "m1")
        injector.start()
        service.sim.run(until=12 * 3600.0)
        assert request.status is RequestStatus.FAILED
        assert session.record.retry_count == 2
        assert not session.record.recovered


class TestRetryDeadline:
    """``RetryPolicy.deadline_s``: a total-backoff cap across boundaries."""

    def make_service(self, **overrides):
        defaults = dict(
            cluster_mb=50.0,
            use_reported_stats=False,
            retry_attempts=10,
            retry_backoff_s=60.0,
        )
        defaults.update(overrides)
        sim = Simulator()
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        return VoDService(sim, topology, ServiceConfig(**defaults))

    def crashed_session(self, **overrides):
        service = self.make_service(**overrides)
        service.seed_title("U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        injector = FaultInjector(
            service,
            # Down far longer than any deadline under test.
            FaultSchedule.scripted(ServerCrash(600.0, 7_200.0, server_uid="U4")),
        )
        request, session, _ = service.request_by_home("U2", "m1")
        injector.start()
        service.sim.run(until=12 * 3600.0)
        return request, session

    def test_deadline_caps_total_backoff(self):
        request, session = self.crashed_session(retry_deadline_s=90.0)
        # The ladder would wait 60 + 120 + ...; the budget clips the
        # second wait to 30 s and the third retry fails with no slack
        # left — long before the 10-attempt budget is spent.
        assert request.status is RequestStatus.FAILED
        assert session.record.retry_count == 2
        assert session.record.retry_wait_s == pytest.approx(90.0)

    def test_no_deadline_matches_a_non_binding_one(self):
        """``deadline_s=None`` must be bit-identical to an unreachable cap."""

        def run(deadline):
            service = self.make_service(
                retry_attempts=6, retry_deadline_s=deadline
            )
            service.seed_title(
                "U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0)
            )
            injector = FaultInjector(
                service,
                FaultSchedule.scripted(ServerCrash(600.0, 400.0, server_uid="U4")),
            )
            request, _, _ = service.request_by_home("U2", "m1")
            injector.start()
            service.sim.run(until=6 * 3600.0)
            assert request.status is RequestStatus.COMPLETED
            return session_fingerprint(service)

        assert run(None) == run(1e9)

    def test_deadline_validation(self):
        from repro.core.session import RetryPolicy
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RetryPolicy(attempts=1, deadline_s=0.0)
        with pytest.raises(ReproError):
            RetryPolicy(attempts=1, deadline_s=-5.0)


class TestRequeue:
    def test_strict_qos_rejection_requeues_and_admits_after_recovery(self):
        """Admission storms re-queue instead of dropping: a request arriving
        while every path is saturated is admitted on a later attempt."""
        sim = Simulator()
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        service = VoDService(
            sim,
            topology,
            ServiceConfig(
                cluster_mb=50.0,
                disk_count=2,
                disk_capacity_mb=1_000.0,
                use_reported_stats=False,
                strict_qos_admission=True,
                requeue_attempts=5,
                requeue_delay_s=120.0,
            ),
        )
        service.seed_title("U4", VideoTitle("m1", size_mb=150.0, duration_s=900.0))
        # Saturate everything so admission rejects...
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)
        request, session, _ = service.request_by_home("U2", "m1")
        # ...then clear the congestion before the budget runs out.
        sim.schedule(300.0, lambda: [
            link.set_background_mbps(0.0) for link in service.topology.links()
        ])
        sim.run(until=24 * 3600.0)
        assert request.status is RequestStatus.COMPLETED

    def test_requeue_budget_exhaustion_blocks(self):
        sim = Simulator()
        topology = build_grnet_topology()
        service = VoDService(
            sim,
            topology,
            ServiceConfig(
                cluster_mb=50.0,
                disk_count=2,
                disk_capacity_mb=1_000.0,
                use_reported_stats=False,
                strict_qos_admission=True,
                requeue_attempts=2,
                requeue_delay_s=60.0,
            ),
        )
        service.seed_title("U4", VideoTitle("m1", size_mb=150.0, duration_s=900.0))
        for link in service.topology.links():
            link.set_background_mbps(link.capacity_mbps)  # never clears
        request, _, _ = service.request_by_home("U2", "m1")
        sim.run(until=24 * 3600.0)
        assert request.status is RequestStatus.FAILED
        assert request.failure_reason.startswith("qos-blocked")
