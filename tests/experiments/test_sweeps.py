"""Unit tests for the packaged better-source-appears scenario."""

import pytest

from repro.baselines.switching import NeverSwitch
from repro.experiments.sweeps import (
    DEFAULT_SWEEP_CLUSTERS_MB,
    SWITCHING_TITLE,
    better_source_sweep,
    run_better_source_scenario,
)


class TestScenario:
    def test_paper_policy_escapes_to_athens(self):
        record = run_better_source_scenario(cluster_mb=100.0)
        assert record.completed
        assert record.servers_used == ["U4", "U1"]
        assert record.switch_count == 1

    def test_frozen_policy_stays_on_poisoned_route(self):
        record = run_better_source_scenario(cluster_mb=100.0, decide_wrapper=NeverSwitch)
        assert record.completed
        assert record.servers_used == ["U4"]
        assert record.switch_count == 0

    def test_poison_timing_parameter(self):
        # Poison after the whole download: nothing to escape from.
        record = run_better_source_scenario(
            cluster_mb=100.0, poison_at_s=9_000.0
        )
        assert record.switch_count == 0
        duration = record.completed_at - record.request.submitted_at
        assert duration == pytest.approx(SWITCHING_TITLE.duration_s, rel=0.01)

    def test_sweep_covers_default_grid(self):
        results = dict(better_source_sweep())
        assert set(results) == set(DEFAULT_SWEEP_CLUSTERS_MB)
        for record in results.values():
            assert record.completed

    def test_sweep_accepts_custom_grid(self):
        results = dict(better_source_sweep([150.0]))
        assert list(results) == [150.0]
        assert len(results[150.0].clusters) == 10
