"""Unit tests for the packaged better-source-appears scenario."""

import os

import pytest

from repro.baselines.switching import NeverSwitch
from repro.experiments.sweeps import (
    DEFAULT_SWEEP_CLUSTERS_MB,
    SWITCHING_TITLE,
    better_source_sweep,
    resolve_jobs,
    run_better_source_scenario,
)


class TestScenario:
    def test_paper_policy_escapes_to_athens(self):
        record = run_better_source_scenario(cluster_mb=100.0)
        assert record.completed
        assert record.servers_used == ["U4", "U1"]
        assert record.switch_count == 1

    def test_frozen_policy_stays_on_poisoned_route(self):
        record = run_better_source_scenario(cluster_mb=100.0, decide_wrapper=NeverSwitch)
        assert record.completed
        assert record.servers_used == ["U4"]
        assert record.switch_count == 0

    def test_poison_timing_parameter(self):
        # Poison after the whole download: nothing to escape from.
        record = run_better_source_scenario(
            cluster_mb=100.0, poison_at_s=9_000.0
        )
        assert record.switch_count == 0
        duration = record.completed_at - record.request.submitted_at
        assert duration == pytest.approx(SWITCHING_TITLE.duration_s, rel=0.01)

    def test_sweep_covers_default_grid(self):
        results = dict(better_source_sweep())
        assert set(results) == set(DEFAULT_SWEEP_CLUSTERS_MB)
        for record in results.values():
            assert record.completed

    def test_sweep_accepts_custom_grid(self):
        results = dict(better_source_sweep([150.0]))
        assert list(results) == [150.0]
        assert len(results[150.0].clusters) == 10


def record_fingerprint(record):
    """Every report-visible value of a session record.

    Request ids are process-local counters, so raw records from worker
    processes are not comparable object-for-object; everything a report
    derives from them is.
    """
    return (
        record.completed,
        record.servers_used,
        record.switch_count,
        record.completed_at - record.request.submitted_at,
        record.stall_s,
        [(c.index, c.server_uid, c.path_nodes) for c in record.clusters],
    )


class TestParallelSweep:
    def test_resolve_jobs_defaults_and_floors(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1
        assert resolve_jobs(3) == 3

    def test_parallel_sweep_is_identical_to_serial(self):
        sizes = [100.0, 250.0]
        serial = list(better_source_sweep(sizes, jobs=1))
        parallel = list(better_source_sweep(sizes, jobs=2))
        assert [c for c, _ in parallel] == [c for c, _ in serial] == sizes
        for (_, srec), (_, prec) in zip(serial, parallel):
            assert record_fingerprint(prec) == record_fingerprint(srec)

    def test_worker_count_is_capped_by_sweep_points(self):
        # More jobs than points must still return everything, in order.
        results = list(better_source_sweep([100.0], jobs=8))
        assert [c for c, _ in results] == [100.0]
        assert results[0][1].completed
