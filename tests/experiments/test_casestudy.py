"""Unit tests for the case-study reproduction (Tables 2-5, Experiments A-D).

These are the golden-value tests: they pin the recomputed numbers both to
hand-checked exact arithmetic and to the paper's printed values (within
the paper's own rounding), and they pin the experiment decisions.
"""

import pytest

from repro.experiments.casestudy import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    compute_table2_utilization_percent,
    compute_table3_lvn,
    run_all_experiments,
    run_experiment,
    table2_deltas,
    table3_deltas,
    topology_at,
)


class TestTable2:
    def test_all_cells_match_paper_within_rounding(self):
        for delta in table2_deltas():
            assert abs(delta.delta) < 0.15, (
                delta.link_name,
                delta.time_label,
                delta.computed,
                delta.printed,
            )

    def test_known_exact_cells(self):
        table = compute_table2_utilization_percent()
        assert table["Patra-Athens"]["8am"] == pytest.approx(10.0)
        assert table["Patra-Athens"]["10am"] == pytest.approx(91.0)
        assert table["Thessaloniki-Xanthi"]["4pm"] == pytest.approx(37.5)
        assert table["Xanthi-Heraklio"]["8am"] == pytest.approx(0.005)

    def test_paper_rounded_cells_flagged_small(self):
        # Thessaloniki-Athens 10am: exact 38.888..., paper prints 38.8.
        table = compute_table2_utilization_percent()
        assert table["Thessaloniki-Athens"]["10am"] == pytest.approx(700.0 / 18.0)


class TestTable3:
    def test_all_cells_within_paper_rounding(self):
        for delta in table3_deltas():
            assert abs(delta.delta) < 0.012, (
                delta.link_name,
                delta.time_label,
                delta.computed,
                delta.printed,
            )

    def test_hand_computed_8am_column(self):
        table = compute_table3_lvn()
        # Exact arithmetic over Table 2 (verified by hand; DESIGN.md §5).
        assert table["Patra-Athens"]["8am"] == pytest.approx(0.083158, abs=1e-5)
        assert table["Patra-Ioannina"]["8am"] == pytest.approx(0.075035, abs=1e-5)
        assert table["Thessaloniki-Athens"]["8am"] == pytest.approx(0.282727, abs=1e-5)
        assert table["Thessaloniki-Xanthi"]["8am"] == pytest.approx(0.168025, abs=1e-5)
        assert table["Thessaloniki-Ioannina"]["8am"] == pytest.approx(0.142727, abs=1e-5)
        assert table["Athens-Heraklio"]["8am"] == pytest.approx(0.113158, abs=1e-5)
        assert table["Xanthi-Heraklio"]["8am"] == pytest.approx(0.120035, abs=1e-5)

    def test_known_inconsistently_rounded_cell(self):
        # DESIGN.md erratum 2: paper prints 0.450017 where exact arithmetic
        # gives 0.455017.
        table = compute_table3_lvn()
        assert table["Patra-Ioannina"]["10am"] == pytest.approx(0.455059, abs=1e-4)

    def test_normalization_constant_propagates(self):
        default = compute_table3_lvn()
        scaled = compute_table3_lvn(normalization_constant=5.0)
        assert scaled["Patra-Athens"]["8am"] > default["Patra-Athens"]["8am"]


class TestExperimentA:
    def test_corrected_decision_is_thessaloniki(self):
        outcome = run_experiment("A")
        assert outcome.chosen_uid == "U4"
        assert outcome.matches_corrected
        assert not outcome.matches_printed  # the documented erratum

    def test_corrected_path_goes_through_ioannina(self):
        outcome = run_experiment("A")
        assert outcome.candidate_paths["U4"] == ("U2", "U3", "U4")
        assert outcome.candidate_costs["U4"] == pytest.approx(0.2178, abs=1e-3)

    def test_xanthi_path_matches_paper(self):
        # The U5 row of Table 4 is correct in the paper.
        outcome = run_experiment("A")
        assert outcome.candidate_paths["U5"] == ("U2", "U1", "U6", "U5")
        assert outcome.candidate_costs["U5"] == pytest.approx(0.315, abs=2e-3)


class TestExperimentB:
    def test_decision_matches_paper(self):
        outcome = run_experiment("B")
        assert outcome.chosen_uid == "U4"
        assert outcome.matches_printed and outcome.matches_corrected

    def test_paths_match_table5(self):
        outcome = run_experiment("B")
        assert outcome.candidate_paths["U4"] == ("U2", "U3", "U4")
        assert outcome.candidate_paths["U5"] == ("U2", "U1", "U6", "U5")
        assert outcome.candidate_costs["U4"] == pytest.approx(1.007, abs=6e-3)
        assert outcome.candidate_costs["U5"] == pytest.approx(1.308, abs=8e-3)


class TestExperimentsCD:
    @pytest.mark.parametrize("exp_id", ["C", "D"])
    def test_decision_is_ioannina(self, exp_id):
        outcome = run_experiment(exp_id)
        assert outcome.chosen_uid == "U3"
        assert outcome.matches_printed

    def test_c_costs_match_paper(self):
        outcome = run_experiment("C")
        assert outcome.candidate_paths["U3"] == ("U1", "U2", "U3")
        assert outcome.candidate_costs["U3"] == pytest.approx(1.222, abs=3e-3)
        assert outcome.candidate_costs["U4"] == pytest.approx(1.5433, abs=3e-3)
        assert outcome.candidate_costs["U5"] == pytest.approx(1.274, abs=3e-3)

    def test_d_costs_match_paper(self):
        outcome = run_experiment("D")
        assert outcome.candidate_costs["U3"] == pytest.approx(1.236, abs=3e-3)
        assert outcome.candidate_costs["U4"] == pytest.approx(1.4824, abs=3e-3)
        assert outcome.candidate_costs["U5"] == pytest.approx(1.3574, abs=3e-3)


class TestHarnessPlumbing:
    def test_run_all_returns_four(self):
        outcomes = run_all_experiments()
        assert sorted(outcomes) == ["A", "B", "C", "D"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("Z")

    def test_trace_recorded_by_default(self):
        outcome = run_experiment("B")
        steps = outcome.decision.dijkstra_result.steps
        assert len(steps) == 6
        assert steps[0].settled == ("U2",)

    def test_trace_disabled(self):
        outcome = run_experiment("B", trace=False)
        assert outcome.decision.dijkstra_result.steps == []

    def test_topology_at_loads_sample(self):
        topology = topology_at("4pm")
        assert topology.link_named("Patra-Athens").used_mbps == pytest.approx(1.82)

    def test_expectations_exist_for_every_experiment(self):
        assert set(PAPER_EXPERIMENTS) == set(EXPERIMENTS)


class TestDijkstraTraceAgainstTable5:
    """Row-level checks of the Experiment B trace against the paper."""

    def test_step1_tentative_distances(self):
        steps = run_experiment("B").decision.dijkstra_result.steps
        first = steps[0]
        assert first.distances["U3"] == pytest.approx(0.455, abs=6e-3)
        assert first.distances["U1"] == pytest.approx(0.632, abs=6e-3)
        assert "U4" not in first.distances  # "R" in the paper
        assert "U5" not in first.distances
        assert "U6" not in first.distances

    def test_settlement_order_matches_table5(self):
        steps = run_experiment("B").decision.dijkstra_result.steps
        assert steps[-1].settled == ("U2", "U3", "U1", "U4", "U6", "U5")

    def test_final_paths_match_table5(self):
        final = run_experiment("B").decision.dijkstra_result.steps[-1]
        assert final.paths["U4"] == ("U2", "U3", "U4")
        assert final.paths["U5"] == ("U2", "U1", "U6", "U5")
        assert final.paths["U6"] == ("U2", "U1", "U6")
