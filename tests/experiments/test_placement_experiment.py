"""The placement-policy comparison experiment and its replay gates."""

import pytest

from repro.errors import ReproError
from repro.experiments.placement import (
    PlacementComparison,
    render_placement_comparison,
    run_placement_experiment,
    session_fingerprint,
)


@pytest.fixture(scope="module")
def comparison() -> PlacementComparison:
    # Small but real: all three policies plus both equivalence gates.
    return run_placement_experiment(
        requests_per_node=4, catalog_size=6, check=True
    )


class TestComparison:
    def test_covers_all_three_policies(self, comparison):
        assert [o.kind for o in comparison.outcomes] == ["dma", "prefix", "partial"]

    def test_every_policy_served_sessions(self, comparison):
        for outcome in comparison.outcomes:
            assert outcome.passes > 0
            assert outcome.metrics.session_count > 0
            assert 0.0 <= outcome.hit_rate <= outcome.any_hit_rate <= 1.0

    def test_fractional_policies_cut_segments(self, comparison):
        assert comparison.outcome_for("prefix").prefix_stores > 0
        assert comparison.outcome_for("dma").prefix_stores == 0

    def test_gates_pass(self, comparison):
        assert comparison.deterministic is True
        assert comparison.shim_equivalent is True
        assert comparison.gates_passed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            run_placement_experiment(kinds=("mru",))

    def test_check_requires_dma(self):
        with pytest.raises(ReproError):
            run_placement_experiment(kinds=("prefix",), check=True)

    def test_outcome_for_unknown_kind_raises(self, comparison):
        with pytest.raises(ReproError):
            comparison.outcome_for("lru")


class TestRendering:
    def test_table_lists_policies_and_gates(self, comparison):
        text = render_placement_comparison(comparison)
        for needle in (
            "Placement-policy comparison",
            "dma",
            "prefix",
            "partial",
            "Hit rate",
            "replay determinism (dma rerun): PASS",
            "dma-policy equivalence (legacy shim): PASS",
        ):
            assert needle in text

    def test_gate_lines_absent_without_check(self):
        unchecked = run_placement_experiment(
            requests_per_node=2, catalog_size=4, kinds=("dma",)
        )
        text = render_placement_comparison(unchecked)
        assert "replay determinism" not in text
        assert unchecked.deterministic is None
        assert unchecked.gates_passed  # vacuously


class TestFingerprint:
    def test_fingerprint_is_stable_and_sensitive(self):
        from repro.client.requests import VideoRequest
        from repro.core.session import SessionRecord

        def record(startup: float) -> SessionRecord:
            return SessionRecord(
                request=VideoRequest(
                    client_id="c1",
                    home_uid="U2",
                    title_id="m",
                    submitted_at=0.0,
                ),
                startup_delay_s=startup,
            )

        assert session_fingerprint([record(1.0)]) == session_fingerprint(
            [record(1.0)]
        )
        assert session_fingerprint([record(1.0)]) != session_fingerprint(
            [record(2.0)]
        )

    def test_outcomes_carry_fingerprints(self, comparison):
        prints = {o.fingerprint for o in comparison.outcomes}
        assert all(len(p) == 64 for p in prints)
        # Different policies produce different session histories.
        assert len(prints) == 3
