"""Unit tests for the ASCII report rendering."""

from repro.experiments.casestudy import run_experiment
from repro.experiments.report import (
    render_dijkstra_trace,
    render_experiment,
    render_table,
    render_table2,
    render_table3,
    render_timeline,
)
from repro.metrics.timeseries import TimeSeries


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # equal widths

    def test_title_prepended(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"


class TestPaperTables:
    def test_table2_mentions_every_link(self):
        text = render_table2()
        for name in (
            "Patra-Athens",
            "Patra-Ioannina",
            "Thessaloniki-Athens",
            "Thessaloniki-Xanthi",
            "Thessaloniki-Ioannina",
            "Athens-Heraklio",
            "Xanthi-Heraklio",
        ):
            assert name in text

    def test_table3_shows_ours_and_paper_values(self):
        text = render_table3()
        assert "0.0832 / 0.0830" in text  # Patra-Athens @8am
        assert "Link Validation Numbers" in text

    def test_dijkstra_trace_layout(self):
        outcome = run_experiment("B")
        text = render_dijkstra_trace(
            outcome.decision.dijkstra_result.steps,
            destinations=["U3", "U1", "U4", "U5", "U6"],
            title="Table 5",
        )
        assert "Table 5" in text
        assert "{U2}" in text  # step-1 settled set
        assert "R" in text  # unreached marker
        assert "U2,U1,U6,U5" in text

    def test_experiment_report_includes_decision_and_erratum(self):
        text = render_experiment(run_experiment("A"))
        assert "download from U4" in text
        assert "paper printed U5" in text
        assert "Erratum" in text

    def test_experiment_report_without_erratum(self):
        text = render_experiment(run_experiment("C"))
        assert "download from U3" in text
        assert "Erratum" not in text


class TestRenderTimeline:
    @staticmethod
    def series(values, start=0.0, step=10.0):
        ts = TimeSeries("s")
        for i, v in enumerate(values):
            ts.record(start + i * step, v)
        return ts

    def test_rows_labeled_and_annotated(self):
        text = render_timeline(
            [
                ("Patra-Athens", self.series([0.0, 0.5, 1.0])),
                ("Xanthi", self.series([0.25, 0.25])),
            ],
            title="util",
            width=12,
        )
        lines = text.splitlines()
        assert lines[0] == "util"
        assert lines[1].startswith("Patra-Athens |")
        assert "peak 1" in lines[1]
        assert "peak 0.25" in lines[2]
        assert "t = 0 .. 20 s" in lines[3]

    def test_peak_preserving_resample(self):
        # One short spike in a long flat series must survive downsampling.
        values = [0.0] * 50 + [1.0] + [0.0] * 49
        text = render_timeline([("spiky", self.series(values))], width=10)
        assert "█" in text.splitlines()[0]

    def test_empty_and_all_empty(self):
        assert "(no samples)" in render_timeline([("a", TimeSeries())])
        mixed = render_timeline(
            [("empty", TimeSeries()), ("full", self.series([1.0]))]
        )
        assert "empty" not in mixed
        assert "full" in mixed
