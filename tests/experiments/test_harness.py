"""Unit tests for the service-level experiment runner."""

import pytest

from repro.core.service import ServiceConfig
from repro.errors import ReproError
from repro.experiments.harness import (
    ServiceExperiment,
    build_service,
    run_service_experiment,
    run_service_experiments,
)
from repro.workload.scenarios import regional_scenario

GRNET_NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def small_scenario(**overrides):
    defaults = dict(
        home_uids=GRNET_NODES,
        catalog_size=6,
        requests_per_node=3,
        horizon_s=1800.0,
        seed=11,
    )
    defaults.update(overrides)
    return regional_scenario(**defaults)


def small_config(**overrides):
    # Disks sized so one server can hold the whole 6-title catalog: the
    # DMA must never evict a title's last network-wide copy in these tests
    # (that hazard gets its own integration test).
    defaults = dict(
        cluster_mb=100.0,
        disk_count=4,
        disk_capacity_mb=5_000.0,
        snmp_period_s=120.0,
        use_reported_stats=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestBuildService:
    def test_titles_seeded_round_robin(self):
        experiment = ServiceExperiment(
            name="t", scenario=small_scenario(), config=small_config()
        )
        service = build_service(experiment)
        for index, title in enumerate(experiment.scenario.catalog):
            origin = GRNET_NODES[index % len(GRNET_NODES)]
            assert origin in service.database.servers_with_title(title.title_id)

    def test_custom_origins(self):
        experiment = ServiceExperiment(
            name="t",
            scenario=small_scenario(),
            config=small_config(),
            seed_origin_uids=["U1"],
        )
        service = build_service(experiment)
        for title in experiment.scenario.catalog:
            assert service.database.servers_with_title(title.title_id) == ["U1"]

    def test_selection_policies_applied(self):
        from repro.baselines.selection import MinHopSelection, RandomSelection

        for key, kind in [("minhop", MinHopSelection), ("random", RandomSelection)]:
            experiment = ServiceExperiment(
                name="t", scenario=small_scenario(), config=small_config(), selection=key
            )
            assert isinstance(build_service(experiment).vra, kind)

    def test_origin_selection_policy(self):
        from repro.baselines.selection import HomeOnlySelection

        experiment = ServiceExperiment(
            name="t",
            scenario=small_scenario(),
            config=small_config(),
            selection="origin:U1",
            seed_origin_uids=["U1"],
        )
        service = build_service(experiment)
        assert isinstance(service.vra, HomeOnlySelection)
        assert service.vra.origin_uid == "U1"

    def test_cache_policies_applied(self):
        from repro.baselines.caching import NoCachePolicy

        experiment = ServiceExperiment(
            name="t", scenario=small_scenario(), config=small_config(), cache="nocache"
        )
        service = build_service(experiment)
        assert all(
            isinstance(server.dma, NoCachePolicy) for server in service.servers.values()
        )

    def test_greedy_dma_variant(self):
        experiment = ServiceExperiment(
            name="t", scenario=small_scenario(), config=small_config(), cache="dma-greedy"
        )
        service = build_service(experiment)
        assert all(server.dma.evict_until_fits for server in service.servers.values())

    def test_switching_policies_applied(self):
        experiment = ServiceExperiment(
            name="t", scenario=small_scenario(), config=small_config(), switching="never"
        )
        assert build_service(experiment).decide_wrapper is not None

    def test_unknown_policies_rejected(self):
        for kwargs in (
            {"selection": "bogus"},
            {"cache": "bogus"},
            {"switching": "bogus"},
        ):
            experiment = ServiceExperiment(
                name="t", scenario=small_scenario(), config=small_config(), **kwargs
            )
            with pytest.raises(ReproError):
                build_service(experiment)


class TestRunExperiment:
    def test_end_to_end_run_completes_sessions(self):
        experiment = ServiceExperiment(
            name="t", scenario=small_scenario(), config=small_config()
        )
        result = run_service_experiment(experiment)
        assert result.metrics.session_count == len(experiment.scenario.events)
        assert result.metrics.completed_count > 0
        assert result.metrics.failed_count == 0

    def test_table2_replay_loads_background(self):
        experiment = ServiceExperiment(
            name="t",
            scenario=small_scenario(),
            config=small_config(),
            replay_table2=True,
            start_time=8 * 3600.0,
        )
        result = run_service_experiment(experiment)
        link = result.service.topology.link_named("Thessaloniki-Athens")
        assert link.background_mbps > 0.0

    def test_deterministic_given_seeds(self):
        def run():
            experiment = ServiceExperiment(
                name="t", scenario=small_scenario(), config=small_config()
            )
            return run_service_experiment(experiment).metrics

        first, second = run(), run()
        assert first == second

    def test_run_until_override(self):
        experiment = ServiceExperiment(
            name="t",
            scenario=small_scenario(),
            config=small_config(),
            run_until=1.0,
        )
        result = run_service_experiment(experiment)
        assert result.metrics.completed_count == 0


class TestParallelBatch:
    def _experiments(self):
        return [
            ServiceExperiment(
                name=f"batch-{seed}",
                scenario=small_scenario(seed=seed),
                config=small_config(),
            )
            for seed in (11, 17)
        ]

    def test_parallel_batch_matches_serial(self):
        serial = run_service_experiments(self._experiments(), jobs=1)
        parallel = run_service_experiments(self._experiments(), jobs=2)
        assert parallel == serial
        assert len(parallel) == 2
        assert all(m.completed_count > 0 for m in parallel)

    def test_order_follows_input_not_completion(self):
        metrics = run_service_experiments(self._experiments(), jobs=2)
        expected = [run_service_experiment(e).metrics for e in self._experiments()]
        assert metrics == expected
