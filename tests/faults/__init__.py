"""Fault-injection subsystem tests."""
