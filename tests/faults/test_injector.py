"""FaultInjector: application, recovery, nesting, and bookkeeping."""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.errors import FaultInjectionError
from repro.faults import (
    DiskFailure,
    FaultInjector,
    FaultSchedule,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    SnmpBlackout,
)
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**config_overrides):
    defaults = dict(
        cluster_mb=50.0,
        disk_count=2,
        disk_capacity_mb=1_000.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(config_overrides)
    sim = Simulator()
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def run_with(service, *events, until=10_000.0):
    injector = FaultInjector(service, FaultSchedule.scripted(*events))
    injector.start()
    service.sim.run(until=until)
    return injector


class TestLinkFaults:
    def test_flap_applies_and_recovers(self):
        service = make_service()
        link = service.topology.link_named("Patra-Ioannina")
        injector = FaultInjector(
            service, FaultSchedule.scripted(LinkFlap(100.0, 50.0, link_name=link.name))
        )
        injector.start()
        service.sim.run(until=120.0)
        assert link.online is False
        assert injector.active_faults == 1
        service.sim.run(until=200.0)
        assert link.online is True
        assert injector.active_faults == 0
        assert injector.injected_by_kind["link-flap"] == 1
        assert injector.recovered_by_kind["link-flap"] == 1

    def test_overlapping_flaps_nest(self):
        service = make_service()
        link = service.topology.link_named("Patra-Ioannina")
        versions = link.state_version
        run_with(
            service,
            LinkFlap(100.0, 200.0, link_name=link.name),
            LinkFlap(150.0, 300.0, link_name=link.name),
            until=280.0,
        )
        # First window closed at t=300 > 280? No: run to 280; first closes
        # at 300. Link must still be down (both windows open at 280).
        assert link.online is False
        service.sim.run(until=320.0)
        assert link.online is False  # inner window still open until 450
        service.sim.run(until=500.0)
        assert link.online is True
        # Exactly one down + one up transition despite two windows.
        assert link.state_version == versions + 2

    def test_degrade_adds_and_removes_background(self):
        service = make_service()
        link = service.topology.link_named("Patra-Ioannina")
        before = link.background_mbps
        injector = FaultInjector(
            service,
            FaultSchedule.scripted(
                LinkDegrade(100.0, 50.0, link_name=link.name, fraction=0.5)
            ),
        )
        injector.start()
        service.sim.run(until=120.0)
        assert link.background_mbps == pytest.approx(
            min(before + 0.5 * link.capacity_mbps, link.capacity_mbps)
        )
        service.sim.run(until=200.0)
        assert link.background_mbps == pytest.approx(before)

    def test_clamped_degrades_undo_only_what_they_applied(self):
        service = make_service()
        link = service.topology.link_named("Patra-Ioannina")
        base = 0.8 * link.capacity_mbps
        link.set_background_mbps(base)
        run_with(
            service,
            # Together they would exceed capacity; each must undo only its
            # actually applied (clamped) share.
            LinkDegrade(100.0, 300.0, link_name=link.name, fraction=0.5),
            LinkDegrade(120.0, 100.0, link_name=link.name, fraction=0.5),
            until=150.0,
        )
        assert link.background_mbps == pytest.approx(link.capacity_mbps)
        service.sim.run(until=250.0)  # second window closed, first open
        assert link.background_mbps == pytest.approx(link.capacity_mbps)
        service.sim.run(until=500.0)
        assert link.background_mbps == pytest.approx(base)


class TestServerAndDiskFaults:
    def test_crash_excludes_server_then_recovers(self):
        service = make_service()
        service.seed_title("U4", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        service.seed_title("U5", VideoTitle("m1", size_mb=400.0, duration_s=3600.0))
        injector = FaultInjector(
            service, FaultSchedule.scripted(ServerCrash(100.0, 50.0, server_uid="U4"))
        )
        injector.start()
        service.sim.run(until=120.0)
        assert service.servers["U4"].online is False
        assert service.decide("U2", "m1").chosen_uid == "U5"
        service.sim.run(until=200.0)
        assert service.servers["U4"].online is True

    def test_overlapping_crashes_recover_at_last_window(self):
        service = make_service()
        run_with(
            service,
            ServerCrash(100.0, 100.0, server_uid="U4"),
            ServerCrash(150.0, 200.0, server_uid="U4"),
            until=250.0,
        )
        assert service.servers["U4"].online is False
        service.sim.run(until=400.0)
        assert service.servers["U4"].online is True

    def test_disk_failure_polls_title_out(self):
        service = make_service()
        video = VideoTitle("m1", size_mb=400.0, duration_s=3600.0)
        service.seed_title("U4", video)
        service.seed_title("U5", video)
        # m1 is striped across both disks of U4; disk 0 dying makes it
        # unservable there until the swap.
        injector = FaultInjector(
            service,
            FaultSchedule.scripted(
                DiskFailure(100.0, 50.0, server_uid="U4", disk_index=0)
            ),
        )
        injector.start()
        service.sim.run(until=120.0)
        assert not service.servers["U4"].has_title("m1")
        assert service.decide("U2", "m1").chosen_uid == "U5"
        service.sim.run(until=200.0)
        assert service.servers["U4"].has_title("m1")
        assert service.servers["U4"].array.failed_disk_indices == []


class TestSnmpBlackout:
    def test_blackout_skips_rounds_and_stats_go_stale(self):
        service = make_service(use_reported_stats=True)
        service.start()
        service.sim.run(until=130.0)  # baseline + two rounds
        link_name = "Patra-Ioannina"
        stamp_before = service.database.link_entry(link_name).latest_stats.timestamp
        # Offsets are relative to the injector's start (sim is at t=130):
        # dark from t=140 to t=320, covering the rounds at 180/240/300.
        injector = run_with(
            service,
            SnmpBlackout(10.0, 180.0),
            until=400.0,
        )
        assert service.statistics.blackout_skips == 3
        # No stats were written during the dark window...
        service_stamp = service.database.link_entry(link_name).latest_stats.timestamp
        assert service_stamp >= stamp_before
        assert injector.injected_by_kind["snmp-blackout"] == 1
        # ...and collection resumed after it.
        assert not service.statistics.blacked_out

    def test_nested_blackouts(self):
        service = make_service()
        service.start()
        run_with(
            service,
            SnmpBlackout(10.0, 100.0),
            SnmpBlackout(50.0, 200.0),
            until=120.0,
        )
        assert service.statistics.blacked_out
        service.sim.run(until=300.0)
        assert not service.statistics.blacked_out


class TestBookkeeping:
    def test_report_and_log(self):
        service = make_service()
        link = service.topology.link_named("Patra-Athens")
        injector = run_with(
            service,
            LinkFlap(100.0, 50.0, link_name=link.name),
            ServerCrash(200.0, 80.0, server_uid="U5"),
            until=1_000.0,
        )
        report = injector.report()
        assert report["scheduled"] == 2
        assert report["injected"]["link-flap"] == 1
        assert report["recovered"]["server-crash"] == 1
        assert report["active"] == 0
        assert report["mean_mttr_s"] == pytest.approx(65.0)
        actions = [(entry["action"], entry["kind"]) for entry in injector.log]
        assert actions == [
            ("inject", "link-flap"),
            ("recover", "link-flap"),
            ("inject", "server-crash"),
            ("recover", "server-crash"),
        ]

    def test_start_twice_rejected(self):
        service = make_service()
        injector = FaultInjector(service, FaultSchedule())
        injector.start()
        with pytest.raises(FaultInjectionError):
            injector.start()

    def test_unknown_server_target_raises_at_apply(self):
        service = make_service()
        injector = FaultInjector(
            service, FaultSchedule.scripted(ServerCrash(10.0, 5.0, server_uid="nope"))
        )
        injector.start()
        with pytest.raises(FaultInjectionError):
            service.sim.run(until=100.0)
