"""Value-aware online setters: same-value writes must be free.

Fault storms re-assert state constantly (overlapping windows, idempotent
recovery).  If a same-value ``online = x`` bumped versions or journaled,
every redundant write would flush the routing cache and flood the delta
journal — so both setters must notice no-op assignments.
"""

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


class TestLinkOnlineValueAware:
    def test_same_value_assign_bumps_nothing(self):
        topology = build_grnet_topology()
        link = topology.link_named("Patra-Athens")
        version = link.state_version
        head = topology.change_journal.head
        link.online = True  # already online
        assert link.state_version == version
        assert topology.change_journal.head == head

    def test_transition_bumps_once_each_way(self):
        topology = build_grnet_topology()
        link = topology.link_named("Patra-Athens")
        version = link.state_version
        head = topology.change_journal.head
        link.online = False
        link.online = False  # redundant re-assert
        assert link.state_version == version + 1
        assert topology.change_journal.head == head + 1
        link.online = True
        assert link.state_version == version + 2


class TestServerOnlineValueAware:
    def make_server(self):
        service = VoDService(
            Simulator(),
            build_grnet_topology(),
            ServiceConfig(disk_count=2, disk_capacity_mb=500.0),
        )
        return service.servers["U4"]

    def test_same_value_assign_bumps_nothing(self):
        server = self.make_server()
        version = server.state_version
        server.online = True  # already online
        assert server.state_version == version

    def test_transition_bumps_once_each_way(self):
        server = self.make_server()
        version = server.state_version
        server.online = False
        server.online = False  # redundant re-assert
        assert server.state_version == version + 1
        server.online = True
        server.online = 1  # truthy re-assert, still no transition
        assert server.state_version == version + 2

    def test_state_change_callback_fires_on_transitions_only(self):
        server = self.make_server()
        seen = []
        server.on_state_change = lambda s: seen.append(s.online)
        server.online = True  # no-op
        server.online = False
        server.online = False  # no-op
        server.online = True
        assert seen == [False, True]

    def test_offline_server_fails_availability_poll(self):
        server = self.make_server()
        server.seed_title(VideoTitle("m1", size_mb=100.0, duration_s=600.0))
        assert server.can_provide("m1")
        server.online = False
        assert not server.can_provide("m1")
        server.online = True
        assert server.can_provide("m1")
