"""Fault events and schedules: typing, validation, seeded determinism."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FAULT_KINDS,
    DiskFailure,
    FaultSchedule,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    SnmpBlackout,
    MIN_FAULT_DURATION_S,
)


class TestEvents:
    def test_kinds_and_targets(self):
        assert LinkFlap(0.0, 10.0, link_name="a-b").target == "a-b"
        assert LinkDegrade(0.0, 10.0, link_name="a-b").target == "a-b"
        assert ServerCrash(0.0, 10.0, server_uid="U4").target == "U4"
        assert DiskFailure(0.0, 10.0, server_uid="U4", disk_index=2).target == "U4:disk2"
        assert SnmpBlackout(0.0, 10.0).target == "collector"
        kinds = {
            type(e).kind
            for e in (
                LinkFlap(0.0, 1.0, link_name="l"),
                LinkDegrade(0.0, 1.0, link_name="l"),
                ServerCrash(0.0, 1.0, server_uid="s"),
                DiskFailure(0.0, 1.0, server_uid="s"),
                SnmpBlackout(0.0, 1.0),
            )
        }
        assert kinds == set(FAULT_KINDS)

    def test_recovery_time(self):
        event = LinkFlap(100.0, 25.0, link_name="a-b")
        assert event.recovery_time_s == 125.0

    def test_as_dict_roundtrips_extras(self):
        degrade = LinkDegrade(5.0, 10.0, link_name="a-b", fraction=0.25)
        assert degrade.as_dict() == {
            "kind": "link-degrade",
            "target": "a-b",
            "time_s": 5.0,
            "duration_s": 10.0,
            "fraction": 0.25,
        }
        disk = DiskFailure(5.0, 10.0, server_uid="U4", disk_index=1)
        assert disk.as_dict()["disk_index"] == 1

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: LinkFlap(-1.0, 10.0, link_name="a-b"),
            lambda: LinkFlap(0.0, 0.0, link_name="a-b"),
            lambda: LinkFlap(0.0, 10.0),
            lambda: LinkDegrade(0.0, 10.0, link_name="a-b", fraction=0.0),
            lambda: LinkDegrade(0.0, 10.0, link_name="a-b", fraction=1.5),
            lambda: ServerCrash(0.0, 10.0),
            lambda: DiskFailure(0.0, 10.0, server_uid="U4", disk_index=-1),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(FaultInjectionError):
            bad()


class TestScriptedSchedule:
    def test_sorted_by_time(self):
        late = ServerCrash(500.0, 10.0, server_uid="U4")
        early = LinkFlap(100.0, 10.0, link_name="a-b")
        schedule = FaultSchedule.scripted(late, early)
        assert [e.time_s for e in schedule] == [100.0, 500.0]

    def test_counts_and_horizon(self):
        schedule = FaultSchedule.scripted(
            LinkFlap(0.0, 50.0, link_name="a-b"),
            LinkFlap(10.0, 5.0, link_name="a-b"),
            SnmpBlackout(40.0, 100.0),
        )
        assert len(schedule) == 3
        assert schedule.horizon_s == 140.0
        counts = schedule.counts_by_kind()
        assert counts["link-flap"] == 2
        assert counts["snmp-blackout"] == 1
        assert counts["server-crash"] == 0

    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert len(schedule) == 0
        assert schedule.horizon_s == 0.0

    def test_rejects_non_events(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(["not-an-event"])


class TestSeededSchedule:
    KW = dict(
        link_names=["a-b", "b-c"],
        server_uids=["U1", "U2"],
        link_flap_rate_per_h=6.0,
        link_degrade_rate_per_h=6.0,
        server_crash_rate_per_h=6.0,
        disk_failure_rate_per_h=6.0,
        snmp_blackout_rate_per_h=2.0,
        disks_per_server=3,
    )

    def test_same_seed_same_schedule(self):
        a = FaultSchedule.seeded(11, 4 * 3600.0, **self.KW)
        b = FaultSchedule.seeded(11, 4 * 3600.0, **self.KW)
        assert a == b
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.seeded(11, 4 * 3600.0, **self.KW)
        b = FaultSchedule.seeded(12, 4 * 3600.0, **self.KW)
        assert a != b

    def test_kind_streams_independent(self):
        """Zeroing one kind's rate must not move another kind's events."""
        full = FaultSchedule.seeded(11, 4 * 3600.0, **self.KW)
        kw = dict(self.KW, server_crash_rate_per_h=0.0)
        reduced = FaultSchedule.seeded(11, 4 * 3600.0, **kw)
        flaps = lambda s: [e for e in s if e.kind == "link-flap"]  # noqa: E731
        assert flaps(full) == flaps(reduced)
        assert not [e for e in reduced if e.kind == "server-crash"]

    def test_events_inside_horizon_with_min_duration(self):
        schedule = FaultSchedule.seeded(3, 1800.0, **self.KW)
        assert len(schedule) > 0
        for event in schedule:
            assert 0.0 <= event.time_s <= 1800.0
            assert event.duration_s >= MIN_FAULT_DURATION_S

    def test_targets_drawn_from_given_lists(self):
        schedule = FaultSchedule.seeded(5, 8 * 3600.0, **self.KW)
        for event in schedule:
            if event.kind in ("link-flap", "link-degrade"):
                assert event.link_name in self.KW["link_names"]
            elif event.kind in ("server-crash", "disk-failure"):
                assert event.server_uid in self.KW["server_uids"]
            if event.kind == "disk-failure":
                assert 0 <= event.disk_index < self.KW["disks_per_server"]

    def test_rate_without_targets_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 3600.0, link_flap_rate_per_h=1.0)
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 3600.0, server_crash_rate_per_h=1.0)

    def test_parameter_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 0.0)
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 100.0, link_names=["l"], link_flap_rate_per_h=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 100.0, mean_fault_duration_s=0.0)
        with pytest.raises(FaultInjectionError):
            FaultSchedule.seeded(1, 100.0, disks_per_server=0)
