"""Staleness guard: stale-set computation, inflation, service wiring."""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.errors import ReproError, ServiceError
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.resilience.staleness import StalenessGuard
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**config_overrides):
    defaults = dict(
        cluster_mb=50.0,
        snmp_period_s=60.0,
        use_reported_stats=True,
    )
    defaults.update(config_overrides)
    sim = Simulator()
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def news():
    return VideoTitle("news", size_mb=200.0, duration_s=1200.0)


def advance(sim, until):
    """Run the sim to an absolute time even with an empty event queue."""
    sim.schedule_at(until, lambda: None)
    sim.run(until=until + 1e-9)


class TestStalenessGuardUnit:
    def test_parameter_validation(self):
        service = make_service()
        for kwargs in (
            dict(max_age_s=0.0),
            dict(max_age_s=100.0, inflation_factor=1.0),
            dict(max_age_s=100.0, check_period_s=0.0),
        ):
            with pytest.raises(ReproError):
                StalenessGuard(
                    service.sim, service.database, service.topology, **kwargs
                )

    def test_requires_reported_stats(self):
        with pytest.raises(ServiceError):
            make_service(use_reported_stats=False, max_stats_age_s=120.0)

    def test_never_sampled_links_age_from_zero(self):
        service = make_service()
        guard = StalenessGuard(
            service.sim, service.database, service.topology, max_age_s=100.0
        )
        # At t=0 nothing is stale yet: the 0.0 baseline is inside the age.
        assert guard.refresh() == []
        assert guard.degraded is False
        # Without a single SNMP round, every link expires together.
        advance(service.sim, 200.0)
        changed = guard.refresh()
        assert changed == sorted(link.name for link in service.topology.links())
        assert guard.degraded is True
        assert guard.stale_count == service.topology.link_count
        assert guard.transition_count == 1
        # A refresh with no membership change reports (and counts) nothing.
        assert guard.refresh() == []
        assert guard.transition_count == 1

    def test_adjusted_used_inflates_only_stale_links(self):
        service = make_service()
        guard = StalenessGuard(
            service.sim,
            service.database,
            service.topology,
            max_age_s=100.0,
            inflation_factor=4.0,
        )
        link = next(iter(service.topology.links()))
        assert guard.adjusted_used(link, 1.0) == 1.0  # fresh: passthrough
        advance(service.sim, 200.0)
        guard.refresh()
        assert guard.is_stale(link.name)
        capacity = link.capacity_mbps
        expected = capacity - (capacity - 1.0) / 4.0
        assert guard.adjusted_used(link, 1.0) == pytest.approx(expected)
        # Over-reported usage clamps at capacity, never below it.
        assert guard.adjusted_used(link, capacity + 5.0) == capacity

    def test_on_change_receives_sorted_flips(self):
        service = make_service()
        seen = []
        guard = StalenessGuard(
            service.sim,
            service.database,
            service.topology,
            max_age_s=100.0,
            on_change=seen.append,
        )
        advance(service.sim, 200.0)
        guard.refresh()
        assert len(seen) == 1
        assert seen[0] == sorted(seen[0])
        assert set(seen[0]) == set(guard.stale_links)


class TestServiceWiring:
    def test_blackout_marks_decisions_degraded_then_recovers(self):
        service = make_service(max_stats_age_s=150.0, snmp_period_s=60.0)
        service.seed_title("U4", news())
        service.start()
        sim = service.sim
        advance(sim, 300.0)
        assert service.staleness_guard is not None
        assert service.staleness_guard.degraded is False
        assert service.decide("U2", "news").degraded is False

        service.statistics.blackout()
        advance(sim, 600.0)
        assert service.staleness_guard.degraded is True
        degraded = service.decide("U2", "news")
        assert degraded.degraded is True

        service.statistics.restore()
        advance(sim, sim.now + 2 * 60.0 + 1.0)
        assert service.staleness_guard.degraded is False
        assert service.decide("U2", "news").degraded is False

    def test_guard_absent_by_default(self):
        service = make_service()
        assert service.staleness_guard is None
        assert service.breakers is None
        assert service.supervisor is None
