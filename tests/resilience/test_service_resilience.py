"""Service-level resilience wiring: breakers in routing, availability."""

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.experiments.resilience import run_resilience_experiment
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**config_overrides):
    defaults = dict(
        cluster_mb=50.0,
        snmp_period_s=60.0,
        use_reported_stats=False,
    )
    defaults.update(config_overrides)
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def news():
    return VideoTitle("news", size_mb=200.0, duration_s=1200.0)


def flap(resource, times):
    for _ in range(times):
        resource.online = False
        resource.online = True


class TestServerBreakerRouting:
    def test_tripped_server_leaves_the_holder_set(self):
        service = make_service(breaker_threshold=2)
        service.seed_title("U4", news())
        service.seed_title("U5", news())
        service.start()
        first = service.decide("U2", "news").chosen_uid
        other = "U5" if first == "U4" else "U4"

        flap(service.servers[first], 2)
        assert service.breakers.server_state(first) == BREAKER_OPEN
        # Both replicas are online again, but the flapping one is held
        # out of the candidate list until its breaker is probed.
        assert service.decide("U2", "news").chosen_uid == other

    def test_successful_probe_session_closes_the_breaker(self):
        service = make_service(
            breaker_threshold=2, breaker_cooldown_s=300.0
        )
        service.seed_title("U4", news())
        service.seed_title("U5", news())
        service.start()
        first = service.decide("U2", "news").chosen_uid
        sim = service.sim

        flap(service.servers[first], 2)
        assert service.breakers.server_state(first) == BREAKER_OPEN
        sim.run(until=sim.now + 301.0)
        assert service.breakers.server_state(first) == BREAKER_HALF_OPEN

        # The half-open server is admitted again; the first cluster it
        # delivers counts as the successful probe and closes the breaker.
        request, _, _ = service.request_by_home("U2", "news")
        sim.run(until=sim.now + 2 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        assert service.breakers.server_state(first) == BREAKER_CLOSED

    def test_all_holders_tripped_falls_back_to_unfiltered(self):
        service = make_service(breaker_threshold=2)
        service.seed_title("U4", news())
        service.start()
        flap(service.servers["U4"], 2)
        assert service.breakers.server_state("U4") == BREAKER_OPEN
        # The only holder is tripped: the breaker must not manufacture a
        # routing failure the breaker-less service would not have had.
        assert service.decide("U2", "news").chosen_uid == "U4"


class TestLinkBreakerRouting:
    def test_open_link_breaker_inflates_its_weight(self):
        service = make_service(breaker_threshold=2, use_reported_stats=True)
        service.seed_title("U4", news())
        service.start()
        sim = service.sim
        sim.run(until=sim.now + 3 * 60.0 + 1.0)  # a few SNMP rounds

        link = service.topology.link_named("Patra-Ioannina")
        before = service.decide("U2", "news")
        failed_pair = set(link.endpoints)
        hops = list(zip(before.path.nodes, before.path.nodes[1:]))
        assert any(set(hop) == failed_pair for hop in hops)

        flap(link, 2)
        assert service.breakers.link_open(link.name) is True
        # The link is physically online again, but its breaker inflates
        # the reported weight to worst-case: the route detours.
        during = service.decide("U2", "news")
        hops = list(zip(during.path.nodes, during.path.nodes[1:]))
        assert all(set(hop) != failed_pair for hop in hops)
        assert during.path.nodes != before.path.nodes


class TestAvailabilityUnderStorm:
    #: The CI chaos-smoke storm: aggressive enough that the legacy
    #: retry-less service loses sessions, short enough for a test.
    STORM = dict(
        seed=11,
        duration_s=2 * 3600.0,
        requests_per_node=12,
        retry_attempts=0,
        server_crash_rate_per_h=6.0,
        link_flap_rate_per_h=4.0,
        mean_fault_duration_s=600.0,
    )

    def test_failover_strictly_improves_availability(self):
        off = run_resilience_experiment(**self.STORM)
        on = run_resilience_experiment(session_failover=True, **self.STORM)
        assert off.report.failed_count > 0  # the storm actually bites
        assert on.report.availability > off.report.availability
        assert on.report.failed_count < off.report.failed_count
        assert on.report.failover_count > 0
        assert on.report.preemptions > 0

    def test_report_carries_breaker_and_staleness_sections(self):
        run = run_resilience_experiment(
            session_failover=True,
            breaker_threshold=2,
            max_stats_age_s=300.0,
            **self.STORM,
        )
        report = run.report.as_dict()
        assert "breaker_trips" in report and "breaker_resets" in report
        assert report["stale_transitions"] >= 0
        assert report["availability"] >= 0.0
