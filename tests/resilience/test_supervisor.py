"""Session supervisor: preemption, mid-stream migration, fail verdicts."""

import pytest

from repro.client.requests import RequestStatus
from repro.core.service import ServiceConfig, VoDService
from repro.faults import DiskFailure, FaultInjector, FaultSchedule
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def make_service(**config_overrides):
    defaults = dict(
        cluster_mb=100.0,
        use_reported_stats=False,
        session_failover=True,
    )
    defaults.update(config_overrides)
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    return VoDService(sim, topology, ServiceConfig(**defaults))


def feature():
    return VideoTitle("feature", size_mb=800.0, duration_s=3600.0)


class TestMidStreamFailover:
    def test_crash_migrates_before_the_cluster_boundary(self):
        service = make_service()
        service.seed_title("U4", feature())
        service.seed_title("U5", feature())
        service.start()
        source = service.decide("U2", "feature").chosen_uid
        request, session, _ = service.request_by_home("U2", "feature")
        sim = service.sim
        sim.schedule(
            600.0, lambda: setattr(service.servers[source], "online", False)
        )
        sim.run(until=sim.now + 3 * 3600.0)

        record = session.record
        assert request.status is RequestStatus.COMPLETED
        # The fault preempted an in-flight segment and the session
        # migrated mid-cluster instead of waiting for the boundary.
        assert service.supervisor.preemption_count >= 1
        assert service.supervisor.failover_count >= 1
        assert record.failover_count >= 1
        assert set(record.servers_used) == {"U4", "U5"}
        assert all(stall >= 0.0 for stall in service.supervisor.stall_log)
        assert service.flows.active_count == 0  # no leaked reservations
        assert service.supervisor.tracked_count == 0

    def test_sole_crashed_holder_is_ridden_out_with_backoff(self):
        service = make_service(failover_backoff_s=30.0)
        service.seed_title("U4", feature())
        service.start()
        request, session, _ = service.request_by_home("U2", "feature")
        sim = service.sim
        sim.schedule(
            600.0, lambda: setattr(service.servers["U4"], "online", False)
        )
        sim.schedule(
            1_500.0, lambda: setattr(service.servers["U4"], "online", True)
        )
        sim.run(until=sim.now + 6 * 3600.0)

        # A full copy still existed (crashed, recovering), so the
        # supervisor stalled instead of failing the session.
        assert request.status is RequestStatus.COMPLETED
        assert session.record.failover_count >= 1
        assert session.record.failover_stall_s > 0.0
        assert service.supervisor.failed_count == 0
        assert service.flows.active_count == 0

    def test_disk_failure_preempts_affected_sessions(self):
        service = make_service()
        service.seed_title("U4", feature())
        service.seed_title("U5", feature())
        service.start()
        source = service.decide("U2", "feature").chosen_uid
        request, session, _ = service.request_by_home("U2", "feature")
        injector = FaultInjector(
            service,
            FaultSchedule.scripted(
                DiskFailure(600.0, 3_600.0, server_uid=source, disk_index=0)
            ),
        )
        injector.start()
        sim = service.sim
        sim.run(until=sim.now + 4 * 3600.0)

        assert request.status is RequestStatus.COMPLETED
        # The server stayed online, so only the explicit disk-failure
        # notification can have caused the preemption.
        assert service.supervisor.preemption_count >= 1
        assert session.record.failover_count >= 1
        assert service.flows.active_count == 0

    def test_session_fails_only_when_last_copy_is_gone(self):
        service = make_service()
        service.seed_title("U4", feature())
        service.start()
        request, session, _ = service.request_by_home("U2", "feature")
        sim = service.sim

        def vanish():
            # Withdraw the only advertised copy, then crash its server:
            # the preempted session finds no registered full holder.
            service.database.remove_title_from_server("U4", "feature")
            service.servers["U4"].online = False

        sim.schedule(600.0, vanish)
        sim.run(until=sim.now + 2 * 3600.0)

        assert request.status is RequestStatus.FAILED
        assert service.supervisor.failed_count == 1
        entry = service.supervisor.failed_log[0]
        assert entry["title_id"] == "feature"
        # The invariant the verdict encodes: no online full holder
        # existed at (or after) the failure instant.
        assert service.supervisor.holder_online("feature") is False
        assert service.supervisor.holder_exists("feature") is False
        assert service.flows.active_count == 0
        assert service.supervisor.tracked_count == 0


class TestFaultFreeEquivalence:
    def run_once(self, session_failover):
        service = make_service(session_failover=session_failover)
        service.seed_title("U4", feature())
        service.seed_title("U5", feature())
        service.start()
        request, session, _ = service.request_by_home("U2", "feature")
        service.sim.run(until=service.sim.now + 3 * 3600.0)
        assert request.status is RequestStatus.COMPLETED
        return session.record

    def test_supervisor_is_invisible_without_faults(self):
        on = self.run_once(True)
        off = self.run_once(False)
        assert on.failover_count == 0
        assert len(on.clusters) == len(off.clusters)
        for a, b in zip(on.clusters, off.clusters):
            assert a.server_uid == b.server_uid
            assert a.path_nodes == b.path_nodes
            assert a.rate_mbps == b.rate_mbps
            assert a.start == b.start
            assert a.end == b.end
            assert a.size_mb == pytest.approx(b.size_mb)
        assert on.completed_at == off.completed_at
        assert on.stall_s == off.stall_s
