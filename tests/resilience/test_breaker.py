"""Circuit breakers: state machine, board bookkeeping, probe scheduling."""

import pytest

from repro.errors import ReproError
from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    KIND_LINK,
    KIND_SERVER,
    BreakerBoard,
    CircuitBreaker,
)
from repro.sim.engine import Simulator


class TestCircuitBreaker:
    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker("x", threshold=0, window_s=10.0, cooldown_s=10.0)
        with pytest.raises(ReproError):
            CircuitBreaker("x", threshold=1, window_s=0.0, cooldown_s=10.0)
        with pytest.raises(ReproError):
            CircuitBreaker("x", threshold=1, window_s=10.0, cooldown_s=0.0)

    def test_trips_at_threshold_within_window(self):
        b = CircuitBreaker("srv", threshold=3, window_s=100.0, cooldown_s=50.0)
        assert b.record_failure(0.0) is False
        assert b.record_failure(10.0) is False
        assert b.state == BREAKER_CLOSED and b.allowed
        assert b.record_failure(20.0) is True
        assert b.state == BREAKER_OPEN and not b.allowed

    def test_window_pruning_prevents_trip(self):
        b = CircuitBreaker("srv", threshold=3, window_s=100.0, cooldown_s=50.0)
        b.record_failure(0.0)
        b.record_failure(10.0)
        # The first failure ages out before the third one lands.
        assert b.record_failure(150.0) is False
        assert b.state == BREAKER_CLOSED

    def test_half_open_after_cooldown_then_close(self):
        b = CircuitBreaker("srv", threshold=1, window_s=100.0, cooldown_s=50.0)
        assert b.record_failure(0.0) is True
        assert b.half_open(30.0) is False  # cooldown not elapsed
        assert b.state == BREAKER_OPEN
        assert b.half_open(50.0) is True
        assert b.state == BREAKER_HALF_OPEN and b.allowed
        assert b.record_success(60.0) is True
        assert b.state == BREAKER_CLOSED

    def test_half_open_failure_reopens(self):
        b = CircuitBreaker("srv", threshold=1, window_s=100.0, cooldown_s=50.0)
        b.record_failure(0.0)
        b.half_open(50.0)
        assert b.record_failure(60.0) is True  # failed probe
        assert b.state == BREAKER_OPEN
        assert b.opened_at == 60.0

    def test_failure_while_open_refreshes_cooldown(self):
        b = CircuitBreaker("srv", threshold=1, window_s=100.0, cooldown_s=50.0)
        b.record_failure(0.0)
        assert b.record_failure(30.0) is False  # already open, no re-trip
        assert b.opened_at == 30.0
        assert b.half_open(50.0) is False  # original expiry is now stale
        assert b.half_open(80.0) is True

    def test_success_while_closed_is_noop(self):
        b = CircuitBreaker("srv", threshold=2, window_s=100.0, cooldown_s=50.0)
        assert b.record_success(0.0) is False
        b.record_failure(1.0)
        assert b.record_success(2.0) is False
        assert b.state == BREAKER_CLOSED


def make_board(threshold=2, window_s=600.0, cooldown_s=300.0):
    sim = Simulator()
    transitions = []
    board = BreakerBoard(
        sim,
        threshold=threshold,
        window_s=window_s,
        cooldown_s=cooldown_s,
        on_transition=lambda *args: transitions.append(args),
    )
    return sim, board, transitions


class TestBreakerBoard:
    def test_server_trip_filters_holder_set(self):
        sim, board, transitions = make_board()
        board.server_failure("U4")
        assert board.server_allowed("U4") is True
        board.server_failure("U4")
        assert board.server_state("U4") == BREAKER_OPEN
        assert board.server_allowed("U4") is False
        assert board.filter_servers(["U4", "U5"]) == ["U5"]
        assert board.opened_by_kind[KIND_SERVER] == 1
        assert board.trip_count == 1
        assert transitions == [(KIND_SERVER, "U4", BREAKER_CLOSED, BREAKER_OPEN)]
        assert board.log[-1]["target"] == "U4"

    def test_filter_falls_back_when_every_holder_tripped(self):
        sim, board, _ = make_board()
        for uid in ("U4", "U5"):
            board.server_failure(uid)
            board.server_failure(uid)
        # Breakers degrade routing, they never empty the candidate set.
        assert board.filter_servers(["U4", "U5"]) == ["U4", "U5"]

    def test_filter_with_no_breakers_is_identity(self):
        _, board, _ = make_board()
        assert board.filter_servers(["U5", "U4"]) == ["U5", "U4"]

    def test_probe_half_opens_after_cooldown(self):
        sim, board, _ = make_board(cooldown_s=300.0)
        board.server_failure("U4")
        board.server_failure("U4")
        sim.run(until=299.0)
        assert board.server_state("U4") == BREAKER_OPEN
        sim.run(until=301.0)
        assert board.server_state("U4") == BREAKER_HALF_OPEN
        assert board.half_open_by_kind[KIND_SERVER] == 1
        assert board.server_allowed("U4") is True

    def test_path_success_closes_half_open_probe(self):
        sim, board, transitions = make_board(cooldown_s=300.0)
        board.server_failure("U4")
        board.server_failure("U4")
        board.link_failure("l1")
        board.link_failure("l1")
        sim.run(until=301.0)
        board.path_success("U4", ["l1", "never-tripped"])
        assert board.server_state("U4") == BREAKER_CLOSED
        assert board.link_state("l1") == BREAKER_CLOSED
        assert board.closed_by_kind[KIND_SERVER] == 1
        assert board.closed_by_kind[KIND_LINK] == 1
        # Links the board never saw stay untracked (implicitly closed).
        assert board.link_state("never-tripped") == BREAKER_CLOSED
        assert (KIND_SERVER, "U4", BREAKER_HALF_OPEN, BREAKER_CLOSED) in transitions

    def test_link_breaker_opens_and_reopens_on_failed_probe(self):
        sim, board, _ = make_board(cooldown_s=300.0)
        board.link_failure("Patra-Ioannina")
        board.link_failure("Patra-Ioannina")
        assert board.link_open("Patra-Ioannina") is True
        sim.run(until=301.0)
        assert board.link_open("Patra-Ioannina") is False  # half-open probe
        board.link_failure("Patra-Ioannina")  # probe failed
        assert board.link_open("Patra-Ioannina") is True
        assert board.opened_by_kind[KIND_LINK] == 2
        # The re-open scheduled its own expiry: it half-opens again.
        sim.run(until=602.0)
        assert board.link_open("Patra-Ioannina") is False

    def test_failure_while_open_cannot_strand_the_breaker(self):
        # A failure while already open refreshes the cooldown origin but
        # record_failure returns False there, so no fresh expiry event is
        # scheduled; the original probe must chase the moved deadline.
        sim, board, _ = make_board(cooldown_s=300.0)
        board.server_failure("U4")
        board.server_failure("U4")  # open at t=0, probe due t=300
        sim.schedule(100.0, board.server_failure, "U4")  # deadline -> 400
        sim.run(until=399.0)
        assert board.server_state("U4") == BREAKER_OPEN
        sim.run(until=401.0)
        assert board.server_state("U4") == BREAKER_HALF_OPEN
        assert board.half_open_by_kind[KIND_SERVER] == 1

    def test_log_is_chronological(self):
        sim, board, _ = make_board(cooldown_s=300.0)
        board.server_failure("U4")
        board.server_failure("U4")
        sim.run(until=301.0)
        board.server_success("U4")
        times = [entry["at_s"] for entry in board.log]
        assert times == sorted(times)
        assert [entry["to"] for entry in board.log] == [
            BREAKER_OPEN,
            BREAKER_HALF_OPEN,
            BREAKER_CLOSED,
        ]
