#!/usr/bin/env python3
"""The paper's GRNET case study, regenerated end to end.

Prints Table 2 (link utilisation), Table 3 (Link Validation Numbers), the
Dijkstra step tables of Experiments A and B (Tables 4-5) and the decisions
of all four experiments, each next to the values printed in the paper.

Experiment A is reported twice: as the paper printed it (download from
Xanthi) and as a correct Dijkstra computes it (download from Thessaloniki)
— the paper's Table 4 misses one relaxation; see DESIGN.md §5.

Run:  python examples/grnet_case_study.py
"""

from repro.experiments.casestudy import run_all_experiments
from repro.experiments.report import render_experiment, render_table2, render_table3


def main() -> None:
    print("=" * 78)
    print("Case study: the Greek Research & Technology Network backbone")
    print("=" * 78)
    print()
    print(render_table2())
    print()
    print(render_table3())
    print()

    for exp_id, outcome in run_all_experiments().items():
        print("=" * 78)
        print(render_experiment(outcome))
        print()

    print("=" * 78)
    print("Summary of decisions")
    print("=" * 78)
    for exp_id, outcome in run_all_experiments().items():
        flag = "matches paper" if outcome.matches_printed else "corrected (paper erratum)"
        print(
            f"  Experiment {exp_id} at {outcome.spec.time_label:>4}: "
            f"download from {outcome.chosen_uid} "
            f"via {','.join(outcome.decision.path.nodes)} "
            f"(cost {outcome.decision.cost:.4f}) — {flag}"
        )


if __name__ == "__main__":
    main()
