#!/usr/bin/env python3
"""Failures and growth on a live service.

The paper claims the service "has the ability to adjust itself to the
changes occurring to the network ... such changes may be bandwidth
shortages or server configuration changes" and that "new nodes can easily
be connected to the network".  This demo exercises both on a running
simulation:

* a replica server dies mid-stream -> the session fails over to the
  surviving replica at the next cluster boundary;
* a backbone link fails -> routes move, then move back on recovery;
* a brand-new city joins the service -> it is routable, SNMP-monitored
  and serving within one statistics period.

Run:  python examples/failure_recovery.py
"""

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.link import Link
from repro.network.node import Node
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def main() -> None:
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(cluster_mb=100.0, use_reported_stats=False),
    )
    movie = VideoTitle("feature", size_mb=800.0, duration_s=3600.0)
    service.seed_title("U4", movie)
    service.seed_title("U5", movie)
    service.start()

    print("== Server failover ==")
    _, session, _ = service.request_by_home("U2", "feature")

    def kill_current_source():
        source = session.record.clusters[-1].server_uid
        service.servers[source].online = False
        print(f"  t+{sim.now - 8 * 3600:.0f}s: server {source} dies mid-stream")

    sim.schedule(600.0, kill_current_source)
    sim.run(until=sim.now + 2 * 3600.0)
    record = session.record
    print(
        f"  session: {record.request.status.value}, sources {record.servers_used}, "
        f"{record.switch_count} switch(es)\n"
    )

    print("== Link failure and recovery ==")
    for server in service.servers.values():
        server.online = True
    # A fresh title held only at Thessaloniki, so routing is visible (the
    # feature film is already DMA-cached at Patra by now).
    service.seed_title("U4", VideoTitle("news", size_mb=200.0, duration_s=1200.0))
    link = service.topology.link_named("Patra-Ioannina")
    before = service.decide("U2", "news")
    link.online = False
    during = service.decide("U2", "news")
    link.online = True
    after = service.decide("U2", "news")
    print(f"  normal route ......... {','.join(before.path.nodes)}")
    print(f"  Patra-Ioannina down .. {','.join(during.path.nodes)}")
    print(f"  after repair ......... {','.join(after.path.nodes)}\n")

    print("== A new city joins ==")
    service.add_server(
        Node("U7", name="Kalamata"),
        [Link("U7", "U2", capacity_mbps=4.0, name="Kalamata-Patra")],
    )
    service.seed_title("U7", VideoTitle("news", size_mb=200.0, duration_s=1200.0))
    sim.run(until=sim.now + 2 * service.config.snmp_period_s + 1.0)
    decision = service.decide("U2", "news")
    entry = service.database.link_entry("Kalamata-Patra")
    print(f"  U2's best 'news' source  {decision.chosen_uid} via {','.join(decision.path.nodes)}")
    print(
        f"  SNMP sees the new link: utilisation "
        f"{entry.utilization:.1%} at t={entry.latest_stats.timestamp:.0f}s"
    )


if __name__ == "__main__":
    main()
