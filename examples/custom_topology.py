#!/usr/bin/env python3
"""Deploying the service on your own network.

The paper stresses that the service "grows with the network and has the
ability to adjust to a large variety of diverse networks".  This example
builds a 9-node metro ring with spurs, shapes synthetic day/night
background traffic over it, runs the service with SNMP-fed routing (the
paper-faithful data flow: agents -> limited-access database -> VRA), and
shows the VRA choosing differently at night and at peak.

Run:  python examples/custom_topology.py
"""

from repro.core.service import ServiceConfig, VoDService
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.traces import DiurnalTrafficShaper


def build_metro_ring() -> Topology:
    """Six ring nodes (R0..R5, 10 Mb ring) with three spur towns."""
    topology = Topology(name="metro-ring")
    for i in range(6):
        topology.add_node(Node(f"R{i}", name=f"Ring-{i}"))
    for name, hub in (("T0", "R0"), ("T2", "R2"), ("T4", "R4")):
        topology.add_node(Node(name, name=f"Town-{name[1]}"))
        topology.add_link(Link(name, hub, capacity_mbps=4.0))
    for i in range(6):
        topology.add_link(Link(f"R{i}", f"R{(i + 1) % 6}", capacity_mbps=10.0))
    topology.validate()
    return topology


def main() -> None:
    sim = Simulator(start_time=2 * 3600.0)  # 2am: the quiet hours
    topology = build_metro_ring()
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=64.0,
            snmp_period_s=90.0,
            use_reported_stats=True,  # the VRA sees only SNMP-reported state
        ),
    )
    shaper = DiurnalTrafficShaper(
        sim,
        topology,
        base_fraction=0.05,
        peak_fraction=0.85,
        phase_s=4 * 3600.0,  # quietest at 4am, busiest at 4pm
    )
    shaper.start()
    service.start()

    movie = VideoTitle("blockbuster", size_mb=1_200.0, duration_s=6_600.0)
    for holder in ("R1", "R3"):
        service.seed_title(holder, movie)

    print(f"{topology!r}\n")
    print("A client in Town-0 (home server T0) requests the blockbuster,")
    print("available at R1 and R3 (equidistant on the ring).\n")

    for label, hour in (("03:00 (night)", 3), ("10:00", 10), ("16:00 (peak)", 16)):
        sim.run(until=hour * 3600.0)
        decision = service.decide("T0", "blockbuster")
        weights = service.vra.weights()
        busiest = max(weights, key=weights.get)
        print(
            f"  at {label:<14} -> fetch from {decision.chosen_uid} via "
            f"{','.join(decision.path.nodes)} (cost {decision.cost:.3f}); "
            f"worst link now {busiest} (LVN {weights[busiest]:.3f})"
        )

    # Late evening: the diurnal tide goes out, but a flash crowd keeps the
    # R0-R1 side of the ring slammed.  After the next SNMP polls land in
    # the database, the VRA reroutes to the replica on the far side of the
    # ring without any operator involvement.
    shaper.stop()
    for link in topology.links():
        link.set_background_mbps(0.10 * link.capacity_mbps)
    for name in ("R0-R1", "R1-R2"):
        link = topology.link_named(name)
        link.set_background_mbps(0.95 * link.capacity_mbps)
    sim.run(until=sim.now + 2 * service.config.snmp_period_s + 1.0)
    decision = service.decide("T0", "blockbuster")
    print(
        f"  22:00, flash crowd on R0-R1/R1-R2 -> fetch from "
        f"{decision.chosen_uid} via {','.join(decision.path.nodes)} "
        f"(cost {decision.cost:.3f})"
    )

    # Stream it at the evening shoulder and report the session.
    request, session, _ = service.request_by_home("T0", "blockbuster")
    sim.run(until=sim.now + 6 * 3600.0)
    record = session.record
    print(
        f"\n  evening session: {request.status.value}, sourced from "
        f"{record.servers_used}, {record.switch_count} mid-stream switches, "
        f"startup {record.startup_delay_s:.0f} s, stall {record.stall_s:.0f} s"
    )


if __name__ == "__main__":
    main()
