#!/usr/bin/env python3
"""The "most popular" concept: DMA caches vs alternatives under a regional
Zipf workload.

The paper motivates per-server caches of each region's most-requested
titles ("we meet the requests of the users that are utilizing a certain
server and may have different orientations than other users").  This demo
runs the same day of requests on GRNET under four cache policies and
compares hit behaviour and network transport cost, then shows one server's
cache converging onto its region's favourites.

Run:  python examples/popularity_caching.py
"""

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.storage.video import VideoTitle
from repro.workload.scenarios import regional_scenario

GRNET_NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def build_scenario():
    catalog = [
        VideoTitle(f"t{i:02d}", size_mb=150.0, duration_s=3600.0, name=f"Title #{i}")
        for i in range(18)
    ]
    return regional_scenario(
        GRNET_NODES,
        requests_per_node=30,
        horizon_s=8 * 3600.0,
        zipf_exponent=1.0,
        regional_shift=3,  # each region's tastes rotate by 3 ranks
        seed=23,
        catalog=catalog,
    )


def run(cache_key: str):
    experiment = ServiceExperiment(
        name=f"cache-{cache_key}",
        scenario=build_scenario(),
        config=ServiceConfig(
            cluster_mb=50.0,
            disk_count=3,
            disk_capacity_mb=250.0,  # each server caches ~5 of 18 titles
            max_streams=64,
            use_reported_stats=False,
        ),
        cache=cache_key,
        run_until=24 * 3600.0,
    )
    return run_service_experiment(experiment)


def main() -> None:
    print("Regional Zipf workload on GRNET: 18 titles, ~30 requests/node,")
    print("each server's cache holds about 5 titles.\n")

    header = (
        f"{'policy':<12} {'completed':>9} {'local serves':>12} "
        f"{'MB-hops':>9} {'startup':>9} {'QoS-bad':>8}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for key in ("dma", "lru", "nocache", "fullrep"):
        metrics = run(key).metrics
        results[key] = metrics
        print(
            f"{key:<12} {metrics.completed_count:>9} "
            f"{metrics.local_serve_fraction:>11.0%} "
            f"{metrics.megabyte_hops:>9.0f} "
            f"{metrics.mean_startup_s:>8.0f}s "
            f"{metrics.qos_violation_fraction:>8.1%}"
        )

    saving = results["nocache"].megabyte_hops / results["dma"].megabyte_hops
    print(
        f"\nThe DMA cuts network transport {saving:.2f}x vs serving everything "
        "from origin servers,\nand beats the proxy-style LRU the paper "
        "explicitly contrasts with."
    )

    # Peek inside one server: its cache should hold its region's head.
    result = run("dma")
    server = result.service.servers["U2"]
    print("\nPatra (U2) after the day:")
    print(f"  cached titles : {server.stored_title_ids()}")
    ranking = server.dma.tracker.ranking()[:8]
    print("  request points: " + ", ".join(f"{t}={p}" for t, p in ranking))


if __name__ == "__main__":
    main()
