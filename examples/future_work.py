#!/usr/bin/env python3
"""The paper's future-work section, implemented and demonstrated.

Three improvements the paper's conclusions sketch, each runnable here:

1. strip-level distributed caching ("most popular ... imposed on video
   strips") — compared against whole-title caching at the same budget;
2. server configuration factors in the validation — stream-slot occupancy
   steering the VRA away from busy servers;
3. improved QoS standards — strict admission vs degraded delivery.

Run:  python examples/future_work.py
"""

from repro.core.service import ServiceConfig, VoDService
from repro.extensions.strip_caching import StripCachingEvaluator
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.scenarios import regional_scenario

NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def demo_strip_caching() -> None:
    print("1. Strip-level distributed caching")
    print("-" * 60)
    catalog = [
        VideoTitle(f"t{i:02d}", size_mb=150.0, duration_s=3600.0) for i in range(18)
    ]
    origins = {v.title_id: NODES[i % len(NODES)] for i, v in enumerate(catalog)}
    scenario = regional_scenario(
        NODES, requests_per_node=60, horizon_s=8 * 3600.0,
        zipf_exponent=1.0, regional_shift=3, seed=23, catalog=catalog,
    )
    events = [(e.home_uid, e.title_id) for e in scenario.events]
    for granularity in ("title", "strip"):
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        evaluator = StripCachingEvaluator(
            topology, catalog, origins,
            cluster_mb=25.0, cache_capacity_mb=400.0, granularity=granularity,
        )
        report = evaluator.replay(events)
        label = "whole-title DMA " if granularity == "title" else "strip-level DMA"
        print(
            f"  {label}: byte hit ratio {report.byte_hit_ratio:.3f}, "
            f"transport {report.megabyte_hops:.0f} MB-hops"
        )
    print("  -> strips avoid stranded cache space (partial popular titles).\n")


def demo_server_load() -> None:
    print("2. Server configuration factors in the validation")
    print("-" * 60)
    tiny = VideoTitle("m", size_mb=10.0, duration_s=3600.0)  # links barely notice
    for use_load in (False, True):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        service = VoDService(
            sim, topology,
            ServiceConfig(max_streams=8, use_reported_stats=False,
                          use_server_load_in_vra=use_load),
        )
        service.seed_title("U4", tiny)
        service.seed_title("U6", tiny)
        for _ in range(8):
            service.request_by_home("U5", "m")
            sim.run(until=sim.now + 1.0)
        split = {
            uid: server.admission.active_count
            for uid, server in service.servers.items()
            if server.admission.active_count
        }
        sim.run(until=sim.now + 2 * 3600.0)
        label = "with slot-occupancy term" if use_load else "paper eq. (2) only     "
        print(f"  {label}: concurrent streams per server {split}")
    print("  -> occupancy in the weights spreads load before slots run out.\n")


def demo_strict_qos() -> None:
    print("3. Strict QoS admission")
    print("-" * 60)
    movie = VideoTitle("m", size_mb=450.0, duration_s=3600.0)  # 1 Mbps
    for strict in (False, True):
        sim = Simulator(start_time=8 * 3600.0)
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")  # two sustainable paths exist
        service = VoDService(
            sim, topology,
            ServiceConfig(cluster_mb=150.0, use_reported_stats=False,
                          strict_qos_admission=strict),
        )
        service.seed_title("U4", movie)
        for _ in range(6):  # requests arrive seconds apart
            service.request_by_home("U2", "m")
            sim.run(until=sim.now + 5.0)  # earlier streams reserve first
        sim.run(until=sim.now + 8 * 3600.0)
        blocked = sum(
            1 for r in service.sessions
            if r.request.failure_reason
            and r.request.failure_reason.startswith("qos-blocked")
        )
        degraded = sum(
            1 for r in service.sessions if r.completed and r.qos_violation_count
        )
        completed = sum(1 for r in service.sessions if r.completed)
        mode = "strict admission " if strict else "paper (degrade)  "
        print(
            f"  {mode}: {completed} delivered ({degraded} below playback "
            f"rate), {blocked} blocked at admission"
        )
    print("  -> blocking trades availability for clean playback.")


if __name__ == "__main__":
    demo_strip_caching()
    demo_server_load()
    demo_strict_qos()
