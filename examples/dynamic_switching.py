#!/usr/bin/env python3
"""Dynamic mid-stream server switching — the paper's headline behaviour.

A client at Patra starts a two-hour feature from Thessaloniki.  Twenty
minutes in, the route to Thessaloniki congests and a fresh copy appears at
Athens.  The paper's per-cluster VRA re-decision escapes to the Athens
copy; a frozen first decision rides the congested route for days.

The script replays the same scenario under three switching cadences and
prints a per-cluster timeline for the paper-faithful one.

Run:  python examples/dynamic_switching.py
"""

from repro.baselines.switching import NeverSwitch, PeriodicRecompute
from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

FEATURE = VideoTitle("feature", size_mb=1_500.0, duration_s=7_200.0)


def run_scenario(decide_wrapper, cluster_mb=100.0):
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(cluster_mb=cluster_mb, use_reported_stats=False),
    )
    service.decide_wrapper = decide_wrapper
    service.seed_title("U4", FEATURE)
    _, session, _ = service.request_by_home("U2", FEATURE.title_id)

    def congest_and_seed():
        topology.link_named("Patra-Ioannina").set_background_mbps(1.95)
        topology.link_named("Thessaloniki-Ioannina").set_background_mbps(1.95)
        service.servers["U1"].seed_title(FEATURE)

    sim.schedule(20 * 60.0, congest_and_seed)
    sim.run(until=sim.now + 14 * 24 * 3600.0)
    return session.record


def main() -> None:
    policies = {
        "per-cluster VRA (the paper)": None,
        "re-decide every 4 clusters": lambda d: PeriodicRecompute(d, 4),
        "frozen first decision": NeverSwitch,
    }
    records = {}
    for name, wrapper in policies.items():
        records[name] = run_scenario(wrapper)

    print("Scenario: 1.5 GB feature, route to the source congests at t+20 min,")
    print("a better copy appears one idle hop away.\n")
    header = f"{'policy':<28} {'servers':<14} {'download':>10} {'stall':>10} {'QoS-bad':>8}"
    print(header)
    print("-" * len(header))
    for name, record in records.items():
        duration_h = (record.completed_at - record.request.submitted_at) / 3600.0
        print(
            f"{name:<28} {'+'.join(record.servers_used):<14} "
            f"{duration_h:>8.2f} h {record.stall_s / 60.0:>7.1f} m "
            f"{record.qos_violation_count:>4}/{len(record.clusters)}"
        )

    print("\nPer-cluster timeline (paper-faithful policy):")
    print(f"{'cluster':>8} {'source':>7} {'route':<14} {'rate Mbps':>10} {'minutes':>8}")
    for cluster in records["per-cluster VRA (the paper)"].clusters:
        route = ",".join(cluster.path_nodes)
        minutes = (cluster.end - cluster.start) / 60.0
        marker = "  <-- switched" if cluster.switched else ""
        print(
            f"{cluster.index:>8} {cluster.server_uid:>7} {route:<14} "
            f"{cluster.rate_mbps:>10.2f} {minutes:>8.1f}{marker}"
        )


if __name__ == "__main__":
    main()
