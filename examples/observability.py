#!/usr/bin/env python3
"""Observability: watch a simulated day through the telemetry layer.

Runs the quickstart workload with ``observability=True`` so the unified
telemetry layer is live: a metrics registry of counters/gauges/histograms,
a sim-time sampler snapshotting them into ring-buffered time series, and
one session span per client request.  Afterwards the script prints the
operator summary, a link-utilisation sparkline timeline, and the top-N
hottest cache entries (DMA popularity points per server).

Run:  python examples/observability.py
"""

from repro import Client, ServiceConfig, Simulator, VideoTitle, VoDService
from repro.experiments.report import render_timeline
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.obs import summarize_telemetry
from repro.sim.trace import Tracer


def main() -> None:
    # The quickstart setup, with telemetry switched on: every gauge is
    # sampled each 120 simulated seconds and every request gets a span.
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")

    tracer = Tracer(enabled=True)
    service = VoDService(
        sim,
        topology,
        ServiceConfig(cluster_mb=50.0, observability=True, telemetry_period_s=120.0),
        tracer=tracer,
    )
    for i in (1, 2, 3):
        service.seed_title(
            "U4", VideoTitle(f"movie-{i}", size_mb=400.0, duration_s=2700.0)
        )

    service.attach_access_network("10.2.0", "U2")  # Patra
    service.attach_access_network("10.1.0", "U1")  # Athens
    viewers = []
    for n in range(4):
        client = Client(f"patra-{n}", f"10.2.0.{10 + n}")
        service.register_client(client)
        viewers.append(client)
    for n in range(2):
        client = Client(f"athens-{n}", f"10.1.0.{10 + n}")
        service.register_client(client)
        viewers.append(client)
    service.start()
    sim.run(until=sim.now + 2 * service.config.snmp_period_s + 1.0)

    # Two waves an hour apart: movie-1 is the crowd favourite, so the DMA
    # caches it near the viewers and the second wave streams locally.
    for client in viewers:
        service.submit(client, "movie-1")
    service.submit(viewers[0], "movie-2")
    sim.run(until=sim.now + 3600.0)
    for client in viewers[:3]:
        service.submit(client, "movie-1")
    service.submit(viewers[3], "movie-3")
    sim.run(until=sim.now + 4 * 3600.0)

    print(summarize_telemetry(service.obs, service.telemetry, service.spans, tracer))

    # The sampler kept one ring-buffered series per gauge; render the
    # backbone links as sparklines (same view `python -m repro obs
    # --timeline link.utilization` gives for the canned scenarios).
    rows = [
        (labels.get("link", "?"), series)
        for labels, series in service.telemetry.series_for("link.utilization")
    ]
    print()
    print(render_timeline(rows, title="link utilization over the day", width=48))

    # "Hottest cache entries": the DMA's popularity points per server,
    # i.e. the request pressure that drives Figure 2's caching decisions.
    entries = []
    for uid in sorted(service.servers):
        server = service.servers[uid]
        tracker = getattr(server.dma, "tracker", None)
        if tracker is None:
            continue
        cached = set(server.stored_title_ids())
        for title_id, points in tracker.ranking():
            entries.append((points, uid, title_id, title_id in cached))
    entries.sort(key=lambda e: (-e[0], e[1], e[2]))
    print()
    print("hottest cache entries (DMA points)")
    for points, uid, title_id, cached in entries[:5]:
        state = "cached" if cached else "evicted/remote"
        print(f"  {uid} {title_id:<10} {points:3d} points  [{state}]")

    spans = service.spans
    finished = sum(1 for span in spans if not span.open)
    print()
    print(
        f"spans: {len(spans)} sessions traced, {finished} finished, "
        f"{sum(span.switch_count for span in spans)} mid-stream switches"
    )


if __name__ == "__main__":
    main()
