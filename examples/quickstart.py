#!/usr/bin/env python3
"""Quickstart: a VoD service on the paper's GRNET backbone in ~30 lines.

Builds the Figure 6 topology with the 8am Table 2 traffic, deploys the
service, seeds one movie at Thessaloniki, and streams it to a client in
Patra.  The Virtual Routing Algorithm picks the route, the Disk
Manipulation Algorithm caches the movie at Patra, and the second request
is served locally.

Run:  python examples/quickstart.py
"""

from repro import Client, ServiceConfig, Simulator, VideoTitle, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology


def main() -> None:
    # A simulated day starting at 8am with the paper's SNMP snapshot.
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")

    service = VoDService(sim, topology, ServiceConfig(cluster_mb=50.0))
    service.seed_title(
        "U4", VideoTitle("movie-1", size_mb=700.0, duration_s=5400.0, name="A Feature Film")
    )

    # Clients in the 10.2.0.0/24 access network attach to Patra (U2).
    service.attach_access_network("10.2.0", "U2")
    alice = Client("alice", "10.2.0.42")
    service.register_client(alice)
    service.start()
    # Let the SNMP statistics modules take two polls so the limited-access
    # database (which the VRA reads) reflects the 8am traffic.
    sim.run(until=sim.now + 2 * service.config.snmp_period_s + 1.0)

    request, session, _process = service.submit(alice, "movie-1")
    sim.run(until=sim.now + 4 * 3600.0)

    record = session.record
    print(f"request status ......... {request.status.value}")
    print(f"served by .............. {record.servers_used}")
    print(f"route (first cluster) .. {','.join(record.clusters[0].path_nodes)}")
    print(f"startup delay .......... {record.startup_delay_s:.0f} s")
    print(f"stall time ............. {record.stall_s:.0f} s")
    print(f"Patra now caches ....... {service.servers['U2'].stored_title_ids()}")

    # The DMA cached the movie at Patra: the next viewing is local.
    request2, session2, _ = service.submit(alice, "movie-1")
    sim.run(until=sim.now + 3600.0)
    print(f"second viewing ......... {request2.status.value}, "
          f"served by {session2.record.servers_used}, "
          f"startup {session2.record.startup_delay_s:.1f} s")


if __name__ == "__main__":
    main()
