"""Streaming telemetry: bounded memory, cheap write-behind.

The write-behind pipeline's two promises, pinned on the flash-crowd
workload:

1. Peak resident telemetry — what the streamer still holds in RAM (open
   spans + sampler-ring samples) — stays flat when the session count
   grows 10x.  The buffered exporter's span list would grow linearly;
   the streamer flushes each span the moment it closes, so the peak is
   O(concurrent sessions + ring capacity), not O(total sessions).
2. The write-behind cost stays below 3% of the run's wall time.  Raw
   A/B wall-clock deltas drown in scheduler noise, so the bound is
   computed from measured parts: the rows whose writes land *inside*
   the run (spans flushed live + ring spills) x microbenched per-row
   sink cost, against the streamed run's measured wall time.  The
   finish-time drain of ring contents and instrument totals is the same
   export a buffered run performs, so it is not streaming overhead.
"""

import io
from time import perf_counter

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.obs.sink import JsonlTelemetrySink
from repro.obs.stream import StreamingTelemetry
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

#: Same half-hour special as the other flash-crowd benchmarks.
SPECIAL = VideoTitle("special", size_mb=300.0, duration_s=1_800.0)

#: Acceptance bound: write-behind below 3% of the streamed run's time.
MAX_OVERHEAD_FRACTION = 0.03

#: Acceptance bound: peak resident rows may grow this much across a 10x
#: session-count increase (concurrent-session slack, not linear growth).
MAX_PEAK_GROWTH = 1.25


def run_streamed_crowd(viewer_count: int, path):
    """One flash-crowd run with the write-behind streamer attached."""
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=viewer_count, start_s=600.0, ramp_s=7_200.0
    )
    box = {}

    def hook(service):
        streamer = StreamingTelemetry(
            service,
            JsonlTelemetrySink(path),
            label=f"bench-stream-{viewer_count}",
        )
        streamer.start()
        box["streamer"] = streamer

    experiment = ServiceExperiment(
        name=f"stream-{viewer_count}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=100.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=256,
            use_reported_stats=False,
            observability=True,
        ),
        seed_origin_uids=["U4"],
        run_until=12 * 3600.0,
        service_hook=hook,
    )
    started = perf_counter()
    result = run_service_experiment(experiment)
    wall = perf_counter() - started
    footer = box["streamer"].finish()
    return result, footer, wall


def sink_cost_per_row(rows: int = 20_000) -> float:
    """Measured seconds per data row on the JSONL sink."""
    sink = JsonlTelemetrySink(io.StringIO())
    row = {
        "kind": "sample",
        "name": "link.utilization",
        "labels": {"link": "Athens-Thessaloniki"},
        "time": 28_800.0,
        "value": 0.25,
    }
    started = perf_counter()
    for _ in range(rows):
        sink.write(row)
    elapsed = perf_counter() - started
    sink.close()
    return elapsed / rows


def test_peak_resident_rows_flat_at_10x_sessions(benchmark, show, tmp_path):
    def measure():
        return (
            run_streamed_crowd(4, tmp_path / "small.jsonl"),
            run_streamed_crowd(40, tmp_path / "large.jsonl"),
        )

    (small, large) = benchmark.pedantic(measure, rounds=1, iterations=1)
    small_result, small_footer, _ = small
    large_result, large_footer, _ = large
    sessions_small = small_result.metrics.session_count
    sessions_large = large_result.metrics.session_count
    assert sessions_large == 10 * sessions_small
    # Every finished span left RAM through the sink, none piled up.
    assert large_result.service.spans == []
    assert large_footer["rows_by_kind"]["span"] == sessions_large
    growth = (
        large_footer["peak_resident_rows"] / small_footer["peak_resident_rows"]
    )
    show(
        f"STREAM-MEM: {sessions_small} -> {sessions_large} sessions, peak "
        f"resident rows {small_footer['peak_resident_rows']} -> "
        f"{large_footer['peak_resident_rows']} ({growth:.2f}x, bound "
        f"{MAX_PEAK_GROWTH:.2f}x); "
        f"{large_footer['rows_written']} rows on disk for the 10x run"
    )
    assert growth < MAX_PEAK_GROWTH


def test_streaming_overhead_below_three_percent(benchmark, show, tmp_path):
    (result, footer, wall) = benchmark.pedantic(
        lambda: run_streamed_crowd(40, tmp_path / "crowd.jsonl"),
        rounds=1,
        iterations=1,
    )
    assert result.metrics.completed_count == result.metrics.session_count
    live_rows = footer["spans_flushed"] + footer["samples_spilled"]
    per_row = sink_cost_per_row()
    overhead = live_rows * per_row
    fraction = overhead / wall
    show(
        f"STREAM-COST: {live_rows} live rows x {per_row * 1e6:.2f} us/row = "
        f"{overhead * 1e3:.3f} ms over a {wall * 1e3:.0f} ms run "
        f"-> {fraction:.3%} (bound {MAX_OVERHEAD_FRACTION:.0%}); "
        f"{footer['rows_written']} total rows in the artifact"
    )
    assert footer["spans_flushed"] == result.metrics.session_count
    assert footer["rows_written"] > 1_000
    assert fraction < MAX_OVERHEAD_FRACTION
