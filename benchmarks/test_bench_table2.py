"""T2 — Table 2: link utilisation from the SNMP samples (paper eq. 5).

Regenerates the utilisation percentages of Table 2 from the embedded
traffic figures and diffs every cell against the paper's printed values.
The timed section is the utilisation computation plus the simulated SNMP
pipeline that would produce it in deployment.
"""

import pytest

from repro.experiments.casestudy import (
    compute_table2_utilization_percent,
    table2_deltas,
)
from repro.experiments.report import render_table2


def test_table2_reproduction(benchmark, show):
    table = benchmark(compute_table2_utilization_percent)

    # Every cell matches the paper within its printing precision
    # (coarsest printed cell is 1 decimal of a percent).
    deltas = table2_deltas()
    worst = max(abs(d.delta) for d in deltas)
    assert worst < 0.15, f"worst Table 2 cell delta {worst}"

    # Spot exact cells.
    assert table["Patra-Athens"]["8am"] == pytest.approx(10.0)
    assert table["Patra-Athens"]["10am"] == pytest.approx(91.0)
    assert table["Thessaloniki-Xanthi"]["4pm"] == pytest.approx(37.5)
    assert table["Xanthi-Heraklio"]["8am"] == pytest.approx(0.005)

    show(render_table2())
    show(f"worst |ours - paper| over all 28 cells: {worst:.4f} percentage points")


def test_table2_through_snmp_pipeline(benchmark, show):
    """The same column, but measured through counters -> agent -> collector
    instead of computed directly: the deployed pipeline agrees with eq. 5."""
    from repro.database.records import LinkEntry
    from repro.database.store import ServiceDatabase
    from repro.network.grnet import apply_traffic_sample, build_grnet_topology
    from repro.snmp.collector import StatisticsService
    from repro.sim.engine import Simulator

    def measure_8am_column():
        topology = build_grnet_topology()
        apply_traffic_sample(topology, "8am")
        database = ServiceDatabase()
        for link in topology.links():
            database.register_link(
                LinkEntry(link.name, link.endpoints, link.capacity_mbps)
            )
        sim = Simulator()
        service = StatisticsService(sim, topology, database.limited_access(), period_s=60.0)
        service.start()
        sim.run(until=130.0)
        return {
            entry.link_name: 100.0 * entry.utilization
            for entry in database.link_entries()
        }

    measured = benchmark(measure_8am_column)
    direct = compute_table2_utilization_percent()
    for link_name, percent in measured.items():
        assert percent == pytest.approx(direct[link_name]["8am"], rel=1e-2, abs=1e-3)
    show("SNMP pipeline reproduces the 8am Table 2 column within 1%.")
