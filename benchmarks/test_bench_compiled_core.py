"""Compiled routing core: cold-path decision throughput vs the python path.

The array-compiled :class:`~repro.network.compiled.TopologySnapshot` targets
the *cold* path — every decision recomputes the LVN table (equations 1-4)
and the shortest-path tree, exactly what a cache-less VRA does per request.
This benchmark gates the speedup of that computation on the paper's GRNET
backbone (≥2x) and on a denser 60-node synthetic backbone (≥3x), and
reports end-to-end ``service.decide`` rates (which fold in the shared
service-layer overhead both paths pay) alongside.  The batched event engine
(``schedule_many``) is measured against sequential scheduling as well.

Equivalence is pinned elsewhere (tests/properties/test_compiled_props.py,
tests/integration/test_compiled_equivalence.py); this file is purely about
throughput.
"""

import time

from repro.core.lvn import weight_table_with_nv
from repro.core.service import ServiceConfig, VoDService
from repro.network.compiled import TopologySnapshot
from repro.network.grnet import build_grnet_topology
from repro.network.routing.dijkstra import dijkstra
from repro.network.topologies import random_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)

SYNTHETIC_NODES = 60
#: Denser than the routing-cache bench's backbone: chords dominate, so the
#: per-decision work is mostly kernel + Dijkstra rather than fixed overhead.
SYNTHETIC_EXTRA_LINKS = 120

GRNET_HOMES = ["U1", "U2", "U3", "U5", "U6"]


def routing_state_rates(topology, homes, count):
    """(compiled rate, python rate) for the per-decision routing core:
    one LVN weight table plus one Dijkstra tree per decision."""
    snapshot = TopologySnapshot(topology)
    snapshot.routing_state(homes[0], None, 10.0)  # build arrays outside timing
    compiled = python = 0.0
    for _ in range(2):  # best-of-two to shrug off scheduler noise
        start = time.perf_counter()
        for i in range(count):
            snapshot.routing_state(homes[i % len(homes)], None, 10.0)
        compiled = max(compiled, count / (time.perf_counter() - start))
        start = time.perf_counter()
        for i in range(count):
            table, _ = weight_table_with_nv(topology, None, 10.0)
            dijkstra(topology, homes[i % len(homes)], lambda link: table[link.name])
        python = max(python, count / (time.perf_counter() - start))
    return compiled, python


def service_decide_rates(topology_factory, origin, homes, count):
    """End-to-end ``service.decide`` rates, compiled on vs off, cache off."""

    def build(compiled):
        service = VoDService(
            Simulator(),
            topology_factory(),
            ServiceConfig(routing_cache_size=0, compiled_routing=compiled),
        )
        service.seed_title(origin, MOVIE)
        service.start()
        return service

    def rate(service):
        best = 0.0
        for _ in range(2):
            start = time.perf_counter()
            for i in range(count):
                service.decide(homes[i % len(homes)], "movie")
            best = max(best, count / (time.perf_counter() - start))
        return best

    return rate(build(True)), rate(build(False))


def test_compiled_core_speedup_grnet(benchmark, show):
    topology = build_grnet_topology()
    (core_fast, core_plain) = benchmark.pedantic(
        routing_state_rates, args=(topology, GRNET_HOMES, 5_000), rounds=1, iterations=1
    )
    svc_fast, svc_plain = service_decide_rates(
        build_grnet_topology, "U4", GRNET_HOMES, 3_000
    )
    show(
        f"Compiled core [GRNET, {topology.node_count} nodes / "
        f"{topology.link_count} links]:\n"
        f"  routing core   {core_fast:>9,.0f} decisions/s compiled vs "
        f"{core_plain:>9,.0f} python ({core_fast / core_plain:.2f}x)\n"
        f"  service.decide {svc_fast:>9,.0f} decisions/s compiled vs "
        f"{svc_plain:>9,.0f} python ({svc_fast / svc_plain:.2f}x)"
    )
    # Acceptance bar: ≥2x cold-path decision throughput on GRNET.
    assert core_fast >= 2.0 * core_plain
    assert svc_fast > svc_plain


def test_compiled_core_speedup_synthetic(benchmark, show):
    topology = random_topology(SYNTHETIC_NODES, extra_links=SYNTHETIC_EXTRA_LINKS)
    homes = [f"N{i}" for i in range(1, SYNTHETIC_NODES)]
    (core_fast, core_plain) = benchmark.pedantic(
        routing_state_rates, args=(topology, homes, 1_000), rounds=1, iterations=1
    )
    svc_fast, svc_plain = service_decide_rates(
        lambda: random_topology(SYNTHETIC_NODES, extra_links=SYNTHETIC_EXTRA_LINKS),
        "N0",
        homes,
        1_000,
    )
    show(
        f"Compiled core [synthetic, {topology.node_count} nodes / "
        f"{topology.link_count} links]:\n"
        f"  routing core   {core_fast:>9,.0f} decisions/s compiled vs "
        f"{core_plain:>9,.0f} python ({core_fast / core_plain:.2f}x)\n"
        f"  service.decide {svc_fast:>9,.0f} decisions/s compiled vs "
        f"{svc_plain:>9,.0f} python ({svc_fast / svc_plain:.2f}x)"
    )
    # Acceptance bar: ≥3x cold-path decision throughput at ≥50 nodes.
    assert core_fast >= 3.0 * core_plain
    assert svc_fast > svc_plain


def test_engine_batch_scheduling(benchmark, show):
    """schedule_many vs one schedule_at per event, identical event sets."""
    count = 50_000

    def batched():
        sim = Simulator()
        sim.schedule_many(
            [(float(i % 977) + 1.0, (lambda: None)) for i in range(count)]
        )
        return sim

    def sequential():
        sim = Simulator()
        for i in range(count):
            sim.schedule(float(i % 977) + 1.0, lambda: None)
        return sim

    def measure():
        start = time.perf_counter()
        sim_a = batched()
        batch_s = time.perf_counter() - start
        start = time.perf_counter()
        sim_b = sequential()
        seq_s = time.perf_counter() - start
        assert sim_a.pending_count == sim_b.pending_count == count
        return batch_s, seq_s

    batch_s, seq_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    show(
        f"Engine batching [{count:,} events]: schedule_many {batch_s * 1e3:,.1f} ms "
        f"vs sequential {seq_s * 1e3:,.1f} ms ({seq_s / batch_s:.2f}x)"
    )
    assert batch_s < seq_s
