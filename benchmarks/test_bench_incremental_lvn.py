"""Incremental LVN maintenance under the SNMP drumbeat.

The paper's statistics modules rewrite the limited-access database every
1-2 minutes whether or not link usage moved.  Each write advances the
routing epoch, so PR 1's epoch-versioned cache flushes the LVN table and
every Dijkstra tree per round even when nothing changed.  Delta
maintenance (``routing_delta_updates``) drains the change journals
instead: an all-quiet round patches zero links and keeps every tree; a
round with one busy link reprices a handful of weight entries and
revalidates trees in place.

Two scenarios, both with bit-for-bit decision-equivalence checks:

* GRNET drumbeat — every link reports an unchanged value between
  decisions.  Acceptance bar: delta maintenance sustains at least 2x the
  full-invalidation decision rate.
* Synthetic 60-node churn — one link's traffic actually moves per round,
  so every epoch has real work; delta must still be at least as fast.
"""

import time

from repro.core.service import ServiceConfig, VoDService
from repro.database.records import LinkStats
from repro.experiments.report import render_routing_cache
from repro.network.grnet import build_grnet_topology
from repro.network.topologies import random_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)

SYNTHETIC_NODES = 60
SYNTHETIC_EXTRA_LINKS = 60


def build_drumbeat_service(topology_factory, origin_uid, delta_on):
    service = VoDService(
        Simulator(),
        topology_factory(),
        ServiceConfig(routing_cache_size=128, routing_delta_updates=delta_on),
    )
    service.seed_title(origin_uid, MOVIE)
    service.start()
    return service


def snmp_round(service, timestamp, churn_link=None, churn_mbps=0.0):
    """One statistics round: every link reports; optionally one churns."""
    if churn_link is not None:
        churn_link.set_background_mbps(churn_mbps)
    db = service.database
    for link in service.topology.links():
        db.update_link_stats(
            link.name,
            LinkStats(
                used_mbps=link.used_mbps,
                utilization=min(link.used_mbps / link.capacity_mbps, 1.0),
                timestamp=timestamp,
            ),
        )


def drumbeat_rate(service, homes, count, churn=False):
    """Decisions/sec with a full SNMP round before every decision.

    Returns (rate, decision log) so callers can assert equivalence.
    """
    links = list(service.topology.links()) if churn else []
    decisions = []
    start = time.perf_counter()
    for i in range(count):
        if churn:
            link = links[i % len(links)]
            snmp_round(service, float(i), link, (i % 10) / 10.0 * link.capacity_mbps)
        else:
            snmp_round(service, float(i))
        d = service.decide(homes[i % len(homes)], "movie")
        decisions.append((d.home_uid, d.chosen_uid, d.path.nodes, d.cost))
    return count / (time.perf_counter() - start), decisions


def measure(topology_factory, origin_uid, homes, count, churn):
    full = build_drumbeat_service(topology_factory, origin_uid, delta_on=False)
    delta = build_drumbeat_service(topology_factory, origin_uid, delta_on=True)
    for home in homes:  # warm both caches before timing
        full.decide(home, "movie")
        delta.decide(home, "movie")
    full_rate, full_decisions = drumbeat_rate(full, homes, count, churn)
    delta_rate, delta_decisions = drumbeat_rate(delta, homes, count, churn)
    assert delta_decisions == full_decisions  # bit-for-bit under the drumbeat
    return full_rate, delta_rate, delta.vra.cache_stats


def test_incremental_lvn_speedup_grnet_drumbeat(benchmark, show):
    homes = ["U1", "U2", "U3", "U5", "U6"]
    full_rate, delta_rate, stats = benchmark.pedantic(
        measure,
        args=(build_grnet_topology, "U4", homes, 1_500, False),
        rounds=1,
        iterations=1,
    )
    show(
        f"Incremental LVN [GRNET drumbeat]: {full_rate:,.0f} decisions/s "
        f"full-invalidation vs {delta_rate:,.0f} delta "
        f"({delta_rate / full_rate:.1f}x)\n"
        + render_routing_cache(stats, title="GRNET drumbeat delta counters")
    )
    # Acceptance bar: quiet SNMP rounds must cost (almost) nothing.
    assert delta_rate >= 2.0 * full_rate
    assert stats.partial_invalidations > 0
    assert stats.full_invalidations == 0
    assert stats.dirty_links == 0  # nothing actually changed


def test_incremental_lvn_synthetic_churn(benchmark, show):
    factory = lambda: random_topology(  # noqa: E731
        SYNTHETIC_NODES, extra_links=SYNTHETIC_EXTRA_LINKS
    )
    homes = [f"N{i}" for i in range(1, SYNTHETIC_NODES, 3)]
    full_rate, delta_rate, stats = benchmark.pedantic(
        measure,
        args=(factory, "N0", homes, 300, True),
        rounds=1,
        iterations=1,
    )
    show(
        f"Incremental LVN [synthetic, {SYNTHETIC_NODES} nodes, 1 churning "
        f"link/round]: {full_rate:,.0f} decisions/s full-invalidation vs "
        f"{delta_rate:,.0f} delta ({delta_rate / full_rate:.1f}x)\n"
        + render_routing_cache(stats, title="Synthetic churn delta counters")
    )
    # Real work every epoch: delta must still never lose to the flush.
    assert delta_rate >= full_rate
    assert stats.partial_invalidations > 0
    assert stats.dirty_links > 0
    assert stats.trees_repaired > 0
