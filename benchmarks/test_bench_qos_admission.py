"""X7 — strict QoS admission (future work #1: "improving the QoS
standards that we have imposed onto the network").

The paper's service admits every request and degrades below the playback
rate when links are congested; the strict-admission extension instead
blocks requests no candidate path can sustain.  The bench loads GRNET
towards saturation with a rising request rate and regenerates the classic
trade-off curve: degraded-delivery fraction (paper behaviour) vs blocking
probability (strict admission) — admitted sessions under strict admission
stay (almost) violation-free.
"""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.storage.video import VideoTitle
from repro.workload.arrivals import PoissonArrivals

MOVIE = VideoTitle("m", size_mb=450.0, duration_s=3600.0)  # 1 Mbps


def run_day(strict: bool, requests_per_hour: float, seed: int = 5):
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=150.0,
            max_streams=64,
            use_reported_stats=False,
            strict_qos_admission=strict,
            pin_seeded_titles=True,
        ),
    )
    service.seed_title("U4", MOVIE)
    rngs = RngRegistry(seed)
    homes = ["U1", "U2", "U3", "U5", "U6"]
    arrivals = PoissonArrivals(requests_per_hour / 3600.0, rng=rngs.stream("arrivals"))
    picker = rngs.stream("homes")
    for offset in arrivals.times_until(4 * 3600.0):
        sim.schedule(
            offset,
            lambda home=picker.choice(homes): service.request_by_home(home, "m"),
        )
    sim.run(until=sim.now + 12 * 3600.0)

    records = service.sessions
    blocked = sum(
        1
        for r in records
        if r.request.failure_reason and r.request.failure_reason.startswith("qos-blocked")
    )
    completed = [r for r in records if r.completed]
    degraded = sum(1 for r in completed if r.qos_violation_count > 0)
    return {
        "requests": len(records),
        "blocked": blocked,
        "completed": len(completed),
        "degraded": degraded,
        "block_fraction": blocked / len(records) if records else 0.0,
        "degraded_fraction": degraded / len(completed) if completed else 0.0,
    }


@pytest.mark.parametrize("rate_per_hour", [4.0, 10.0, 20.0])
def test_x7_admission_tradeoff(benchmark, show, rate_per_hour):
    def run_pair():
        return run_day(False, rate_per_hour), run_day(True, rate_per_hour)

    paper, strict = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    # Paper behaviour never blocks; strict behaviour keeps admitted
    # sessions (nearly) clean.
    assert paper["blocked"] == 0
    assert strict["degraded_fraction"] <= paper["degraded_fraction"] + 1e-9
    show(
        f"X7 @{rate_per_hour:>4.0f} req/h: paper degrades "
        f"{paper['degraded_fraction']:.0%} of {paper['completed']} sessions, "
        f"blocks 0% | strict blocks {strict['block_fraction']:.0%} of "
        f"{strict['requests']} requests, degrades "
        f"{strict['degraded_fraction']:.0%} of the admitted"
    )


def test_x7_blocking_rises_with_load(benchmark, show):
    def sweep():
        return {rate: run_day(True, rate) for rate in (4.0, 10.0, 20.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fractions = [results[rate]["block_fraction"] for rate in (4.0, 10.0, 20.0)]
    assert fractions == sorted(fractions), fractions
    assert fractions[-1] > 0.0, "saturation must produce some blocking"
    show(
        "X7 blocking probability vs offered load: "
        + ", ".join(
            f"{rate:.0f}/h -> {results[rate]['block_fraction']:.0%}"
            for rate in (4.0, 10.0, 20.0)
        )
    )
