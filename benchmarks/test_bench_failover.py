"""Failover supervisor overhead: the fault-free path must stay cheap.

With ``session_failover`` on but no faults injected, the supervisor adds
exactly three things to the hot path: adopting each session process,
track/untrack bookkeeping around every transfer segment, and the
try/except wrapper on the boundary decide.  Raw A/B wall-clock deltas of
two full runs drown in scheduler noise at this scale (the same rationale
as the observability-overhead benchmark), so the bound is computed from
measured parts: count the segments an enabled run delivers, microbench
the real per-segment track/untrack cost against a live supervisor, and
compare the product with the measured supervisor-off wall time.
"""

from time import perf_counter

from repro.core.service import ServiceConfig, VoDService
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

#: Same half-hour special as the X10 flash-crowd benchmark.
SPECIAL = VideoTitle("special", size_mb=300.0, duration_s=1_800.0)

#: Acceptance bound: supervisor bookkeeping below 2% of the run's time.
MAX_OVERHEAD_FRACTION = 0.02


def run_crowd(session_failover: bool):
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=40, start_s=600.0, ramp_s=7_200.0
    )
    experiment = ServiceExperiment(
        name=f"failover-{'on' if session_failover else 'off'}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=100.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=256,
            use_reported_stats=False,
            session_failover=session_failover,
        ),
        seed_origin_uids=["U4"],
        run_until=12 * 3600.0,
    )
    started = perf_counter()
    result = run_service_experiment(experiment)
    return result, perf_counter() - started


def per_segment_cost(ops: int = 20_000) -> float:
    """Measured seconds per track/untrack pair on a live supervisor."""
    sim = Simulator()
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(use_reported_stats=False, session_failover=True),
    )
    service.seed_title("U4", SPECIAL)
    service.start()
    decision = service.decide("U2", "special")
    supervisor = service.supervisor
    probe = object()  # the supervisor only uses the session as a dict key
    started = perf_counter()
    for _ in range(ops):
        supervisor.track(probe, decision)
        supervisor.untrack(probe)
    return (perf_counter() - started) / ops


def test_fault_free_run_is_untouched_by_the_supervisor(benchmark, show):
    (result, elapsed) = benchmark.pedantic(
        lambda: run_crowd(session_failover=True), rounds=1, iterations=1
    )
    service = result.service
    assert service.supervisor is not None
    assert service.supervisor.preemption_count == 0
    assert service.supervisor.failover_count == 0
    assert service.supervisor.tracked_count == 0
    assert result.metrics.completed_count == result.metrics.session_count
    show(
        f"FAILOVER-ON: crowd of 40 in {elapsed:.2f}s wall, "
        f"0 preemptions / 0 failovers on the fault-free path"
    )


def test_supervisor_overhead_below_two_percent(benchmark, show):
    def measure():
        enabled_result, _ = run_crowd(session_failover=True)
        _, disabled_wall = run_crowd(session_failover=False)
        segments = sum(
            len(record.clusters) for record in enabled_result.service.sessions
        )
        sessions = len(enabled_result.service.sessions)
        return segments + sessions, disabled_wall

    n_ops, disabled_wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_op = per_segment_cost()
    overhead = n_ops * per_op
    fraction = overhead / disabled_wall
    show(
        f"FAILOVER overhead: {n_ops} segment ops x {per_op * 1e9:.0f} ns "
        f"= {overhead * 1e3:.2f} ms over a {disabled_wall * 1e3:.0f} ms run "
        f"-> {fraction:.3%} (bound {MAX_OVERHEAD_FRACTION:.0%})"
    )
    assert n_ops > 0
    assert fraction < MAX_OVERHEAD_FRACTION
