"""X9 — normalization-constant sensitivity (equation 4).

The paper: "The Normalization Constant suggested is an integer with a
value approaching 10."  K trades off the two LVN terms: small K amplifies
the link's own traffic (LU = LT * capacity/K grows), large K leaves the
endpoint congestion term (NV) in charge.  This bench sweeps K over every
case-study decision problem and quantifies how robust the suggested value
is: decisions are essentially insensitive near 10 and drift as K leaves
that region — evidence the suggestion is a safe default rather than a
knife-edge tuning.
"""

import itertools

import pytest

from repro.core.vra import VirtualRoutingAlgorithm
from repro.experiments.casestudy import EXPERIMENTS, run_experiment, topology_at
from repro.network.grnet import GRNET_NODES, SAMPLE_TIMES


def decisions_for_k(k: float):
    """Chosen server for every (time, home, holder-pair/triple) problem."""
    chosen = {}
    for time_label in SAMPLE_TIMES:
        topology = topology_at(time_label)
        vra = VirtualRoutingAlgorithm(topology, normalization_constant=k)
        for home in GRNET_NODES:
            others = [uid for uid in GRNET_NODES if uid != home]
            for size in (2, 3):
                for holders in itertools.combinations(others, size):
                    decision = vra.decide(home, "m", holders=list(holders))
                    chosen[(time_label, home, holders)] = decision.chosen_uid
    return chosen


def test_x9_k_sensitivity(benchmark, show):
    ks = [1.0, 2.0, 5.0, 8.0, 10.0, 12.0, 20.0, 50.0]

    def sweep():
        reference = decisions_for_k(10.0)
        agreement = {}
        for k in ks:
            if k == 10.0:
                agreement[k] = 1.0
                continue
            other = decisions_for_k(k)
            same = sum(1 for key in reference if other[key] == reference[key])
            agreement[k] = same / len(reference)
        return agreement

    agreement = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Near the suggested value the decisions barely move...
    assert agreement[8.0] >= 0.97
    assert agreement[12.0] >= 0.97
    # ...while an order of magnitude away they visibly drift.
    assert agreement[1.0] <= agreement[8.0]
    assert min(agreement[1.0], agreement[50.0]) < 1.0
    show(
        "X9 decision agreement with K=10: "
        + ", ".join(f"K={k:g} -> {agreement[k]:.3f}" for k in ks)
    )


def case_study_decisions(k: float):
    outcomes = {}
    for exp_id, spec in EXPERIMENTS.items():
        topology = topology_at(spec.time_label)
        vra = VirtualRoutingAlgorithm(topology, normalization_constant=k)
        decision = vra.decide(spec.home_uid, "m", holders=list(spec.holder_uids))
        outcomes[exp_id] = decision.chosen_uid
    return outcomes


@pytest.mark.parametrize("k", [5.0, 8.0, 10.0, 11.0])
def test_x9_case_study_decisions_stable_near_suggested_k(benchmark, show, k):
    """All four experiment outcomes are unchanged for K in [5, 11]."""
    outcomes = benchmark.pedantic(case_study_decisions, args=(k,), rounds=1, iterations=1)
    assert outcomes == {"A": "U4", "B": "U4", "C": "U3", "D": "U3"}
    show(f"X9: case-study decisions at K={k:g}: {outcomes} (unchanged)")


def test_x9_large_k_flips_case_study_decisions(benchmark, show):
    """Experiment C's two best candidates sit 0.05 LVN apart at K=10; the
    crossover lands at K ~ 11.8 (hand-derivable: the NV gap 0.294 equals
    the LU gap 3.48/K).  From K=12 on the decision flips to Xanthi — the
    upper sensitivity boundary of the paper's 'value approaching 10'
    suggestion."""
    outcomes = benchmark.pedantic(case_study_decisions, args=(12.0,), rounds=1, iterations=1)
    assert outcomes["A"] == "U4" and outcomes["B"] == "U4"
    assert outcomes["C"] == "U5"
    show(f"X9: at K=12 the case-study decisions drift: {outcomes}")
