"""F5 — the Virtual Routing Algorithm pseudocode, end to end through the
deployed service (web module -> database -> SNMP-fed VRA -> decision).

Checks that the *service-integrated* VRA (reading SNMP-reported state from
the limited-access database, polling servers for admission) reproduces the
same case-study decisions as the bare algorithm, and times the full
decision path a request would take.
"""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.experiments.casestudy import EXPERIMENTS
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle


def deploy_service(time_label: str) -> VoDService:
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, time_label)
    service = VoDService(
        sim,
        topology,
        ServiceConfig(snmp_period_s=60.0, use_reported_stats=True),
    )
    service.start()
    sim.run(until=sim.now + 130.0)  # two SNMP polls -> DB is warm
    return service


CASE_STUDY_DECISIONS = {
    # corrected Experiment A plus paper-matching B, C, D.
    "A": ("U2", ("U4", "U5"), "U4"),
    "B": ("U2", ("U4", "U5"), "U4"),
    "C": ("U1", ("U3", "U4", "U5"), "U3"),
    "D": ("U1", ("U3", "U4", "U5"), "U3"),
}


@pytest.mark.parametrize("exp_id", ["A", "B", "C", "D"])
def test_figure5_service_decision(benchmark, show, exp_id):
    spec = EXPERIMENTS[exp_id]
    home, holders, expected = CASE_STUDY_DECISIONS[exp_id]
    service = deploy_service(spec.time_label)
    title = VideoTitle(f"case-{exp_id}", size_mb=900.0, duration_s=5400.0)
    for holder in holders:
        service.seed_title(holder, title)

    decision = benchmark(service.decide, home, title.title_id)
    assert decision.chosen_uid == expected
    show(
        f"F5[{exp_id}]: service VRA at {spec.time_label} from {home} over "
        f"SNMP-reported state -> {decision.chosen_uid} via "
        f"{decision.path.as_label()} (cost {decision.cost:.4f})"
    )


def test_figure5_home_shortcut_is_constant_time(benchmark):
    service = deploy_service("8am")
    title = VideoTitle("local-movie", size_mb=900.0, duration_s=5400.0)
    service.seed_title("U2", title)
    decision = benchmark(service.decide, "U2", "local-movie")
    assert decision.served_locally
    assert decision.cost == 0.0


def test_figure5_decision_rate(benchmark, show):
    """Throughput: full decisions per second on the 6-node backbone."""
    service = deploy_service("4pm")
    title = VideoTitle("m", size_mb=900.0, duration_s=5400.0)
    for holder in ("U3", "U4", "U5"):
        service.seed_title(holder, title)

    def hundred_decisions():
        for _ in range(100):
            service.decide("U1", "m")

    benchmark(hundred_decisions)
    show(
        "F5: a full VRA decision = LVN table + Dijkstra + candidate scan; "
        "see timing row (100 decisions per round)."
    )
