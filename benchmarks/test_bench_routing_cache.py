"""Routing-cache throughput: decisions/sec cold vs. warm, cache on vs. off.

The VRA's hot path — LVN weight table (equations 1-4) plus a Dijkstra run —
only has new inputs when the routing epoch advances (an SNMP round lands in
the limited-access database, a link fails, the topology grows).  The
epoch-versioned routing cache reuses both between epochs, which this
benchmark quantifies on the paper's GRNET backbone and on a larger
synthetic backbone, and verifies bit-for-bit decision equivalence on a
full flash-crowd scenario with dynamic switching.
"""

import time

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.experiments.harness import ServiceExperiment, build_service
from repro.experiments.report import render_routing_cache
from repro.network.grnet import build_grnet_topology
from repro.network.topologies import random_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)

#: ≥50 nodes per the acceptance criteria; chords keep Dijkstra non-trivial.
SYNTHETIC_NODES = 60
SYNTHETIC_EXTRA_LINKS = 60


def build_cache_service(topology_factory, origin_uid, cache_size):
    service = VoDService(
        Simulator(),
        topology_factory(),
        ServiceConfig(routing_cache_size=cache_size),
    )
    service.seed_title(origin_uid, MOVIE)
    service.start()
    return service


def decisions_per_second(service, homes, count):
    start = time.perf_counter()
    for i in range(count):
        service.decide(homes[i % len(homes)], "movie")
    return count / (time.perf_counter() - start)


def measure_topology(topology_factory, origin_uid, homes, count):
    """(cache-off rate, warm cache-on rate, cache stats) for one topology."""
    off = build_cache_service(topology_factory, origin_uid, cache_size=0)
    on = build_cache_service(topology_factory, origin_uid, cache_size=128)
    # Warm the cache (and fault in every home's tree) before timing.
    for home in homes:
        on.decide(home, "movie")
    off_rate = decisions_per_second(off, homes, count)
    on_rate = decisions_per_second(on, homes, count)
    return off_rate, on_rate, on.vra.cache_stats


def test_routing_cache_speedup_grnet(benchmark, show):
    homes = ["U1", "U2", "U3", "U5", "U6"]
    off_rate, on_rate, stats = benchmark.pedantic(
        measure_topology,
        args=(build_grnet_topology, "U4", homes, 3_000),
        rounds=1,
        iterations=1,
    )
    show(
        f"Routing cache [GRNET, 6 nodes]: {off_rate:,.0f} decisions/s cache-off "
        f"vs {on_rate:,.0f} warm cache-on ({on_rate / off_rate:.1f}x)\n"
        + render_routing_cache(stats, title="GRNET cache counters")
    )
    assert on_rate > off_rate


def test_routing_cache_speedup_synthetic(benchmark, show):
    factory = lambda: random_topology(  # noqa: E731
        SYNTHETIC_NODES, extra_links=SYNTHETIC_EXTRA_LINKS
    )
    homes = [f"N{i}" for i in range(1, SYNTHETIC_NODES)]
    off_rate, on_rate, stats = benchmark.pedantic(
        measure_topology,
        args=(factory, "N0", homes, 2_000),
        rounds=1,
        iterations=1,
    )
    show(
        f"Routing cache [synthetic, {SYNTHETIC_NODES} nodes]: "
        f"{off_rate:,.0f} decisions/s cache-off vs {on_rate:,.0f} warm "
        f"cache-on ({on_rate / off_rate:.1f}x)\n"
        + render_routing_cache(stats, title="Synthetic cache counters")
    )
    # Acceptance bar: ≥5x decisions/sec on the warm path vs. cache-off.
    assert on_rate >= 5.0 * off_rate
    assert stats.hits > 0 and stats.misses > 0


def run_flash_crowd(cache_size):
    """Flash crowd with dynamic switching; returns (decisions, service)."""
    scenario = flash_crowd_scenario(
        "U2", VideoTitle("special", size_mb=200.0, duration_s=1_200.0),
        viewer_count=15, start_s=300.0, ramp_s=1_800.0,
    )
    experiment = ServiceExperiment(
        name=f"cache-equiv-{cache_size}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=50.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=64,
            routing_cache_size=cache_size,
        ),
        seed_origin_uids=["U4"],
        run_until=5 * 3600.0,
    )
    service = build_service(experiment)
    decisions = []

    def capture(decide):
        def wrapped():
            decision = decide()
            decisions.append(
                (
                    decision.home_uid,
                    decision.title_id,
                    decision.chosen_uid,
                    decision.path.nodes,
                    decision.cost,
                )
            )
            return decision

        return wrapped

    service.decide_wrapper = capture
    service.start()
    for event in scenario.events:
        service.sim.schedule_at(
            event.time_s,
            lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
            name=f"request:{event.client_id}",
        )
    service.sim.run(until=5 * 3600.0)
    return decisions, service


def test_routing_cache_equivalence_flash_crowd(benchmark, show):
    def run_pair():
        return run_flash_crowd(128), run_flash_crowd(0)

    (cached_decisions, cached_service), (plain_decisions, _) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert len(cached_decisions) == len(plain_decisions) > 0
    assert cached_decisions == plain_decisions  # chosen_uid, path, cost

    stats = cached_service.vra.cache_stats
    show(
        f"Flash-crowd equivalence: {len(cached_decisions)} VRA decisions "
        f"bit-identical with cache on/off\n"
        + render_routing_cache(stats, title="Flash-crowd cache counters")
    )
    assert stats.hits > 0
