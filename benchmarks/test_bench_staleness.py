"""X8 — SNMP staleness ablation.

The paper picks a 1-2 minute statistics period as "a reasonable interval
compromising between the mutation rate of network characteristics and the
imposed overhead".  This bench quantifies that compromise: while the
Table 2 day replays (traffic morphing continuously 8am -> 6pm), the
database-fed VRA's decisions are compared against a ground-truth VRA at
many instants, for poll periods from 30 s to 2 h.  Fresh stats track the
optimum; stale stats increasingly disagree.
"""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.core.vra import VirtualRoutingAlgorithm
from repro.network.grnet import build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.traces import Table2Replayer

#: Decision problems sampled through the day: (home, holder set).
PROBLEMS = [
    ("U2", ("U4", "U5")),
    ("U1", ("U3", "U4", "U5")),
    ("U5", ("U1", "U2")),
    ("U6", ("U2", "U4")),
    ("U3", ("U1", "U6")),
]

#: Every 20 simulated minutes between 8:20 and 18:00.
SAMPLE_INSTANTS = [8 * 3600.0 + 1200.0 * i for i in range(1, 30)]


def agreement_for_period(period_s: float) -> float:
    """Fraction of sampled decisions equal to the ground-truth optimum."""
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    service = VoDService(
        sim,
        topology,
        ServiceConfig(snmp_period_s=period_s, use_reported_stats=True),
    )
    Table2Replayer(sim, topology, update_period_s=30.0).start()
    service.start()
    truth_vra = VirtualRoutingAlgorithm(topology)  # live ground truth

    movie = VideoTitle("m", size_mb=900.0, duration_s=5400.0)
    holders_seen = set()
    for _, holders in PROBLEMS:
        for holder in holders:
            if holder not in holders_seen:
                service.seed_title(holder, movie)
                holders_seen.add(holder)

    matches = 0
    total = 0
    for instant in SAMPLE_INSTANTS:
        sim.run(until=instant)
        for home, holders in PROBLEMS:
            if home in holders:
                continue
            reported = service.vra.decide(home, "m", holders=list(holders))
            truth = truth_vra.decide(home, "m", holders=list(holders))
            total += 1
            if reported.chosen_uid == truth.chosen_uid:
                matches += 1
    return matches / total


def test_x8_staleness_curve(benchmark, show):
    periods = [30.0, 90.0, 300.0, 1_800.0, 7_200.0]

    def sweep():
        return {period: agreement_for_period(period) for period in periods}

    agreement = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Fresh statistics track the ground-truth optimum almost perfectly...
    assert agreement[30.0] >= 0.95
    # ...the paper's 1-2 minute choice stays close...
    assert agreement[90.0] >= 0.9
    # ...and two-hour-old statistics are distinctly worse than fresh ones.
    assert agreement[7_200.0] <= agreement[30.0] - 0.05
    # The curve is (weakly) monotone from freshest to stalest.
    values = [agreement[p] for p in periods]
    assert all(a >= b - 0.04 for a, b in zip(values, values[1:])), agreement

    show(
        "X8 decision agreement with ground truth vs SNMP period: "
        + ", ".join(f"{int(p)}s -> {agreement[p]:.2f}" for p in periods)
        + "  (the paper's 1-2 min choice sits on the flat part of the curve)"
    )
