"""T5 — Table 5: the Dijkstra step table for Experiment B (10am, client at
Patra, title at Thessaloniki and Xanthi).

Experiment B's printed table is consistent with a correct Dijkstra, so
this bench asserts row-level agreement: step-1 tentative distances, the
settlement order, the final distances/paths for every destination, and
the download decision (Thessaloniki via U2,U3,U4 at ~1.007).
"""

import pytest

from repro.experiments.casestudy import run_experiment
from repro.experiments.report import render_experiment


def test_table5_experiment_b(benchmark, show):
    outcome = benchmark(run_experiment, "B")
    steps = outcome.decision.dijkstra_result.steps

    # Step 1: D3=0.45 via U2,U3 and D1=0.632 via U2,U1; others "R".
    first = steps[0]
    assert first.settled == ("U2",)
    assert first.distances["U3"] == pytest.approx(0.455, abs=6e-3)
    assert first.distances["U1"] == pytest.approx(0.632, abs=6e-3)
    assert first.paths["U3"] == ("U2", "U3")
    assert first.paths["U1"] == ("U2", "U1")
    for uid in ("U4", "U5", "U6"):
        assert uid not in first.distances

    # Settlement order matches the paper's "Nodes" column:
    # {U2} {U2,U3} {U2,U3,U1} {U2,U3,U1,U4} {...,U6} {...,U5}.
    assert steps[-1].settled == ("U2", "U3", "U1", "U4", "U6", "U5")

    # Final rows match Table 5.
    final = steps[-1]
    assert final.distances["U4"] == pytest.approx(1.007, abs=6e-3)
    assert final.paths["U4"] == ("U2", "U3", "U4")
    assert final.distances["U5"] == pytest.approx(1.308, abs=8e-3)
    assert final.paths["U5"] == ("U2", "U1", "U6", "U5")
    assert final.distances["U6"] == pytest.approx(1.178, abs=8e-3)
    assert final.paths["U6"] == ("U2", "U1", "U6")

    # Decision: download from Thessaloniki over U2,U3,U4.
    assert outcome.chosen_uid == "U4"
    assert outcome.matches_printed and outcome.matches_corrected

    show(render_experiment(outcome))
    show(
        "Every Table 5 row reproduces within the paper's rounding; the "
        "decision (Thessaloniki via U2,U3,U4) matches exactly."
    )
