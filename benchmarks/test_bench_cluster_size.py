"""X4 — cluster-size sweep.

The paper: "It is obvious that the size of the cluster c as determined in
the description of the DMA, plays a decisive part in dealing with network
congestion according to this latest technique."  The cluster is the
switching granularity: with one giant cluster the session can never react
to a mid-stream congestion change; with small clusters it escapes within
one cluster time.  This bench sweeps c over the better-source-appears
scenario and regenerates that trade-off curve, plus the decision-overhead
side of the trade (more clusters = more VRA runs).
"""

import pytest

from _helpers import SWITCHING_TITLE, run_better_source_scenario

#: c sweep: 1500 MB title -> 60, 15, 6, 3, 1 clusters.
CLUSTER_SIZES_MB = [25.0, 100.0, 250.0, 500.0, 1_500.0]


def run_sweep():
    results = {}
    for cluster_mb in CLUSTER_SIZES_MB:
        record = run_better_source_scenario(cluster_mb)
        results[cluster_mb] = record
    return results


def test_x4_cluster_size_sweep(benchmark, show):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    playback_s = SWITCHING_TITLE.duration_s
    durations = {
        c: r.completed_at - r.request.submitted_at for c, r in results.items()
    }

    # The paper's claim, made precise: the cluster size bounds the
    # congestion damage.  At worst, the remainder of the in-flight
    # cluster crawls at the floor rate before the next VRA decision can
    # switch away, so the excess over pure playback time is bounded by
    # one cluster's worth of floor-rate transfer.
    from repro.core.session import MIN_TRANSFER_MBPS

    for cluster_mb in CLUSTER_SIZES_MB:
        excess = durations[cluster_mb] - playback_s
        bound = cluster_mb * 8.0 / MIN_TRANSFER_MBPS + 2 * 60.0
        assert -1e-6 <= excess <= bound, (cluster_mb, excess, bound)

    # The single-cluster session cannot switch at all and pays the full
    # crawl...
    whole = results[1_500.0]
    assert whole.switch_count == 0
    assert whole.servers_used == ["U4"]
    assert durations[1_500.0] > 10 * durations[25.0]
    # ...while every multi-cluster session escapes to the Athens copy.
    for cluster_mb in (25.0, 100.0, 250.0):
        assert results[cluster_mb].switch_count >= 1
        assert "U1" in results[cluster_mb].servers_used

    # Small clusters keep the download at playback speed (zero stall);
    # the whole-video transfer cannot start playback until every byte
    # arrived over the crawling route (56 h of startup delay).
    assert results[25.0].stall_s == pytest.approx(0.0, abs=1.0)
    assert whole.startup_delay_s > 10 * 3_600.0

    lines = [
        "X4 cluster-size sweep (1500 MB title, route poisoned at t+20 min):",
        f"  {'c (MB)':>8} {'clusters':>8} {'VRA runs':>8} {'switches':>8} "
        f"{'download (h)':>12} {'stall (min)':>11}",
    ]
    for cluster_mb in CLUSTER_SIZES_MB:
        record = results[cluster_mb]
        lines.append(
            f"  {cluster_mb:8.0f} {len(record.clusters):8d} "
            f"{len(record.clusters):8d} {record.switch_count:8d} "
            f"{durations[cluster_mb] / 3600.0:12.2f} "
            f"{record.stall_s / 60.0:11.1f}"
        )
    show("\n".join(lines))


def test_x4_decision_overhead_scales_inversely_with_c(benchmark, show):
    """The cost of fine granularity: VRA decisions per session = p."""
    records = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for cluster_mb, record in records.items():
        expected_clusters = -(-SWITCHING_TITLE.size_mb // cluster_mb)
        assert len(record.clusters) == int(expected_clusters)
    show(
        "X4: decisions per session "
        + ", ".join(
            f"c={c:.0f} -> {len(records[c].clusters)}" for c in CLUSTER_SIZES_MB
        )
    )
