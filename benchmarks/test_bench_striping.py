"""F3 — the disk storage architecture (paper Figure 3).

Regenerates the two striping regimes the paper describes (n > p and
n < p), verifies the cyclic placement and capacity-oriented balance, and
times layout computation and whole-array store/remove cycles.
"""

import pytest

from repro.storage.array import DiskArray
from repro.storage.striping import StripingLayout, striping_layout
from repro.storage.video import VideoTitle


def test_figure3_regimes(benchmark, show):
    def compute_regimes():
        return {
            # n > p: "one video part is stored in each one of the first p
            # hard disks".
            "n8_p5": striping_layout(part_count=5, disk_count=8),
            # n < p: "the first n video parts are stored in the n available
            # disks and the rest p-n parts ... starting from disk 1".
            "n4_p11": striping_layout(part_count=11, disk_count=4),
            "n1_p6": striping_layout(part_count=6, disk_count=1),
        }

    layouts = benchmark(compute_regimes)
    assert layouts["n8_p5"] == [0, 1, 2, 3, 4]
    assert layouts["n4_p11"] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2]
    assert layouts["n1_p6"] == [0] * 6

    lines = ["F3 striping regimes (cluster index -> disk):"]
    for name, layout in layouts.items():
        lines.append(f"  {name}: {layout}")
    show("\n".join(lines))


def test_figure3_array_balance(benchmark, show):
    """Storing a large video over many disks balances within one cluster."""
    video = VideoTitle("big", size_mb=1_800.0, duration_s=7_200.0)

    def store_cycle():
        array = DiskArray(disk_count=8, disk_capacity_mb=400.0, cluster_mb=64.0)
        array.store(video)
        usage = [disk.used_mb for disk in array.disks()]
        array.remove("big")
        return usage

    usage = benchmark(store_cycle)
    assert max(usage) - min(usage) <= 64.0 + 1e-9
    assert sum(usage) == pytest.approx(1_800.0)
    show(
        "F3: 1800 MB / 64 MB clusters over 8 disks -> per-disk MB "
        + str([round(u, 1) for u in usage])
    )


def test_striping_layout_throughput(benchmark):
    """Layout math is cheap enough to run per DMA pass (micro-benchmark)."""
    result = benchmark(
        StripingLayout.for_video, "v", 2_000.0, 16.0, 16
    )
    assert result.cluster_count == 125


def test_cluster_size_layout_tradeoff(benchmark, show):
    """Smaller clusters -> more parts -> finer balance; the table the
    paper's 'size of the cluster c plays a decisive part' remark implies."""

    def sweep():
        rows = []
        for cluster_mb in (16.0, 64.0, 256.0, 1_024.0):
            layout = StripingLayout.for_video("v", 2_048.0, cluster_mb, 8)
            per_disk = layout.per_disk_mb()
            spread = max(per_disk.values()) - min(
                per_disk.get(d, 0.0) for d in range(8)
            )
            rows.append((cluster_mb, layout.cluster_count, spread))
        return rows

    rows = benchmark(sweep)
    spreads = [spread for _, _, spread in rows]
    assert spreads == sorted(spreads), "imbalance must grow with cluster size"
    lines = ["F3 cluster-size vs balance (2048 MB video, 8 disks):"]
    for cluster_mb, parts, spread in rows:
        lines.append(
            f"  c={cluster_mb:6.0f} MB -> p={parts:4d} clusters, "
            f"max-min per-disk spread {spread:7.1f} MB"
        )
    show("\n".join(lines))
