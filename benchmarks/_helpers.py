"""Shared scenario builders for the system-level benchmarks.

The implementations live in :mod:`repro.experiments.sweeps` (they are also
used by the ``sweep-cluster-size`` CLI command); this module re-exports
them so benchmark files can import locally.
"""

from repro.experiments.sweeps import (  # noqa: F401
    SWITCHING_TITLE,
    better_source_sweep,
    run_better_source_scenario,
)
