"""M1 — substrate micro-benchmarks.

Not paper artefacts: these keep the foundational layers honest, since every
experiment's wall-clock rests on them.  Regressions here inflate every
other benchmark, so the suite pins rough throughput floors.
"""

import pytest

from repro.core.lvn import weight_table
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.network.routing.dijkstra import dijkstra
from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire throughput of the event heap."""

    def run_events():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1

        for i in range(20_000):
            sim.schedule(float(i % 97) / 10.0, tick)
        sim.run()
        return count["n"]

    fired = benchmark(run_events)
    assert fired == 20_000


def test_engine_nested_scheduling(benchmark):
    """Self-rescheduling callbacks (the periodic-task pattern)."""

    def run_chain():
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run_chain) == 10_000


def test_process_context_switch_rate(benchmark):
    """Generator-process resume throughput."""

    def run_processes():
        sim = Simulator()
        total = {"n": 0}

        def worker():
            for _ in range(500):
                yield Delay(1.0)
                total["n"] += 1

        for _ in range(20):
            Process(sim, worker())
        sim.run()
        return total["n"]

    assert benchmark(run_processes) == 10_000


def test_lvn_snapshot_rate(benchmark):
    """Full weight-table snapshots per second on the GRNET backbone."""
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "4pm")

    def hundred_snapshots():
        for _ in range(100):
            weight_table(topology)

    benchmark(hundred_snapshots)


def test_dijkstra_rate(benchmark):
    """Shortest-path-tree computations per second on GRNET."""
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "4pm")
    weights = weight_table(topology)

    def hundred_trees():
        for _ in range(100):
            dijkstra(topology, "U1", lambda l: weights[l.name])

    benchmark(hundred_trees)
