"""X1 — dynamic mid-stream switching ablation.

The paper: "If the optimal server changes due to the change of certain
network features during the downloading of a certain cluster, then the
next cluster will be requested by the new optimal server."  This bench
runs the deterministic better-source-appears scenario (see _helpers) with
three switching cadences:

* ``always``   — the paper's per-cluster re-decision;
* ``period:4`` — re-decide every 4 clusters;
* ``never``    — freeze the first decision (the behaviour the paper warns
  "compromises the system's attempts to impose some kind of QoS").

Per-cluster switching must escape the congested route and finish the
download dramatically earlier with less stall time.
"""

import pytest

from _helpers import SWITCHING_TITLE, run_better_source_scenario
from repro.baselines.switching import NeverSwitch, PeriodicRecompute

CLUSTER_MB = 100.0


def run_policy(policy_key: str):
    wrapper = {
        "always": None,
        "never": NeverSwitch,
        "period:4": lambda decide: PeriodicRecompute(decide, 4),
    }[policy_key]
    return run_better_source_scenario(CLUSTER_MB, decide_wrapper=wrapper)


@pytest.mark.parametrize("policy_key", ["always", "period:4", "never"])
def test_x1_policy_runs(benchmark, show, policy_key):
    record = benchmark.pedantic(run_policy, args=(policy_key,), rounds=1, iterations=1)
    assert record.completed
    duration = record.completed_at - record.request.submitted_at
    show(
        f"X1[{policy_key:9s}]: servers={record.servers_used} "
        f"switches={record.switch_count} "
        f"download={duration / 3600.0:.2f} h "
        f"stall={record.stall_s / 60.0:.1f} min "
        f"qos-violating clusters={record.qos_violation_count}/"
        f"{len(record.clusters)}"
    )


def test_x1_switching_beats_frozen_decision(benchmark, show):
    def run_pair():
        return run_policy("always"), run_policy("never")

    always, never = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    assert always.completed and never.completed
    # The paper's behaviour actually switches away from the poisoned route.
    assert always.switch_count >= 1
    assert set(always.servers_used) == {"U4", "U1"}
    # The frozen decision rides the congested route to the end.
    assert never.switch_count == 0
    assert never.servers_used == ["U4"]

    always_time = always.completed_at - always.request.submitted_at
    never_time = never.completed_at - never.request.submitted_at
    assert always_time < never_time / 2.0, (always_time, never_time)
    assert always.stall_s < never.stall_s
    assert always.qos_violation_count < never.qos_violation_count
    show(
        f"X1: per-cluster VRA finishes in {always_time / 3600.0:.2f} h with "
        f"{always.stall_s / 60.0:.1f} min stall; frozen decision needs "
        f"{never_time / 3600.0:.2f} h with {never.stall_s / 60.0:.1f} min "
        f"stall ({never_time / always_time:.1f}x slower)."
    )


def test_x1_recompute_period_monotonicity(benchmark, show):
    """Coarser re-decision periods react later: download time is
    non-decreasing in the recompute period."""

    def run_periods():
        results = {}
        for period in (1, 2, 8, 32):
            record = run_better_source_scenario(
                CLUSTER_MB,
                decide_wrapper=(
                    None
                    if period == 1
                    else (lambda decide, p=period: PeriodicRecompute(decide, p))
                ),
            )
            results[period] = record.completed_at - record.request.submitted_at
        return results

    durations = benchmark.pedantic(run_periods, rounds=1, iterations=1)
    ordered = [durations[p] for p in (1, 2, 8, 32)]
    assert all(a <= b + 1e-6 for a, b in zip(ordered, ordered[1:])), durations
    show(
        "X1 recompute-period sweep (download hours): "
        + ", ".join(f"every {p} clusters = {durations[p] / 3600.0:.2f}" for p in (1, 2, 8, 32))
    )
