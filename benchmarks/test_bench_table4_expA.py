"""T4 — Table 4: the Dijkstra step table for Experiment A (8am, client at
Patra, title at Thessaloniki and Xanthi).

The paper's printed Table 4 contains a missed relaxation (DESIGN.md §5
erratum 1): it reports the best U2->U4 path as U2,U1,U4 at 0.365 and
therefore downloads from Xanthi (U5, 0.315).  A correct Dijkstra over the
paper's own weights finds U2,U3,U4 at ~0.218 and downloads from
Thessaloniki.  This bench regenerates the correct table, asserts both the
corrected decision and agreement with the paper on every row the paper got
right, and prints the delta.
"""

import pytest

from repro.experiments.casestudy import run_experiment
from repro.experiments.report import render_experiment


def test_table4_experiment_a(benchmark, show):
    outcome = benchmark(run_experiment, "A")

    steps = outcome.decision.dijkstra_result.steps
    assert len(steps) == 6

    # Step 1 matches the paper's first row exactly: D3=0.075, D1=0.083,
    # everything else unreached ("R").
    first = steps[0]
    assert first.settled == ("U2",)
    assert first.distances["U3"] == pytest.approx(0.075, abs=1e-3)
    assert first.distances["U1"] == pytest.approx(0.083, abs=1e-3)
    for uid in ("U4", "U5", "U6"):
        assert uid not in first.distances

    # Rows the paper got right: D5 and D6.
    final = steps[-1]
    assert final.distances["U5"] == pytest.approx(0.315, abs=2e-3)
    assert final.paths["U5"] == ("U2", "U1", "U6", "U5")
    assert final.distances["U6"] == pytest.approx(0.195, abs=2e-3)
    assert final.paths["U6"] == ("U2", "U1", "U6")

    # The erratum: the correct D4 entry and the flipped decision.
    assert final.distances["U4"] == pytest.approx(0.2178, abs=1e-3)
    assert final.paths["U4"] == ("U2", "U3", "U4")
    assert outcome.chosen_uid == "U4"
    assert outcome.expectation.printed_chosen == "U5"
    assert outcome.matches_corrected and not outcome.matches_printed

    show(render_experiment(outcome))
    show(
        "Paper printed D4 = 0.365 via U2,U1,U4 (missed relaxation through "
        "U3); correct Dijkstra gives "
        f"D4 = {final.distances['U4']:.4f} via U2,U3,U4, flipping the "
        "decision from Xanthi (U5) to Thessaloniki (U4)."
    )
