"""X5 — strip-level distributed caching (the paper's future work #2).

"We could have even better results if the various videos were stripped
not on the hard disks of one server but of different servers according to
the popularity ... the most popular technique ... will not be imposed on
whole videos but on video strips."

This bench replays the same regional Zipf workload under the whole-video
DMA and under the strip-granular variant, holding the per-server cache
budget constant, and sweeps the budget.  Strip caching wins whenever the
budget leaves whole-title caching with stranded capacity (the fractional
vs 0/1 knapsack gap), converging to the same numbers once everything fits.
"""

import pytest

from repro.extensions.strip_caching import StripCachingEvaluator
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.storage.video import VideoTitle
from repro.workload.scenarios import regional_scenario

NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]
TITLE_MB = 150.0


def build_workload():
    catalog = [
        VideoTitle(f"t{i:02d}", size_mb=TITLE_MB, duration_s=3600.0) for i in range(18)
    ]
    origins = {v.title_id: NODES[i % len(NODES)] for i, v in enumerate(catalog)}
    scenario = regional_scenario(
        NODES,
        requests_per_node=60,
        horizon_s=8 * 3600.0,
        zipf_exponent=1.0,
        regional_shift=3,
        seed=23,
        catalog=catalog,
    )
    events = [(e.home_uid, e.title_id) for e in scenario.events]
    return catalog, origins, events


def run_granularity(granularity: str, cache_mb: float):
    catalog, origins, events = build_workload()
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    evaluator = StripCachingEvaluator(
        topology,
        catalog,
        origins,
        cluster_mb=25.0,
        cache_capacity_mb=cache_mb,
        granularity=granularity,
    )
    return evaluator.replay(events)


def test_x5_strip_vs_title_at_awkward_budget(benchmark, show):
    def run_pair():
        return run_granularity("strip", 400.0), run_granularity("title", 400.0)

    strip, title = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    # 400 MB holds 2.67 titles: whole-title caching strands 100 MB.
    assert strip.byte_hit_ratio > title.byte_hit_ratio
    assert strip.megabyte_hops < title.megabyte_hops
    show(
        f"X5 @400MB budget: strip hit={strip.byte_hit_ratio:.3f} "
        f"MB-hops={strip.megabyte_hops:.0f} | whole-title "
        f"hit={title.byte_hit_ratio:.3f} MB-hops={title.megabyte_hops:.0f} "
        f"-> strip saves {1 - strip.megabyte_hops / title.megabyte_hops:.1%} transport"
    )


def test_x5_budget_sweep(benchmark, show):
    budgets = [150.0, 250.0, 400.0, 700.0, 1_300.0]

    def sweep():
        rows = []
        for budget in budgets:
            strip = run_granularity("strip", budget)
            title = run_granularity("title", budget)
            rows.append((budget, strip, title))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "X5 budget sweep (18 x 150 MB titles, Zipf(1.0), regional shift 3):",
        f"  {'budget MB':>9} {'strip hit':>9} {'title hit':>9} "
        f"{'strip MBh':>10} {'title MBh':>10}",
    ]
    for budget, strip, title in rows:
        # Strip caching never loses to whole-title caching at equal budget.
        assert strip.byte_hit_ratio >= title.byte_hit_ratio - 1e-9, budget
        lines.append(
            f"  {budget:>9.0f} {strip.byte_hit_ratio:>9.3f} "
            f"{title.byte_hit_ratio:>9.3f} {strip.megabyte_hops:>10.0f} "
            f"{title.megabyte_hops:>10.0f}"
        )
    # Hit ratio grows with budget under both policies.
    strip_hits = [s.byte_hit_ratio for _, s, _ in rows]
    assert strip_hits == sorted(strip_hits)
    show("\n".join(lines))


def test_x5_prefix_convergence(benchmark, show):
    """The emergent behaviour the paper hopes for: under pressure a node
    holds *partial* popular titles instead of few whole ones."""

    def run():
        catalog, origins, events = build_workload()
        topology = build_grnet_topology()
        evaluator = StripCachingEvaluator(
            topology, catalog, origins, cluster_mb=25.0,
            cache_capacity_mb=400.0, granularity="strip",
        )
        evaluator.replay(events)
        return evaluator

    evaluator = benchmark.pedantic(run, rounds=1, iterations=1)
    catalog, _, _ = build_workload()
    partials = 0
    for node in NODES:
        for video in catalog:
            held = evaluator.resident_strip_count(node, video.title_id)
            total = int(TITLE_MB // 25.0)
            if 0 < held < total:
                partials += 1
    assert partials > 0, "expected at least one partially cached title"
    show(f"X5: {partials} (node, title) pairs hold a partial copy — capacity never stranded")
