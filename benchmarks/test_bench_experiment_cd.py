"""EC/ED — Experiments C and D: 4pm and 6pm requests from Athens with the
title at Ioannina, Thessaloniki and Xanthi.

The paper reports, for each experiment, the best path and cost to each of
the three candidate servers and the decision (Ioannina via U1,U2,U3 both
times).  This bench regenerates all six candidate rows and both decisions.
"""

import pytest

from repro.experiments.casestudy import run_all_experiments, run_experiment
from repro.experiments.report import render_experiment

PAPER_ROWS = {
    "C": {
        "U4": (("U1", "U4"), 1.5433),
        "U5": (("U1", "U6", "U5"), 1.274),
        "U3": (("U1", "U2", "U3"), 1.222),
    },
    "D": {
        "U4": (("U1", "U4"), 1.4824),
        "U5": (("U1", "U6", "U5"), 1.3574),
        "U3": (("U1", "U2", "U3"), 1.236),
    },
}


@pytest.mark.parametrize("exp_id", ["C", "D"])
def test_experiment_cd(benchmark, show, exp_id):
    outcome = benchmark(run_experiment, exp_id)

    for candidate, (path, cost) in PAPER_ROWS[exp_id].items():
        assert outcome.candidate_paths[candidate] == path, candidate
        assert outcome.candidate_costs[candidate] == pytest.approx(cost, abs=3e-3), candidate

    assert outcome.chosen_uid == "U3"
    assert outcome.decision.path.nodes == ("U1", "U2", "U3")
    assert outcome.matches_printed and outcome.matches_corrected
    show(render_experiment(outcome))


def test_all_four_decisions_summary(benchmark, show):
    outcomes = benchmark(run_all_experiments, False)
    decisions = {eid: o.chosen_uid for eid, o in outcomes.items()}
    # B, C, D match the paper; A is corrected (DESIGN.md §5 erratum 1).
    assert decisions == {"A": "U4", "B": "U4", "C": "U3", "D": "U3"}
    printed = {eid: o.expectation.printed_chosen for eid, o in outcomes.items()}
    assert printed == {"A": "U5", "B": "U4", "C": "U3", "D": "U3"}
    show(
        "Decisions — ours: "
        + ", ".join(f"{e}:{d}" for e, d in sorted(decisions.items()))
        + " | paper printed: "
        + ", ".join(f"{e}:{d}" for e, d in sorted(printed.items()))
        + " (A corrected per erratum)"
    )
