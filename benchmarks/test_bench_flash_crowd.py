"""X10 — flash-crowd absorption, plus the decision-path burst benchmark.

The DMA's "most popular" concept, stress-tested: a crowd of 40 viewers at
one node requests the same title over two hours.  With the DMA, the first
fetch pays the network cost (viewers overlapping that first download still
fetch remotely, then switch to the local copy per cluster once it commits)
and everyone afterwards is served locally; without caching every viewer
drags the title across the backbone and the 2 Mb links collapse.

The second half measures the *control plane* under the same pressure: a
burst of identical requests is exactly the workload the whole-decision
memo was built for — between faults and SNMP rounds every request hits
the same (epoch, holders, headroom-bucket) key, so the service answers
from the decision cache instead of re-running LVN + Dijkstra + the
min-cost scan per viewer.  Acceptance: decisions bit-for-bit identical
across cache-off / routing-cache-only / decision-cache, and the warm
decision-cache rate at least 5x the routing-cache-only rate (the CI
smoke gate; the PR target of 10x the recorded PR-1 warm rate is shown
in the smoke output and asserted loosely at 2x to stay robust on slow
CI runners).
"""

import time

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.experiments.report import render_decision_cache
from repro.metrics.analysis import analyze_sessions
from repro.network.grnet import build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

#: A half-hour news special: modest size so one transfer fits a 2 Mb link.
SPECIAL = VideoTitle("special", size_mb=300.0, duration_s=1_800.0)


def run_crowd(cache_key: str, viewer_count: int = 40, ramp_s: float = 7_200.0):
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=viewer_count, start_s=600.0, ramp_s=ramp_s
    )
    experiment = ServiceExperiment(
        name=f"flash-{cache_key}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=100.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=256,
            use_reported_stats=False,
        ),
        cache=cache_key,
        seed_origin_uids=["U4"],  # the title starts at Thessaloniki only
        run_until=12 * 3600.0,
    )
    return run_service_experiment(experiment)


@pytest.mark.parametrize("cache_key", ["dma", "nocache"])
def test_x10_crowd_policies(benchmark, show, cache_key):
    result = benchmark.pedantic(run_crowd, args=(cache_key,), rounds=1, iterations=1)
    metrics = result.metrics
    show(
        f"X10[{cache_key:8s}]: {metrics.completed_count}/{metrics.session_count} "
        f"delivered, transport {metrics.megabyte_hops:.0f} MB-hops, "
        f"mean startup {metrics.mean_startup_s:.0f}s, "
        f"qos-violations {metrics.qos_violation_fraction:.2f}"
    )
    assert metrics.completed_count == metrics.session_count


def test_x10_dma_absorbs_the_crowd(benchmark, show):
    def run_pair():
        return run_crowd("dma"), run_crowd("nocache")

    dma_result, nocache_result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    dma, nocache = dma_result.metrics, nocache_result.metrics

    # With the DMA, remote transport stays within a handful of title
    # transfers (the first viewer plus whoever overlapped its download);
    # without caching it scales with the whole crowd.
    assert dma.megabyte_hops < nocache.megabyte_hops / 4.0
    assert dma.mean_startup_s < nocache.mean_startup_s
    assert dma.qos_violation_fraction <= nocache.qos_violation_fraction + 1e-9

    # The per-link view: the origin route is nearly idle under the DMA.
    dma_links = analyze_sessions(dma_result.service.sessions)
    origin_mb = sum(
        row.megabytes for row in dma_links.link_load
    )
    show(
        f"X10: crowd of 40 -> transport {dma.megabyte_hops:.0f} MB-hops with "
        f"the DMA vs {nocache.megabyte_hops:.0f} without caching "
        f"({nocache.megabyte_hops / dma.megabyte_hops:.1f}x); backbone bytes "
        f"under DMA: {origin_mb:.0f} MB total"
    )


# --------------------------------------------------------------------- #
# Decision-path burst throughput (the tentpole's headline number)
# --------------------------------------------------------------------- #

#: PR 1's recorded warm routing-cache rate on this benchmark host
#: (CHANGES.md); the tentpole target is >= 10x this.  Shown in smoke
#: output; only a loose floor is asserted so slow CI hosts stay green.
RECORDED_PR1_WARM_RATE = 74_167.0

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)
BURST_HOMES = ["U1", "U2", "U3", "U5", "U6"]


def build_decision_service(routing_cache_size, decision_cache_size):
    service = VoDService(
        Simulator(),
        build_grnet_topology(),
        ServiceConfig(
            routing_cache_size=routing_cache_size,
            decision_cache_size=decision_cache_size,
            use_reported_stats=False,
        ),
    )
    service.seed_title("U4", MOVIE)
    service.start()
    return service


def burst(service, count):
    """(decisions/s, fingerprints) for ``count`` flash-crowd decisions."""
    fingerprints = []
    start = time.perf_counter()
    for i in range(count):
        d = service.decide(BURST_HOMES[i % len(BURST_HOMES)], "movie")
        fingerprints.append((d.home_uid, d.chosen_uid, d.path.nodes, d.cost))
    return count / (time.perf_counter() - start), fingerprints


def measure_burst(count):
    """Burst rates for cache-off / routing-cache-only / decision-cache."""
    off = build_decision_service(0, 0)
    routing = build_decision_service(128, 0)
    decision = build_decision_service(128, 256)
    for home in BURST_HOMES:  # warm both cache layers before timing
        routing.decide(home, "movie")
        decision.decide(home, "movie")
    off_rate, off_prints = burst(off, count)
    routing_rate, routing_prints = burst(routing, count)
    decision_rate, decision_prints = burst(decision, count)
    # The acceptance criterion under all the speed: caching layers must
    # be invisible in the decisions themselves.
    assert decision_prints == routing_prints == off_prints
    return off_rate, routing_rate, decision_rate, decision.vra.decision_cache_stats


@pytest.mark.parametrize("count", [1_000, 10_000])
def test_flash_crowd_decision_burst(benchmark, show, count):
    off_rate, routing_rate, decision_rate, stats = benchmark.pedantic(
        measure_burst, args=(count,), rounds=1, iterations=1
    )
    show(
        f"Flash-crowd burst [{count:,} decisions, GRNET]: "
        f"{off_rate:,.0f}/s cache-off, {routing_rate:,.0f}/s routing-cache, "
        f"{decision_rate:,.0f}/s decision-cache "
        f"({decision_rate / routing_rate:.1f}x over routing-cache, "
        f"{decision_rate / RECORDED_PR1_WARM_RATE:.1f}x over the recorded "
        f"PR-1 warm rate of {RECORDED_PR1_WARM_RATE:,.0f}/s)\n"
        + render_decision_cache(stats, title=f"Decision cache, {count:,}-burst")
    )
    assert stats is not None and stats.hit_rate > 0.9
    # CI smoke gate: warm whole-decision memo at least 5x the
    # routing-cache-only path on the larger burst (the 10x-vs-recorded
    # tentpole target is printed above; 2x floor keeps slow hosts green).
    if count >= 10_000:
        assert decision_rate >= 5.0 * routing_rate
        assert decision_rate >= 2.0 * RECORDED_PR1_WARM_RATE
