"""X10 — flash-crowd absorption.

The DMA's "most popular" concept, stress-tested: a crowd of 40 viewers at
one node requests the same title over two hours.  With the DMA, the first
fetch pays the network cost (viewers overlapping that first download still
fetch remotely, then switch to the local copy per cluster once it commits)
and everyone afterwards is served locally; without caching every viewer
drags the title across the backbone and the 2 Mb links collapse.
"""

import pytest

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.metrics.analysis import analyze_sessions
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

#: A half-hour news special: modest size so one transfer fits a 2 Mb link.
SPECIAL = VideoTitle("special", size_mb=300.0, duration_s=1_800.0)


def run_crowd(cache_key: str, viewer_count: int = 40, ramp_s: float = 7_200.0):
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=viewer_count, start_s=600.0, ramp_s=ramp_s
    )
    experiment = ServiceExperiment(
        name=f"flash-{cache_key}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=100.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=256,
            use_reported_stats=False,
        ),
        cache=cache_key,
        seed_origin_uids=["U4"],  # the title starts at Thessaloniki only
        run_until=12 * 3600.0,
    )
    return run_service_experiment(experiment)


@pytest.mark.parametrize("cache_key", ["dma", "nocache"])
def test_x10_crowd_policies(benchmark, show, cache_key):
    result = benchmark.pedantic(run_crowd, args=(cache_key,), rounds=1, iterations=1)
    metrics = result.metrics
    show(
        f"X10[{cache_key:8s}]: {metrics.completed_count}/{metrics.session_count} "
        f"delivered, transport {metrics.megabyte_hops:.0f} MB-hops, "
        f"mean startup {metrics.mean_startup_s:.0f}s, "
        f"qos-violations {metrics.qos_violation_fraction:.2f}"
    )
    assert metrics.completed_count == metrics.session_count


def test_x10_dma_absorbs_the_crowd(benchmark, show):
    def run_pair():
        return run_crowd("dma"), run_crowd("nocache")

    dma_result, nocache_result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    dma, nocache = dma_result.metrics, nocache_result.metrics

    # With the DMA, remote transport stays within a handful of title
    # transfers (the first viewer plus whoever overlapped its download);
    # without caching it scales with the whole crowd.
    assert dma.megabyte_hops < nocache.megabyte_hops / 4.0
    assert dma.mean_startup_s < nocache.mean_startup_s
    assert dma.qos_violation_fraction <= nocache.qos_violation_fraction + 1e-9

    # The per-link view: the origin route is nearly idle under the DMA.
    dma_links = analyze_sessions(dma_result.service.sessions)
    origin_mb = sum(
        row.megabytes for row in dma_links.link_load
    )
    show(
        f"X10: crowd of 40 -> transport {dma.megabyte_hops:.0f} MB-hops with "
        f"the DMA vs {nocache.megabyte_hops:.0f} without caching "
        f"({nocache.megabyte_hops / dma.megabyte_hops:.1f}x); backbone bytes "
        f"under DMA: {origin_mb:.0f} MB total"
    )
