"""Observability overhead: the disabled path must be (near) free.

The telemetry layer's contract is that a service built without
``observability=True`` pays only shared no-op instrument calls on its hot
paths.  Two assertions pin that down on the X10 flash-crowd workload:

1. The disabled run's telemetry surface really is inert: no instruments,
   no samples, no spans.
2. The no-op overhead is below 2% of the disabled run's wall time.  Raw
   wall-clock A/B deltas of two full runs drown in scheduler noise at
   this scale, so the bound is computed from measured parts: count the
   hot-path instrument operations an *enabled* run performs, microbench
   the per-operation cost of the shared no-op instruments, and compare
   their product against the measured disabled-run wall time.
"""

from time import perf_counter

from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.obs.registry import NULL_COUNTER, NULL_HISTOGRAM
from repro.storage.video import VideoTitle
from repro.workload.scenarios import flash_crowd_scenario

#: Same half-hour special as the X10 flash-crowd benchmark.
SPECIAL = VideoTitle("special", size_mb=300.0, duration_s=1_800.0)

#: Acceptance bound: no-op instrumentation below 2% of the run's time.
MAX_OVERHEAD_FRACTION = 0.02


def run_crowd(observability: bool):
    scenario = flash_crowd_scenario(
        "U2", SPECIAL, viewer_count=40, start_s=600.0, ramp_s=7_200.0
    )
    experiment = ServiceExperiment(
        name=f"obs-{'on' if observability else 'off'}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=100.0,
            disk_count=2,
            disk_capacity_mb=1_000.0,
            max_streams=256,
            use_reported_stats=False,
            observability=observability,
        ),
        seed_origin_uids=["U4"],
        run_until=12 * 3600.0,
    )
    started = perf_counter()
    result = run_service_experiment(experiment)
    return result, perf_counter() - started


def noop_cost_per_op(ops: int = 200_000) -> float:
    """Measured seconds per call on the shared no-op instruments."""
    inc = NULL_COUNTER.inc
    observe = NULL_HISTOGRAM.observe
    started = perf_counter()
    for _ in range(ops // 2):
        inc()
        observe(1.0)
    return (perf_counter() - started) / ops


def count_hot_path_ops(service) -> int:
    """Instrument operations the run performed on its hot paths.

    Counter totals plus histogram observation counts from an enabled run
    upper-bound the no-op calls the same workload makes when disabled
    (the per-cluster hook and sampler only exist when enabled, so this
    over-counts — conservatively — in the disabled direction).
    """
    counters = sum(int(c.value) for c in service.obs.counters())
    observations = sum(h.count for h in service.obs.histograms())
    return counters + observations


def test_disabled_run_has_inert_telemetry(benchmark, show):
    (result, elapsed) = benchmark.pedantic(
        lambda: run_crowd(observability=False), rounds=1, iterations=1
    )
    service = result.service
    assert len(service.obs) == 0
    assert service.spans == []
    assert service.telemetry.series() == {}
    assert result.metrics.completed_count == result.metrics.session_count
    show(
        f"OBS-OFF: crowd of 40 in {elapsed:.2f}s wall, "
        f"0 instruments / 0 samples / 0 spans"
    )


def test_disabled_overhead_below_two_percent(benchmark, show):
    def measure():
        enabled_result, _ = run_crowd(observability=True)
        _, disabled_wall = run_crowd(observability=False)
        return count_hot_path_ops(enabled_result.service), disabled_wall

    n_ops, disabled_wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    per_op = noop_cost_per_op()
    overhead = n_ops * per_op
    fraction = overhead / disabled_wall
    show(
        f"OBS overhead: {n_ops} hot-path ops x {per_op * 1e9:.0f} ns no-op "
        f"= {overhead * 1e3:.2f} ms over a {disabled_wall * 1e3:.0f} ms run "
        f"-> {fraction:.3%} (bound {MAX_OVERHEAD_FRACTION:.0%})"
    )
    assert n_ops > 0
    assert fraction < MAX_OVERHEAD_FRACTION
