"""X3 — VRA vs server-selection baselines.

Two levels of comparison:

1. *Decision level* (deterministic): over every (home server, holder set,
   Table 2 instant) combination on GRNET, the VRA's chosen path must have
   the lowest ground-truth LVN cost — it is cost-optimal by construction —
   and the bench quantifies how much worse random / min-hop / static /
   origin-only choices are on the same decision problems.

2. *Service level*: a regional workload runs end to end under each policy
   and the aggregate QoS metrics are reported.
"""

import itertools
import random

import pytest

from repro.baselines.selection import (
    HomeOnlySelection,
    MinHopSelection,
    RandomSelection,
    StaticNearestSelection,
)
from repro.core.lvn import weight_table
from repro.core.service import ServiceConfig
from repro.core.vra import VirtualRoutingAlgorithm
from repro.experiments.casestudy import topology_at
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.network.grnet import SAMPLE_TIMES
from repro.workload.scenarios import regional_scenario

GRNET_NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def decision_problems():
    """Every (time, home, 2-or-3-holder set) with home not a holder."""
    problems = []
    for time_label in SAMPLE_TIMES:
        for home in GRNET_NODES:
            others = [uid for uid in GRNET_NODES if uid != home]
            for size in (2, 3):
                for holders in itertools.combinations(others, size):
                    problems.append((time_label, home, holders))
    return problems


def path_cost(topology, weights, nodes):
    return sum(weights[link.name] for link in topology.path_links(list(nodes)))


def test_x3_decision_level_optimality(benchmark, show):
    problems = decision_problems()

    def evaluate_all():
        totals = {"vra": 0.0, "random": 0.0, "minhop": 0.0, "static": 0.0}
        vra_wins_or_ties = 0
        for time_label, home, holders in problems:
            topology = topology_at(time_label)
            weights = weight_table(topology)
            policies = {
                "vra": VirtualRoutingAlgorithm(topology),
                "random": RandomSelection(topology, rng=random.Random(hash((time_label, home)) & 0xFFFF)),
                "minhop": MinHopSelection(topology),
                "static": StaticNearestSelection(topology),
            }
            costs = {}
            for name, policy in policies.items():
                decision = policy.decide(home, "t", holders=list(holders))
                costs[name] = path_cost(topology, weights, decision.path.nodes)
            for name, cost in costs.items():
                totals[name] += cost
            if all(costs["vra"] <= costs[name] + 1e-9 for name in costs):
                vra_wins_or_ties += 1
        return totals, vra_wins_or_ties

    (totals, wins), count = benchmark(evaluate_all), len(problems)
    # The VRA is never beaten on its own metric, on any decision problem.
    assert wins == count
    assert totals["vra"] <= min(totals.values()) + 1e-9
    show(
        f"X3 decision level ({count} problems over 4 Table 2 instants): "
        "total LVN cost "
        + ", ".join(f"{name}={totals[name]:.2f}" for name in sorted(totals))
        + f"; VRA cheapest on {wins}/{count}"
    )
    # Quantified gaps (the 'shape': load-blind choices pay more).
    assert totals["minhop"] >= totals["vra"]
    assert totals["random"] > totals["vra"]


def run_selection_experiment(selection_key: str):
    scenario = regional_scenario(
        GRNET_NODES,
        catalog_size=12,
        requests_per_node=25,
        horizon_s=8 * 3600.0,
        zipf_exponent=0.9,
        seed=31,
    )
    # Three replicas of every title so selection actually has choices;
    # caching disabled to isolate the selection policy.
    experiment = ServiceExperiment(
        name=f"select-{selection_key}",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=128.0,
            disk_count=4,
            disk_capacity_mb=10_000.0,
            max_streams=64,
            use_reported_stats=False,
        ),
        selection=selection_key,
        cache="nocache",
        replay_table2=True,
        start_time=8 * 3600.0,
        run_until=24 * 3600.0,
        seed=7,
    )
    # Seed each title at two origins (round-robin pairs).
    experiment.seed_origin_uids = GRNET_NODES
    service = None
    result = run_service_experiment(experiment)
    return result.metrics


@pytest.mark.parametrize("selection_key", ["vra", "minhop", "random", "origin:U1"])
def test_x3_service_level(benchmark, show, selection_key):
    metrics = benchmark.pedantic(
        run_selection_experiment, args=(selection_key,), rounds=1, iterations=1
    )
    assert metrics.completed_count > 0
    show(
        f"X3[{selection_key:9s}]: completed={metrics.completed_count}/"
        f"{metrics.session_count} "
        f"qos-violations={metrics.qos_violation_fraction:.3f} "
        f"stall={metrics.mean_stall_s:.0f}s "
        f"MB-hops={metrics.megabyte_hops:.0f}"
    )


def test_x3_vra_no_worse_qos_than_blind_baselines(benchmark, show):
    def run_three():
        return {
            key: run_selection_experiment(key)
            for key in ("vra", "minhop", "random")
        }

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)
    vra = results["vra"]
    for name in ("minhop", "random"):
        assert vra.qos_violation_fraction <= results[name].qos_violation_fraction + 0.02, name
    show(
        "X3 service level QoS-violation fractions: "
        + ", ".join(
            f"{k}={results[k].qos_violation_fraction:.3f}" for k in sorted(results)
        )
    )
