"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md §4), asserts the reproduction bands, and
prints the regenerated artefact next to the paper's printed values (run
``pytest benchmarks/ --benchmark-only -s`` to see the tables live).

Everything passed to the ``show`` fixture is also appended to
``benchmarks_report.txt`` in the repository root, so a plain
``pytest benchmarks/ --benchmark-only`` run still leaves the full set of
regenerated tables on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmarks_report.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_report_file():
    """Truncate the report file once per benchmark session."""
    REPORT_PATH.write_text("", encoding="utf-8")
    yield


@pytest.fixture
def show(request):
    """Print through pytest's capture and persist to the report file."""

    def _show(text: str) -> None:
        print()
        print(text)
        with REPORT_PATH.open("a", encoding="utf-8") as handle:
            handle.write(f"--- {request.node.nodeid} ---\n{text}\n\n")

    return _show
