"""Routing-cache behaviour under a link-flap fault storm.

A flapping link is the worst case for the epoch-versioned routing
cache: every transition bumps ``state_version``, so each flap forces an
epoch change between decisions.  PR 1's full-invalidation cache flushes
the LVN table and every Dijkstra tree per flap; delta maintenance
patches the single flapped link and keeps the rest warm.

The storm comes from the fault-injection subsystem itself: a seeded
:class:`~repro.faults.FaultSchedule` of link flaps replayed by a
:class:`~repro.faults.FaultInjector` on the sim clock.  Running the
*same* seeded schedule against both services keeps the decision streams
comparable, and the bit-for-bit equivalence assert inside ``measure``
is the real acceptance criterion — a cache that is fast but wrong under
churn would stream over a dead link.

Acceptance bars: decisions stay bit-for-bit identical (including
identical refusals while a storm severs every path), every flap epoch
is absorbed as a delta patch (zero full flushes), the cache still
answers a majority of lookups from memory despite an epoch change on
every flap, and the delta path's decision rate does not regress badly
against the flush-per-epoch baseline.

A third service runs the same storm with the whole-decision memo on
top: it must stay bit-for-bit too, absorb every epoch as a delta, and
answer at least as many whole decisions warm as the tree layer keeps
trees valid without repair work (the decision-level floor — see the
comment in the test for why the blended routing hit rate above is not
the right baseline).
"""

import time

from repro.core.service import ServiceConfig, VoDService
from repro.errors import RoutingError
from repro.experiments.report import render_decision_cache, render_routing_cache
from repro.faults import FaultInjector, FaultSchedule
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

MOVIE = VideoTitle("movie", size_mb=600.0, duration_s=3_600.0)

HOMES = ("U1", "U2", "U3", "U5", "U6")
DECISIONS = 600
STEP_S = 10.0  # sim-time between decisions; flaps land in the gaps
FLAP_RATE_PER_H = 120.0  # ~one flap every 30 s of sim time
MEAN_FLAP_S = 60.0
STORM_SEED = 23


def build_service(delta_on, decision_cache_size=0):
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        Simulator(),
        topology,
        ServiceConfig(
            routing_cache_size=128,
            routing_delta_updates=delta_on,
            decision_cache_size=decision_cache_size,
            use_reported_stats=False,
        ),
    )
    service.seed_title("U4", MOVIE)
    return service


def flap_schedule():
    topology = build_grnet_topology()
    return FaultSchedule.seeded(
        STORM_SEED,
        DECISIONS * STEP_S,
        link_names=[link.name for link in topology.links()],
        link_flap_rate_per_h=FLAP_RATE_PER_H,
        mean_fault_duration_s=MEAN_FLAP_S,
    )


def churn_rate(service, schedule):
    """Decisions/sec with the injector replaying the storm in between.

    Returns (rate, decision log) so callers can assert equivalence.  A
    storm can sever every path to the holder; identical refusals count
    as identical decisions.
    """
    FaultInjector(service, schedule).start()
    sim = service.sim
    decisions = []
    start = time.perf_counter()
    for i in range(DECISIONS):
        sim.run(until=(i + 1) * STEP_S)
        try:
            d = service.decide(HOMES[i % len(HOMES)], "movie")
        except RoutingError as exc:
            decisions.append(("error", str(exc)))
        else:
            decisions.append((d.home_uid, d.chosen_uid, d.path.nodes, d.cost))
    return DECISIONS / (time.perf_counter() - start), decisions


def measure():
    schedule = flap_schedule()
    assert len(schedule) > 0  # the storm actually storms
    full = build_service(delta_on=False)
    delta = build_service(delta_on=True)
    memo = build_service(delta_on=True, decision_cache_size=128)
    for home in HOMES:  # warm all caches before timing
        full.decide(home, "movie")
        delta.decide(home, "movie")
        memo.decide(home, "movie")
    full_rate, full_decisions = churn_rate(full, schedule)
    delta_rate, delta_decisions = churn_rate(delta, schedule)
    memo_rate, memo_decisions = churn_rate(memo, schedule)
    assert delta_decisions == full_decisions  # bit-for-bit under the storm
    assert memo_decisions == full_decisions  # ... with the decision memo too
    return (
        full_rate,
        delta_rate,
        memo_rate,
        delta.vra.cache_stats,
        memo.vra.decision_cache_stats,
    )


def test_fault_churn_cache_behaviour(benchmark, show):
    full_rate, delta_rate, memo_rate, stats, memo_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    show(
        f"Fault churn [GRNET, seeded link-flap storm, "
        f"{FLAP_RATE_PER_H:.0f} flaps/h]: {full_rate:,.0f} decisions/s "
        f"full-invalidation vs {delta_rate:,.0f} delta "
        f"({delta_rate / full_rate:.1f}x) vs {memo_rate:,.0f} with the "
        f"decision memo, routing hit rate {stats.hit_rate:.1%} "
        f"(tree survival w/o repair "
        f"{(stats.tree_hits - stats.trees_repaired) / (stats.tree_hits + stats.tree_misses):.1%}), "
        f"decision hit rate {memo_stats.hit_rate:.1%}\n"
        + render_routing_cache(stats, title="Link-flap churn delta counters")
        + "\n"
        + render_decision_cache(
            memo_stats, title="Link-flap churn decision-memo counters"
        )
    )
    # Whole-decision memoization under the same storm.  A flap storm is
    # the memo's worst case: a decision survives an epoch only if its
    # shortest-path tree is provably untouched, so its hit rate is
    # bounded by *tree* survival — the blended routing-cache rate above
    # it is inflated by LVN weight-table patches that count as hits even
    # when every tree re-roots.  The apples-to-apples floor is the tree
    # layer's no-repair survival rate: whenever the tree layer kept a
    # tree warm without repair work, the memo must have answered the
    # whole decision warm too (same tree_unaffected proof, and the memo
    # skips the holder poll and min-cost scan on top).
    tree_lookups = stats.tree_hits + stats.tree_misses
    tree_survival = (stats.tree_hits - stats.trees_repaired) / tree_lookups
    assert memo_stats.hit_rate >= tree_survival
    assert memo_stats.hit_rate > 0.0
    assert memo_stats.full_invalidations == 0
    assert memo_stats.decisions_dropped + memo_stats.decisions_refreshed > 0
    # Every flap is a real epoch change, absorbed as a handful of
    # single-link patches: no full flush, a majority of lookups answered
    # warm.  (On a 7-link graph the patch work costs about as much wall
    # clock as a recompute, so the rate bar only guards against the
    # delta path regressing badly — the counters above are the
    # deterministic acceptance.)
    assert delta_rate >= 0.7 * full_rate
    assert stats.hit_rate >= 0.5
    assert stats.full_invalidations == 0
    assert stats.partial_invalidations > 0
    assert stats.dirty_links > 0
