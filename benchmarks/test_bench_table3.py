"""T3 — Table 3: the Link Validation Numbers (paper equations 1-4).

Recomputes the LVN of all seven links at all four sampling instants and
diffs every cell against the paper's printed Table 3.  The paper's own
rounding is inconsistent (DESIGN.md §5 erratum 2), so cells agree to
within 0.012 rather than exactly; the benchmark prints the worst cells.
"""

import pytest

from repro.experiments.casestudy import compute_table3_lvn, table3_deltas
from repro.experiments.report import render_table3
from repro.network.grnet import PAPER_TABLE3_LVN


def test_table3_reproduction(benchmark, show):
    table = benchmark(compute_table3_lvn)

    deltas = table3_deltas()
    worst = max(deltas, key=lambda d: abs(d.delta))
    assert abs(worst.delta) < 0.012, (
        f"worst Table 3 cell {worst.link_name}@{worst.time_label}: "
        f"{worst.computed} vs paper {worst.printed}"
    )

    # Cells the paper rounded consistently reproduce to 4 decimals.
    assert table["Thessaloniki-Xanthi"]["10am"] == pytest.approx(0.4611, abs=5e-4)
    assert table["Thessaloniki-Ioannina"]["4pm"] == pytest.approx(0.7501, abs=5e-4)
    assert table["Xanthi-Heraklio"]["6pm"] == pytest.approx(0.3, abs=5e-4)

    show(render_table3())
    flagged = sorted(deltas, key=lambda d: -abs(d.delta))[:3]
    lines = ["Largest computed-vs-printed cells (paper rounding artefacts):"]
    for delta in flagged:
        lines.append(
            f"  {delta.link_name}@{delta.time_label}: ours {delta.computed:.6f} "
            f"vs paper {delta.printed:.6f} (delta {delta.delta:+.6f})"
        )
    show("\n".join(lines))


def test_table3_cell_count_and_coverage(benchmark):
    """Every (link, time) pair of the paper's table is reproduced."""
    deltas = benchmark(table3_deltas)
    assert len(deltas) == 7 * 4
    covered = {(d.link_name, d.time_label) for d in deltas}
    expected = {
        (link, time)
        for link, row in PAPER_TABLE3_LVN.items()
        for time in row
    }
    assert covered == expected
