"""F2 + X2 — the Disk Manipulation Algorithm (paper Figure 2) and the
cache-policy comparison ablation.

F2: drive one server's DMA with a Zipf request stream and verify the
"most popular" concept does what the paper claims — the cache converges
onto the most-requested titles and the hit ratio climbs well above the
no-cache baseline.

X2: run the full service on GRNET under a regional Zipf workload with the
DMA against the baselines (no cache / LRU / full replication) and compare
network transport cost (megabyte-hops) and local-serve fraction.
"""

import random

import pytest

from repro.core.dma import DiskManipulationAlgorithm, DmaAction
from repro.core.service import ServiceConfig
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle
from repro.workload.scenarios import regional_scenario
from repro.workload.zipf import ZipfSampler

GRNET_NODES = ["U1", "U2", "U3", "U4", "U5", "U6"]


def make_catalog(count=20, size_mb=150.0):
    return [
        VideoTitle(f"t{i:02d}", size_mb=size_mb, duration_s=3600.0)
        for i in range(count)
    ]


def test_figure2_dma_converges_to_most_popular(benchmark, show):
    """F2: cache contents after a skewed stream = the stream's head."""
    catalog = make_catalog()
    by_id = {v.title_id: v for v in catalog}
    sampler = ZipfSampler(
        [v.title_id for v in catalog], exponent=1.1, rng=random.Random(13)
    )
    stream = sampler.sample_many(2_000)

    def run_stream():
        array = DiskArray(disk_count=4, disk_capacity_mb=200.0, cluster_mb=25.0)
        dma = DiskManipulationAlgorithm(array)
        hits = 0
        for title_id in stream:
            if dma.on_request(by_id[title_id]).action is DmaAction.HIT:
                hits += 1
        return dma, hits

    dma, hits = benchmark(run_stream)

    cached = set(dma.cached_title_ids())
    # 4x200 MB holds 5 titles of 150 MB; the Zipf head must dominate.
    top5 = {f"t{i:02d}" for i in range(5)}
    assert len(cached & top5) >= 4, f"cache {sorted(cached)} missed the Zipf head"

    hit_ratio = hits / len(stream)
    # Theoretical ceiling: P(top-5 under Zipf 1.1 over 20) ~ 0.66.
    assert hit_ratio > 0.5, hit_ratio
    show(
        f"F2: after {len(stream)} Zipf(1.1) requests the DMA cache holds "
        f"{sorted(cached)} (top-5 overlap {len(cached & top5)}/5), "
        f"hit ratio {hit_ratio:.2f}"
    )


def run_cache_experiment(cache_key: str):
    scenario = regional_scenario(
        GRNET_NODES,
        catalog_size=18,
        requests_per_node=30,
        horizon_s=8 * 3600.0,
        zipf_exponent=1.0,
        regional_shift=3,
        seed=23,
        catalog=make_catalog(18, size_mb=150.0),
    )
    experiment = ServiceExperiment(
        name=f"cache-{cache_key}",
        scenario=scenario,
        config=ServiceConfig(
            # cluster 50 -> p=3 clusters on n=3 disks: the paper's cyclic
            # layout balances exactly (p < n would pile every title onto
            # the first disks and starve the cache; see DESIGN.md F3).
            cluster_mb=50.0,
            disk_count=3,
            disk_capacity_mb=250.0,  # room for ~5 of 18 titles per server
            max_streams=64,
            use_reported_stats=False,
        ),
        cache=cache_key,
        run_until=24 * 3600.0,
    )
    return run_service_experiment(experiment).metrics


@pytest.mark.parametrize("cache_key", ["dma", "dma-greedy", "nocache", "lru", "fullrep"])
def test_x2_cache_policy_comparison(benchmark, show, cache_key):
    metrics = benchmark.pedantic(run_cache_experiment, args=(cache_key,), rounds=1, iterations=1)
    show(
        f"X2[{cache_key:10s}]: sessions={metrics.session_count} "
        f"completed={metrics.completed_count} "
        f"local={metrics.local_serve_fraction:.2f} "
        f"MB-hops={metrics.megabyte_hops:.0f} "
        f"startup={metrics.mean_startup_s:.0f}s "
        f"qos-violations={metrics.qos_violation_fraction:.3f}"
    )
    assert metrics.completed_count > 0


def test_x2_dma_beats_baselines_on_transport_cost(benchmark, show):
    """The paper's headline claims for the DMA: local caches of the most
    popular titles cut network transport and speed up access, and beat the
    proxy-server concept the paper explicitly contrasts with (LRU)."""

    def run_all():
        return {
            key: run_cache_experiment(key)
            for key in ("dma", "nocache", "lru", "fullrep")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    dma, nocache, lru, fullrep = (
        results["dma"],
        results["nocache"],
        results["lru"],
        results["fullrep"],
    )
    # Caching beats no caching on every axis.
    assert dma.megabyte_hops < nocache.megabyte_hops
    assert dma.local_serve_fraction > nocache.local_serve_fraction
    assert dma.mean_startup_s < nocache.mean_startup_s
    # "Most popular" beats the proxy-server (LRU) concept.
    assert dma.megabyte_hops < lru.megabyte_hops
    assert dma.local_serve_fraction > lru.local_serve_fraction
    # And is bounded by unconstrained replication.
    assert fullrep.megabyte_hops <= dma.megabyte_hops
    show(
        "X2 transport (MB-hops): "
        + ", ".join(f"{k}={results[k].megabyte_hops:.0f}" for k in results)
        + f" | DMA cuts {nocache.megabyte_hops / dma.megabyte_hops:.2f}x vs "
        f"no-cache and {lru.megabyte_hops / dma.megabyte_hops:.2f}x vs LRU"
    )
