"""X6 — server-configuration factors in the validation (future work #3).

"We must make clear what the role of every Server configuration factor
(CPU speed, available RAM etc.) is to our Video service."

The extension folds each server's stream-slot occupancy into its node
validation (eq. 2 + load), steering the VRA away from busy servers
*before* they exhaust their admission slots.

The paper's own link-traffic term already spreads high-bitrate streams
(their reservations raise the LVN), so to isolate the *server* bottleneck
the bench uses near-zero-bitrate streams: the links never notice them,
only the slot occupancy does.  Under eq. (2) alone every request then
piles onto the one cheapest replica; with the load term they spread.
"""

import pytest

from repro.core.service import ServiceConfig, VoDService
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

#: 10 MB over an hour: ~0.022 Mbps — invisible to 2-18 Mb links.
TINY_STREAM = VideoTitle("m", size_mb=10.0, duration_s=3600.0)


def make_service(use_load: bool, max_streams: int = 8) -> VoDService:
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=100.0,
            max_streams=max_streams,
            use_reported_stats=False,
            use_server_load_in_vra=use_load,
        ),
    )
    # Replicas one hop from U5 in both directions: U4 (cost ~0.168 at 8am)
    # and U6 (cost ~0.120, the favourite).
    service.seed_title("U4", TINY_STREAM)
    service.seed_title("U6", TINY_STREAM)
    return service


def first_sources(service: VoDService, count: int = 8):
    """Submit ``count`` near-simultaneous requests from U5; count each
    session's first source server while all sessions stay active."""
    for _ in range(count):
        service.request_by_home("U5", "m")
        service.sim.run(until=service.sim.now + 1.0)  # sessions overlap
    counts = {}
    peak = {
        uid: server.admission.active_count
        for uid, server in service.servers.items()
    }
    service.sim.run(until=service.sim.now + 4 * 3600.0)
    for record in service.sessions:
        if record.servers_used:
            first = record.servers_used[0]
            counts[first] = counts.get(first, 0) + 1
    return counts, peak


def test_x6_load_term_spreads_streams(benchmark, show):
    def run_pair():
        return first_sources(make_service(False)), first_sources(make_service(True))

    (without_load, _), (with_load, _) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    # Paper behaviour: link weights never move (tiny streams), so every
    # request goes to the one cheapest replica, U6.
    assert without_load.get("U6", 0) == 8
    # With the load term, occupancy feeds the weights and requests spread
    # across both replicas well before admission exhaustion.
    assert with_load.get("U4", 0) >= 3
    assert with_load.get("U6", 0) >= 3
    show(
        f"X6: first-source split over 8 concurrent low-rate requests from "
        f"U5 — paper eq.2: {without_load}; with server-load term: {with_load}"
    )


def test_x6_load_term_reduces_peak_occupancy(benchmark, show):
    def run_pair():
        peaks = {}
        for use_load in (False, True):
            _, peak = first_sources(make_service(use_load))
            peaks[use_load] = max(peak.values())
        return peaks

    peaks = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert peaks[False] == 8  # the favourite absorbs everything
    assert peaks[True] <= 5  # spread keeps every server comfortable
    show(
        f"X6: peak concurrent streams at any one server: "
        f"{peaks[False]} under eq. 2 alone, {peaks[True]} with the load term"
    )
