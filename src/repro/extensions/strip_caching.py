"""Strip-level distributed caching (the paper's future work, implemented).

The paper: "we could have even better results if the various videos were
stripped not on the hard disks of one server but of different servers
according to the popularity.  This means that the most popular technique
that we have described will not be imposed on whole videos but on video
strips."

Here the DMA's points/least-popular policy runs at *strip* granularity:
each server's cache admits and evicts individual strips (clusters) of
videos, and the VRA routes every strip fetch to the cheapest server
currently holding that strip.  Because all strips of a title accrue points
together but entered the tracker in order, eviction drains a cooling title
from its tail strip backwards — the cache converges to *prefixes* of the
locally popular titles, which is exactly the fractional-knapsack win over
whole-title caching: no capacity is stranded because a whole title did not
fit.

:class:`StripCachingEvaluator` replays a request sequence over a topology
and measures transport cost (megabyte-hops) and byte hit ratios for either
granularity, holding the per-server cache budget constant — the X5
ablation benchmark compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.lvn import weight_table
from repro.errors import CacheError, ReproError, TitleUnavailableError
from repro.network.routing.dijkstra import dijkstra
from repro.network.topology import Topology
from repro.storage.cache import PopularityTracker
from repro.storage.striping import cluster_sizes
from repro.storage.video import VideoTitle


def strip_key(title_id: str, strip_index: int) -> str:
    """Stable identifier for one strip of one title."""
    return f"{title_id}#{strip_index:05d}"


class StripStore:
    """One server's strip cache under the most-popular policy.

    Capacity is byte-oriented; admission follows the Figure 2 shape at
    strip granularity: a strip already resident earns a point; a strip
    that fits is stored; otherwise it earns a point and replaces the least
    popular unpinned strip(s) it now out-scores.

    Args:
        capacity_mb: Cache budget in megabytes.
        evict_until_fits: Keep evicting while the newcomer out-scores the
            next victim and still does not fit (strips are small and
            uniform, so unlike whole titles this almost always ends in a
            store); default True, which is the natural strip-level policy.
    """

    def __init__(self, capacity_mb: float, evict_until_fits: bool = True):
        if not (capacity_mb >= 0.0):
            raise CacheError(f"capacity must be >= 0, got {capacity_mb!r}")
        self.capacity_mb = capacity_mb
        self.evict_until_fits = evict_until_fits
        self.tracker = PopularityTracker()
        self._resident: Dict[str, float] = {}
        self._pinned: Set[str] = set()
        self._used_mb = 0.0

    # ------------------------------------------------------------------ #
    @property
    def used_mb(self) -> float:
        """Bytes currently cached."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        """Spare cache budget."""
        return max(self.capacity_mb - self._used_mb, 0.0)

    def has(self, key: str) -> bool:
        """True if the strip is resident."""
        return key in self._resident

    def resident_keys(self) -> List[str]:
        """All resident strip keys, sorted."""
        return sorted(self._resident)

    def pin(self, key: str, size_mb: float) -> None:
        """Force a strip resident and exempt from eviction (origin copy).

        Pinned strips do not count against the cache budget — they model
        the origin server's library disk, not its cache.
        """
        if key not in self._resident:
            self._resident[key] = size_mb
        self._pinned.add(key)
        self.tracker.track(key)

    def on_request(self, key: str, size_mb: float) -> bool:
        """One most-popular pass for a requested strip.

        Returns:
            True if the strip is resident after the pass (hit or stored).
        """
        if key in self._resident:
            self.tracker.give_point(key)
            return True
        if size_mb <= self.free_mb + 1e-9:
            self._store(key, size_mb)
            return True
        self.tracker.give_point(key)
        while True:
            candidates = [k for k in self._resident if k not in self._pinned]
            victim = self.tracker.least_popular(candidates)
            if victim is None:
                return False
            if not (self.tracker.points_of(key) > self.tracker.points_of(victim)):
                return False
            self._evict(victim)
            if size_mb <= self.free_mb + 1e-9:
                self._store(key, size_mb)
                return True
            if not self.evict_until_fits:
                return False

    # ------------------------------------------------------------------ #
    def _store(self, key: str, size_mb: float) -> None:
        self._resident[key] = size_mb
        self._used_mb += size_mb
        self.tracker.track(key)

    def _evict(self, key: str) -> None:
        self._used_mb -= self._resident.pop(key)
        self._used_mb = max(self._used_mb, 0.0)


@dataclass
class WorkloadReport:
    """Aggregate outcome of replaying a request sequence.

    Attributes:
        request_count: Requests replayed.
        total_mb: Bytes delivered.
        local_mb: Bytes served from the client's home server.
        megabyte_hops: Sum over strips of size * hop-count (transport cost).
        strip_fetches: Remote strip fetches performed.
        byte_hit_ratio: local_mb / total_mb.
    """

    request_count: int = 0
    total_mb: float = 0.0
    local_mb: float = 0.0
    megabyte_hops: float = 0.0
    strip_fetches: int = 0

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of delivered bytes served locally."""
        return self.local_mb / self.total_mb if self.total_mb else 0.0


class StripCachingEvaluator:
    """Replays requests under strip- or title-granular most-popular caching.

    Args:
        topology: The network (its current background traffic feeds the
            LVN weights used for server selection).
        catalog: The titles in play.
        origins: title_id -> origin server uid (the permanent copy).
        cluster_mb: Strip size ``c``.
        cache_capacity_mb: Per-server cache budget (origins' permanent
            copies are pinned outside this budget).
        granularity: ``"strip"`` (the future-work policy) or ``"title"``
            (the paper's whole-video DMA at the same budget).
    """

    def __init__(
        self,
        topology: Topology,
        catalog: Sequence[VideoTitle],
        origins: Dict[str, str],
        cluster_mb: float,
        cache_capacity_mb: float,
        granularity: str = "strip",
    ):
        if granularity not in ("strip", "title"):
            raise ReproError(f"granularity must be 'strip' or 'title', got {granularity!r}")
        self._topology = topology
        self._videos = {video.title_id: video for video in catalog}
        self._origins = dict(origins)
        for title_id, origin in self._origins.items():
            topology.node(origin)  # validate
            if title_id not in self._videos:
                raise TitleUnavailableError(f"origin given for unknown title {title_id!r}")
        self._cluster_mb = cluster_mb
        self.granularity = granularity
        self.stores: Dict[str, StripStore] = {
            node.uid: StripStore(cache_capacity_mb) for node in topology.nodes()
        }
        self._strip_sizes: Dict[str, List[float]] = {
            video.title_id: cluster_sizes(video.size_mb, cluster_mb)
            for video in catalog
        }
        for title_id, origin in self._origins.items():
            for index, size in enumerate(self._strip_sizes[title_id]):
                self.stores[origin].pin(strip_key(title_id, index), size)
        self.report = WorkloadReport()

    # ------------------------------------------------------------------ #
    def request(self, home_uid: str, title_id: str) -> float:
        """Deliver one title to a client at ``home_uid``.

        Returns:
            The megabyte-hops this delivery cost.
        """
        video = self._videos.get(title_id)
        if video is None:
            raise TitleUnavailableError(f"unknown title {title_id!r}")
        weights = weight_table(self._topology)
        shortest = dijkstra(
            self._topology, home_uid, weight=lambda link: weights[link.name]
        )
        cost_before = self.report.megabyte_hops
        if self.granularity == "strip":
            self._deliver_strips(home_uid, video, shortest)
        else:
            self._deliver_title(home_uid, video, shortest)
        self.report.request_count += 1
        self.report.total_mb += video.size_mb
        return self.report.megabyte_hops - cost_before

    def replay(self, events: Sequence[Tuple[str, str]]) -> WorkloadReport:
        """Replay (home_uid, title_id) pairs and return the final report."""
        for home_uid, title_id in events:
            self.request(home_uid, title_id)
        return self.report

    def resident_strip_count(self, node_uid: str, title_id: str) -> int:
        """How many strips of a title a node currently holds."""
        store = self.stores[node_uid]
        return sum(
            1
            for index in range(len(self._strip_sizes[title_id]))
            if store.has(strip_key(title_id, index))
        )

    # ------------------------------------------------------------------ #
    def _deliver_strips(self, home_uid: str, video: VideoTitle, shortest) -> None:
        home_store = self.stores[home_uid]
        for index, size in enumerate(self._strip_sizes[video.title_id]):
            key = strip_key(video.title_id, index)
            if home_store.has(key):
                self.report.local_mb += size
            else:
                hops = self._cheapest_holder_hops(key, home_uid, shortest)
                self.report.megabyte_hops += size * hops
                self.report.strip_fetches += 1
            home_store.on_request(key, size)

    def _deliver_title(self, home_uid: str, video: VideoTitle, shortest) -> None:
        """Whole-title granularity: one source for all strips, all-or-
        nothing admission (the paper's original DMA, same budget)."""
        home_store = self.stores[home_uid]
        sizes = self._strip_sizes[video.title_id]
        keys = [strip_key(video.title_id, i) for i in range(len(sizes))]
        if all(home_store.has(key) for key in keys):
            self.report.local_mb += video.size_mb
            for key in keys:
                home_store.tracker.give_point(key)
            return
        full_holders = [
            uid
            for uid, store in self.stores.items()
            if uid != home_uid and all(store.has(key) for key in keys)
        ]
        if not full_holders:
            raise TitleUnavailableError(
                f"no full copy of {video.title_id!r} anywhere (origin lost?)"
            )
        hops = min(
            shortest.path(uid).hop_count
            for uid in full_holders
            if shortest.reaches(uid)
        )
        self.report.megabyte_hops += video.size_mb * hops
        self.report.strip_fetches += len(keys)
        self._title_granular_admission(home_store, keys, sizes)

    def _title_granular_admission(
        self, store: StripStore, keys: List[str], sizes: List[float]
    ) -> None:
        """Figure 2 at title granularity over the strip store."""
        total = sum(sizes)
        if total <= store.free_mb + 1e-9:
            for key, size in zip(keys, sizes):
                store.on_request(key, size)
            return
        for key in keys:
            store.tracker.give_point(key)
        # Evict whole least-popular titles while out-scored, then store.
        while total > store.free_mb + 1e-9:
            candidates = [k for k in store.resident_keys() if k not in store._pinned]
            victim = store.tracker.least_popular(candidates)
            if victim is None:
                return
            if not (store.tracker.points_of(keys[0]) > store.tracker.points_of(victim)):
                return
            victim_title = victim.split("#", 1)[0]
            for resident in [k for k in store.resident_keys() if k.startswith(victim_title + "#")]:
                if resident not in store._pinned:
                    store._evict(resident)
        if total <= store.free_mb + 1e-9:
            for key, size in zip(keys, sizes):
                if not store.has(key):
                    store._store(key, size)
                else:
                    store.tracker.give_point(key)

    def _cheapest_holder_hops(self, key: str, home_uid: str, shortest) -> int:
        holders = [
            uid
            for uid, store in self.stores.items()
            if uid != home_uid and store.has(key)
        ]
        if not holders:
            raise TitleUnavailableError(f"strip {key!r} lost from every server")
        best = min(
            (uid for uid in holders if shortest.reaches(uid)),
            key=lambda uid: (shortest.cost(uid), uid),
            default=None,
        )
        if best is None:
            raise TitleUnavailableError(f"no reachable holder for strip {key!r}")
        return shortest.path(best).hop_count
