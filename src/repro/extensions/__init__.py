"""Implementations of the paper's stated future-work directions.

The paper's Conclusions sketch three improvements; each is implemented and
benchmarked:

* **Strip-level distributed caching** — "the most popular technique that
  we have described will not be imposed on whole videos but on video
  strips", striped across *servers* rather than one server's disks:
  :mod:`repro.extensions.strip_caching` (ablation bench X5).
* **Server configuration factors in the validation** — "what the role of
  every Server configuration factor (CPU speed, available RAM etc.) is":
  the ``node_load`` parameter of :mod:`repro.core.lvn` and
  ``ServiceConfig.use_server_load_in_vra`` (ablation bench X6).
* **Improved QoS standards** — strict admission instead of degraded
  delivery: ``ServiceConfig.strict_qos_admission`` (ablation bench X7).
"""

from repro.extensions.strip_caching import (
    StripCachingEvaluator,
    StripStore,
    WorkloadReport,
)

__all__ = ["StripCachingEvaluator", "StripStore", "WorkloadReport"]
