"""Synthetic topology generators.

The paper argues the service suits "a large variety of diverse networks";
these constructors provide the standard shapes used by the examples,
benchmarks and tests: stars, rings, lines, trees, grids and random
connected graphs.  All return validated :class:`~repro.network.topology.
Topology` objects with uniform link capacity (override per link afterwards
for heterogeneous designs).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology


def _add_nodes(topology: Topology, count: int, prefix: str) -> List[str]:
    uids = [f"{prefix}{i}" for i in range(count)]
    for uid in uids:
        topology.add_node(Node(uid))
    return uids


def star_topology(leaf_count: int, capacity_mbps: float = 10.0) -> Topology:
    """A hub (``H0``) with ``leaf_count`` spokes (``L0``..).

    Raises:
        TopologyError: If fewer than one leaf is requested.
    """
    if leaf_count < 1:
        raise TopologyError(f"star needs >= 1 leaf, got {leaf_count}")
    topology = Topology(name=f"star-{leaf_count}")
    topology.add_node(Node("H0", name="hub"))
    for i in range(leaf_count):
        leaf = topology.add_node(Node(f"L{i}"))
        topology.add_link(Link("H0", leaf.uid, capacity_mbps=capacity_mbps))
    topology.validate()
    return topology


def ring_topology(node_count: int, capacity_mbps: float = 10.0) -> Topology:
    """A cycle ``R0-R1-...-R(n-1)-R0``.

    Raises:
        TopologyError: If fewer than three nodes are requested.
    """
    if node_count < 3:
        raise TopologyError(f"ring needs >= 3 nodes, got {node_count}")
    topology = Topology(name=f"ring-{node_count}")
    uids = _add_nodes(topology, node_count, "R")
    for i, uid in enumerate(uids):
        topology.add_link(
            Link(uid, uids[(i + 1) % node_count], capacity_mbps=capacity_mbps)
        )
    topology.validate()
    return topology


def line_topology(node_count: int, capacity_mbps: float = 10.0) -> Topology:
    """A path ``P0-P1-...-P(n-1)``.

    Raises:
        TopologyError: If fewer than two nodes are requested.
    """
    if node_count < 2:
        raise TopologyError(f"line needs >= 2 nodes, got {node_count}")
    topology = Topology(name=f"line-{node_count}")
    uids = _add_nodes(topology, node_count, "P")
    for a, b in zip(uids, uids[1:]):
        topology.add_link(Link(a, b, capacity_mbps=capacity_mbps))
    topology.validate()
    return topology


def tree_topology(
    depth: int, branching: int = 2, capacity_mbps: float = 10.0
) -> Topology:
    """A complete tree of the given depth and branching factor.

    Node ``T0`` is the root; children of ``Tk`` are numbered breadth-first.

    Raises:
        TopologyError: For non-positive depth or branching.
    """
    if depth < 1:
        raise TopologyError(f"tree needs depth >= 1, got {depth}")
    if branching < 1:
        raise TopologyError(f"tree needs branching >= 1, got {branching}")
    topology = Topology(name=f"tree-d{depth}b{branching}")
    topology.add_node(Node("T0"))
    frontier = ["T0"]
    serial = 1
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = f"T{serial}"
                serial += 1
                topology.add_node(Node(child))
                topology.add_link(Link(parent, child, capacity_mbps=capacity_mbps))
                next_frontier.append(child)
        frontier = next_frontier
    topology.validate()
    return topology


def grid_topology(rows: int, cols: int, capacity_mbps: float = 10.0) -> Topology:
    """A rows x cols mesh; node ``Gr.c`` connects to its 4-neighbours.

    Raises:
        TopologyError: For dimensions below 1x2 / 2x1.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs >= 2 nodes, got {rows}x{cols}")
    topology = Topology(name=f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            topology.add_node(Node(f"G{r}.{c}"))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topology.add_link(
                    Link(f"G{r}.{c}", f"G{r}.{c + 1}", capacity_mbps=capacity_mbps)
                )
            if r + 1 < rows:
                topology.add_link(
                    Link(f"G{r}.{c}", f"G{r + 1}.{c}", capacity_mbps=capacity_mbps)
                )
    topology.validate()
    return topology


def random_topology(
    node_count: int,
    extra_links: int = 0,
    capacity_mbps: float = 10.0,
    rng: Optional[random.Random] = None,
) -> Topology:
    """A connected random graph: random spanning tree + extra chords.

    Args:
        node_count: Number of nodes.
        extra_links: Chords added beyond the spanning tree (duplicates are
            re-drawn; saturating the clique stops early).
        capacity_mbps: Uniform link capacity.
        rng: Randomness source, for reproducibility.

    Raises:
        TopologyError: If fewer than two nodes are requested.
    """
    if node_count < 2:
        raise TopologyError(f"random topology needs >= 2 nodes, got {node_count}")
    if extra_links < 0:
        raise TopologyError(f"extra_links must be >= 0, got {extra_links}")
    rng = rng if rng is not None else random.Random(0)
    topology = Topology(name=f"random-{node_count}")
    uids = _add_nodes(topology, node_count, "N")
    for i in range(1, node_count):
        j = rng.randrange(i)
        topology.add_link(Link(uids[i], uids[j], capacity_mbps=capacity_mbps))
    max_links = node_count * (node_count - 1) // 2
    added = 0
    attempts = 0
    while added < extra_links and topology.link_count < max_links and attempts < 50 * extra_links + 50:
        attempts += 1
        a, b = rng.sample(uids, 2)
        if not topology.has_link_between(a, b):
            topology.add_link(Link(a, b, capacity_mbps=capacity_mbps))
            added += 1
    topology.validate()
    return topology
