"""Network model substrate.

The paper assumes "a network the participating nodes of which are known in
advance" with specific, limited per-link bandwidth.  This subpackage models
exactly that: named nodes (:mod:`repro.network.node`), undirected
capacity-limited links (:mod:`repro.network.link`), a validated topology
(:mod:`repro.network.topology`), bandwidth reservation/flow accounting
(:mod:`repro.network.flows`), from-scratch Dijkstra routing with a
paper-style step-table trace (:mod:`repro.network.routing`), and the GRNET
backbone of the paper's Figure 6 plus the Table 2 traffic trace
(:mod:`repro.network.grnet`).
"""

from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology
from repro.network.flows import Flow, FlowManager
from repro.network.routing.bellman_ford import BellmanFordResult, bellman_ford
from repro.network.routing.dijkstra import DijkstraResult, DijkstraStep, dijkstra
from repro.network.routing.paths import Path
from repro.network.topologies import (
    grid_topology,
    line_topology,
    random_topology,
    ring_topology,
    star_topology,
    tree_topology,
)

__all__ = [
    "BellmanFordResult",
    "DijkstraResult",
    "DijkstraStep",
    "Flow",
    "FlowManager",
    "Link",
    "Node",
    "Path",
    "Topology",
    "bellman_ford",
    "dijkstra",
    "grid_topology",
    "line_topology",
    "random_topology",
    "ring_topology",
    "star_topology",
    "tree_topology",
]
