"""Network node model.

A node is a point of presence that may host a video server (all GRNET nodes
do in the case study) and terminates one or more links.  Nodes are identified
by a short unique id (``"U1"``..``"U6"`` in the paper) and carry a
human-readable name (the city).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Node:
    """A network node.

    Attributes:
        uid: Unique identifier within a topology (e.g. ``"U2"``).
        name: Human-readable label (e.g. ``"Patra"``); defaults to ``uid``.
        attributes: Free-form metadata (coordinates, AS number, ...).
    """

    uid: str
    name: str = ""
    attributes: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.uid:
            raise ValueError("node uid must be a non-empty string")
        if not self.name:
            self.name = self.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Node):
            return self.uid == other.uid
        return NotImplemented

    def __repr__(self) -> str:
        if self.name != self.uid:
            return f"Node({self.uid!r}, {self.name!r})"
        return f"Node({self.uid!r})"
