"""Validated undirected network topology.

A :class:`Topology` owns :class:`~repro.network.node.Node` and
:class:`~repro.network.link.Link` objects and maintains the adjacency index
that both the LVN formulas (which sum over "links adjacent to node a") and
Dijkstra need.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.changes import DEFAULT_JOURNAL_CAPACITY, ChangeJournal
from repro.errors import TopologyError
from repro.network.link import STATE_CHANGE, Link, link_key
from repro.network.node import Node


class Topology:
    """An undirected graph of nodes and capacity-limited links.

    At most one link may exist between a pair of nodes (the paper's backbone
    is a simple graph); attempting to add a parallel link raises
    :class:`~repro.errors.TopologyError`.
    """

    def __init__(
        self,
        name: str = "network",
        journal_capacity: int = DEFAULT_JOURNAL_CAPACITY,
    ):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._links_by_name: Dict[str, Link] = {}
        self._adjacency: Dict[str, List[Link]] = {}
        self._state_version = 0
        self._traffic_version = 0
        #: Per-link change log backing delta-scoped routing-cache
        #: invalidation: every version bump also records *which* link
        #: moved (keyed by link name, kind = state/traffic).  A fault
        #: storm larger than ``journal_capacity`` overflows the journal,
        #: which delta consumers must answer with a full recompute.
        self.change_journal = ChangeJournal(capacity=journal_capacity)
        #: Optional listener fired (after versioning/journaling) whenever
        #: a link's online state flips, with the link.  The service wires
        #: its resilience layer here — session supervisor preemption and
        #: link circuit breakers — so fault events reach them in the same
        #: event that flipped the link.
        self.on_state_change: Optional[Callable[[Link], None]] = None

    # ------------------------------------------------------------------ #
    # change versioning (feeds the epoch-versioned routing cache)
    # ------------------------------------------------------------------ #
    @property
    def state_version(self) -> int:
        """Monotonic counter of routing-relevant *structural* changes:
        node/link additions and link online/offline transitions."""
        return self._state_version

    @property
    def traffic_version(self) -> int:
        """Monotonic counter of ground-truth used-bandwidth mutations
        (background traffic writes, flow reservations/releases)."""
        return self._traffic_version

    def _on_link_change(self, kind: str, link: Link) -> None:
        if kind == STATE_CHANGE:
            self._state_version += 1
        else:
            self._traffic_version += 1
        self.change_journal.record(link.name, kind)
        if kind == STATE_CHANGE and self.on_state_change is not None:
            self.on_state_change(link)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> Node:
        """Register a node.

        Raises:
            TopologyError: If a node with the same uid already exists.
        """
        if node.uid in self._nodes:
            raise TopologyError(f"duplicate node uid {node.uid!r} in topology {self.name!r}")
        self._nodes[node.uid] = node
        self._adjacency[node.uid] = []
        self._state_version += 1
        return node

    def add_link(self, link: Link) -> Link:
        """Register a link between two already-registered nodes.

        Raises:
            TopologyError: If either endpoint is unknown, the link name is
                taken, or a link between the endpoints already exists.
        """
        for uid in link.key:
            if uid not in self._nodes:
                raise TopologyError(
                    f"link {link.name!r} references unknown node {uid!r}; "
                    "add nodes before links"
                )
        if link.key in self._links:
            raise TopologyError(
                f"a link between {link.a_uid!r} and {link.b_uid!r} already exists"
            )
        if link.name in self._links_by_name:
            raise TopologyError(f"duplicate link name {link.name!r}")
        self._links[link.key] = link
        self._links_by_name[link.name] = link
        self._adjacency[link.a_uid].append(link)
        self._adjacency[link.b_uid].append(link)
        link._version_listener = self._on_link_change
        self._state_version += 1
        self.change_journal.record(link.name, STATE_CHANGE)
        return link

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        return len(self._links)

    def node(self, uid: str) -> Node:
        """Node by uid.

        Raises:
            TopologyError: If no such node exists.
        """
        try:
            return self._nodes[uid]
        except KeyError:
            raise TopologyError(f"unknown node {uid!r} in topology {self.name!r}") from None

    def has_node(self, uid: str) -> bool:
        return uid in self._nodes

    def nodes(self) -> Iterator[Node]:
        """All nodes, in insertion order."""
        return iter(self._nodes.values())

    def node_uids(self) -> List[str]:
        """All node uids, in insertion order."""
        return list(self._nodes)

    def links(self) -> Iterator[Link]:
        """All links, in insertion order."""
        return iter(self._links.values())

    def link_between(self, a_uid: str, b_uid: str) -> Link:
        """The link joining two nodes.

        Raises:
            TopologyError: If the nodes are not directly connected.
        """
        try:
            return self._links[link_key(a_uid, b_uid)]
        except KeyError:
            raise TopologyError(
                f"no link between {a_uid!r} and {b_uid!r} in topology {self.name!r}"
            ) from None

    def has_link_between(self, a_uid: str, b_uid: str) -> bool:
        if a_uid == b_uid:
            return False
        return link_key(a_uid, b_uid) in self._links

    def link_named(self, name: str) -> Link:
        """The link with the given human-readable name."""
        try:
            return self._links_by_name[name]
        except KeyError:
            raise TopologyError(f"unknown link name {name!r}") from None

    def links_at(self, uid: str) -> List[Link]:
        """Links adjacent to a node (the ``m`` set of the paper's eq. 2)."""
        if uid not in self._adjacency:
            raise TopologyError(f"unknown node {uid!r} in topology {self.name!r}")
        return list(self._adjacency[uid])

    def neighbors(self, uid: str) -> List[str]:
        """Uids of nodes directly connected to ``uid``."""
        return [link.other_end(uid) for link in self.links_at(uid)]

    def degree(self, uid: str) -> int:
        """Number of links at a node."""
        return len(self.links_at(uid))

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def is_connected(self) -> bool:
        """True if every node is reachable from every other node."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            uid = frontier.pop()
            for neighbor in self.neighbors(uid):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self._nodes)

    def validate(self) -> None:
        """Check structural invariants, raising on the first violation.

        Raises:
            TopologyError: If the topology has isolated nodes or is
                disconnected.  The VoD service requires every server to be
                reachable from every client.
        """
        for uid in self._nodes:
            if not self._adjacency[uid]:
                raise TopologyError(f"node {uid!r} has no links")
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} is not connected")

    def path_links(self, node_uids: Iterable[str]) -> List[Link]:
        """The links along a node sequence.

        Raises:
            TopologyError: If consecutive nodes are not directly connected.
        """
        uids = list(node_uids)
        return [self.link_between(a, b) for a, b in zip(uids, uids[1:])]

    def total_capacity_mbps(self) -> float:
        """Sum of all link capacities (diagnostic)."""
        return sum(link.capacity_mbps for link in self._links.values())

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, nodes={self.node_count}, "
            f"links={self.link_count})"
        )
