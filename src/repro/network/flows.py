"""Bandwidth reservation (flow) accounting.

A *flow* is a VoD stream occupying ``rate_mbps`` along every link of a path.
The :class:`FlowManager` reserves atomically — either every link on the path
accepts the reservation or none does — so link accounting can never be left
half-updated by an admission failure mid-path.

Hot-path shape: flash crowds reserve and release the same few node paths
over and over, so the manager memoizes the path → link-tuple resolution
(valid forever — links are never removed and parallel links are rejected,
so an existing node pair can never resolve differently).  Reservation is
check-then-commit: every link's free capacity is validated up front with
the exact acceptance test :meth:`~repro.network.link.Link.reserve` applies,
and only then are the links mutated — a failed admission touches nothing
(no reserve/rollback churn in the link telemetry or the change journal).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import FlowError, LinkCapacityError
from repro.network.link import Link
from repro.network.topology import Topology

#: Bound on memoized path resolutions; a pathological workload that never
#: repeats a path clears the memo instead of growing it without limit.
PATH_MEMO_CAPACITY = 4096


@dataclass(frozen=True)
class Flow:
    """An active bandwidth reservation.

    Attributes:
        flow_id: Unique id assigned by the manager.
        node_path: Node uids from source server to client's home server.
        rate_mbps: Reserved bandwidth on every link of the path.
    """

    flow_id: int
    node_path: Tuple[str, ...]
    rate_mbps: float

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return max(len(self.node_path) - 1, 0)


class FlowManager:
    """Creates and releases flows against a topology's links."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self._ids = itertools.count(1)
        self._active: Dict[int, Flow] = {}
        self._path_links: Dict[Tuple[str, ...], Tuple[Link, ...]] = {}

    @property
    def active_count(self) -> int:
        """Number of currently reserved flows."""
        return len(self._active)

    def active_flows(self) -> List[Flow]:
        """Snapshot of active flows."""
        return list(self._active.values())

    def _links_of(self, node_path: Iterable[str]) -> Tuple[Link, ...]:
        """Memoized path → link-tuple resolution (TopologyError on bad paths;
        only successful resolutions are cached, and they stay valid because
        links are never removed)."""
        key = tuple(node_path)
        links = self._path_links.get(key)
        if links is None:
            if len(self._path_links) >= PATH_MEMO_CAPACITY:
                self._path_links.clear()
            links = tuple(self._topology.path_links(key))
            self._path_links[key] = links
        return links

    def reserve(self, node_path: List[str], rate_mbps: float) -> Flow:
        """Atomically reserve ``rate_mbps`` along ``node_path``.

        A single-node path (source == destination, the paper's "adjacent
        server has the video" shortcut) reserves nothing but still yields a
        trackable flow.

        Raises:
            FlowError: If the path is empty or the rate is not positive.
            LinkCapacityError: If any link lacks spare capacity; in that
                case no link is modified.
        """
        if not node_path:
            raise FlowError("flow path must contain at least one node")
        if not (rate_mbps > 0.0):
            raise FlowError(f"flow rate must be positive, got {rate_mbps!r}")
        links = self._links_of(node_path)
        if len(set(links)) == len(links):
            # Normal case — no repeated links (shortest paths are simple).
            # Check every link with Link.reserve's own acceptance test,
            # then commit; the commit cannot fail because the links are
            # distinct, so no rollback path is needed.
            for link in links:
                if rate_mbps > link.free_mbps + 1e-9:
                    link.reserve(rate_mbps)  # raises the canonical error
            for link in links:
                link.reserve(rate_mbps)
        else:
            # Repeated links (a non-simple caller-supplied path): earlier
            # hops consume the capacity later hops need, so fall back to
            # sequential reserve with rollback.
            reserved: List[Link] = []
            try:
                for link in links:
                    link.reserve(rate_mbps)
                    reserved.append(link)
            except LinkCapacityError:
                for link in reserved:
                    link.release(rate_mbps)
                raise
        flow = Flow(flow_id=next(self._ids), node_path=tuple(node_path), rate_mbps=rate_mbps)
        self._active[flow.flow_id] = flow
        return flow

    def release(self, flow: Flow) -> None:
        """Release every link reservation held by ``flow``.

        Raises:
            FlowError: If the flow is unknown or already released.
        """
        if flow.flow_id not in self._active:
            raise FlowError(f"flow {flow.flow_id} is not active (double release?)")
        for link in self._links_of(flow.node_path):
            link.release(flow.rate_mbps)
        del self._active[flow.flow_id]

    def path_fits(self, node_path: List[str], rate_mbps: float) -> bool:
        """True if every link on the path has ``rate_mbps`` spare."""
        links = self._links_of(node_path)
        return all(link.free_mbps + 1e-9 >= rate_mbps for link in links)

    def bottleneck_mbps(self, node_path: List[str]) -> float:
        """Smallest spare capacity along the path (inf for a 1-node path)."""
        links = self._links_of(node_path)
        if not links:
            return float("inf")
        return min(link.free_mbps for link in links)
