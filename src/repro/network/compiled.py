"""Array-compiled routing core: CSR topology snapshots for the hot path.

:class:`TopologySnapshot` freezes a :class:`~repro.network.topology.Topology`
into flat int-indexed arrays — per-link endpoint/capacity/online arrays and a
CSR adjacency over node *positions* — and reuses them across decisions,
refreshing off the topology's ``state_version`` counter instead of re-walking
object adjacency per decision.  Two kernels run on top:

* :meth:`TopologySnapshot.weight_table_with_nv` — equations (1)-(4) over the
  link arrays, and
* :meth:`TopologySnapshot.dijkstra` — shortest paths over the CSR arrays.

Correctness contract — **bit-for-bit**, the same bar the incremental LVN
table meets: every table, NV map and Dijkstra result must equal the python
path (:func:`repro.core.lvn.weight_table_with_nv`,
:func:`repro.network.routing.dijkstra.dijkstra`) down to the last ulp *and*
down to dict insertion order.  The rules that enforce it:

* NV segment sums accumulate strictly left-to-right in ``links_at`` order,
  exactly like the python ``sum()``.  ``np.add.reduceat`` is deliberately
  *not* used: numpy reduces pairwise, which diverges from sequential
  addition in the last ulp.  The numpy backend instead accumulates padded
  per-node columns one at a time — each step an elementwise add, so every
  node's sum is still left-to-right — and masked-out (offline) or padding
  entries contribute ``0.0``, which is bitwise-neutral for the non-negative
  partial sums these equations produce.
* Elementwise divide/multiply/add/maximum are IEEE-correctly rounded in
  both numpy and CPython, so vectorizing them is order-free and safe.
* Dijkstra's heap orders by ``(distance, uid-rank)`` where the rank is the
  node's index in sorted-uid order — the same total order as the python
  path's ``(distance, uid)`` string comparison — and relaxation stays
  strict, so settlement order, the predecessor tree and the
  :func:`~repro.network.routing.dijkstra.tree_unaffected` proofs are
  untouched.

numpy is optional.  Below :data:`NUMPY_MIN_LINKS` links — or whenever numpy
is not installed — the kernels run over plain python lists instead; both
backends execute the exact same sequence of scalar operations, which is
what the no-numpy CI leg and the backend-equivalence property tests pin.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError, RoutingError, TopologyError
from repro.network.link import Link
from repro.network.routing.dijkstra import DijkstraResult
from repro.network.topology import Topology

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Link count below which the list backend is used even when numpy is
#: available: at GRNET-class sizes the per-call overhead of a dozen array
#: ops exceeds the cost of the plain loops, and the two backends are
#: bit-identical anyway so the switch is purely a latency decision.
NUMPY_MIN_LINKS = 256

#: The paper's suggested normalization constant (eq. 4); mirrors
#: ``repro.core.lvn.DEFAULT_NORMALIZATION_CONSTANT`` without importing the
#: core package from the network layer.
_DEFAULT_K = 10.0


class CompiledWeightTable(dict):
    """A weight table that also carries its values as a flat link array.

    Behaves exactly like the plain ``Dict[str, float]`` the python path
    returns (same keys, same insertion order, same values), but keeps the
    per-link value list aligned with the snapshot's link order so
    :meth:`TopologySnapshot.dijkstra` can skip the per-link dict lookups.
    ``structure_token`` guards against reusing the array after the snapshot
    rebuilt its structure (the dict fallback still works then).
    """

    __slots__ = ("link_values", "structure_token")


class TopologySnapshot:
    """Int-indexed CSR view of a topology, invalidated by version counters.

    Nodes are addressed by *position* (insertion order — the order
    ``topology.nodes()`` yields, which the python path's dicts follow) and
    carry their *rank* in sorted-uid order for Dijkstra tie-breaks.  Links
    are addressed by their ``topology.links()`` insertion index.

    Invalidation contract (see DESIGN.md):

    * ``topology.state_version`` unchanged — every array is current (used
      bandwidth is *not* mirrored; kernels read it per call through
      ``used_of``, so traffic changes need no refresh).
    * ``state_version`` moved, node/link counts unchanged — only online
      flags can have changed (links are never removed); refresh the online
      mask in O(links).
    * node or link count moved — full structural rebuild.
    """

    def __init__(self, topology: Topology):
        self._topology = topology
        self._seen_state_version = -1
        self._structure_version = 0
        #: Test hook: force "list" or "numpy" kernels regardless of size.
        self._force_backend: Optional[str] = None
        self._rebuild_structure()
        self._seen_state_version = topology.state_version

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def structure_token(self) -> Tuple[int, int]:
        """Identity of the current structural arrays (snapshot, rebuild#)."""
        return self._token

    def _rebuild_structure(self) -> None:
        topology = self._topology
        uids = topology.node_uids()
        n = len(uids)
        pos_of = {uid: p for p, uid in enumerate(uids)}
        # Rank = index in sorted-uid order; (dist, rank) compares exactly
        # like the python path's (dist, uid) because rank is monotone in uid.
        rank = [0] * n
        for r, p in enumerate(sorted(range(n), key=uids.__getitem__)):
            rank[p] = r

        links: List[Link] = list(topology.links())
        index_of = {link.name: i for i, link in enumerate(links)}
        self._links = links
        self._link_names = [link.name for link in links]
        self._cap = [link.capacity_mbps for link in links]
        self._a_pos = [pos_of[link.a_uid] for link in links]
        self._b_pos = [pos_of[link.b_uid] for link in links]
        self._online = [link.online for link in links]

        # One CSR over node positions, segments in links_at() order — the
        # exact order the python path's NV sums and Dijkstra scans use.
        inc_off = [0]
        inc_link: List[int] = []
        inc_nbr: List[int] = []
        linkless_uid: Optional[str] = None
        for uid in uids:
            adjacent = topology.links_at(uid)
            if not adjacent and linkless_uid is None:
                linkless_uid = uid
            for link in adjacent:
                inc_link.append(index_of[link.name])
                inc_nbr.append(pos_of[link.other_end(uid)])
            inc_off.append(len(inc_link))

        self._uids = uids
        self._pos_of = pos_of
        self._rank = rank
        self._inc_off = inc_off
        self._inc_link = inc_link
        self._inc_nbr = inc_nbr
        self._linkless_uid = linkless_uid
        self._lv_cache: Dict[float, object] = {}
        self._structure_version += 1
        self._token = (id(self), self._structure_version)
        self._node_count = n
        self._link_count = len(links)

        if _np is None:
            self._np_ready = False
        else:
            self._np_ready = True
            self._cap_arr = _np.asarray(self._cap, dtype=_np.float64)
            self._a_pos_arr = _np.asarray(self._a_pos, dtype=_np.intp)
            self._b_pos_arr = _np.asarray(self._b_pos, dtype=_np.intp)
            # Padded incidence matrix for the sequential-column NV
            # reduction: row p lists node p's incident link indices, padded
            # with the sentinel slot L whose used bandwidth reads 0.0.
            sentinel = len(links)
            degrees = [inc_off[p + 1] - inc_off[p] for p in range(n)]
            maxdeg = max(degrees, default=0)
            pad = _np.full((n, maxdeg), sentinel, dtype=_np.intp)
            for p in range(n):
                start, end = inc_off[p], inc_off[p + 1]
                if end > start:
                    pad[p, : end - start] = inc_link[start:end]
            self._pad_idx = pad
            self._maxdeg = maxdeg
        self._rebuild_online_derived()

    def _rebuild_online_derived(self) -> None:
        """Online-dependent derived arrays, rebuilt on every online flip.

        Structure and online state change orders of magnitude less often
        than decisions are made, so everything the per-call kernels would
        otherwise re-derive from the online mask is hoisted here: the
        online-filtered NV segments with their capacity totals (the
        denominators of eq. 1 — summed strictly left-to-right in
        ``links_at`` order, like the python ``sum()``), and Dijkstra's
        online-only edge lists (kept in ``links_at`` order so lazy weight
        validation fires in the python path's scan order).
        """
        n = self._node_count
        inc_off, inc_link, inc_nbr = self._inc_off, self._inc_link, self._inc_nbr
        online, cap = self._online, self._cap
        nv_links: List[List[int]] = []
        nv_cap: List[float] = []
        adj: List[List[Tuple[int, int]]] = []
        for p in range(n):
            segment = []
            total_cap = 0.0
            edges = []
            for j in range(inc_off[p], inc_off[p + 1]):
                i = inc_link[j]
                if online[i]:
                    segment.append(i)
                    total_cap += cap[i]
                    edges.append((inc_nbr[j], i))
            nv_links.append(segment)
            nv_cap.append(total_cap)
            adj.append(edges)
        self._nv_links = nv_links
        self._nv_cap = nv_cap
        self._adj_online = adj
        if self._np_ready:
            self._online_arr = _np.asarray(online, dtype=bool)
            cap_total = _np.asarray(nv_cap, dtype=_np.float64)
            dead = cap_total == 0.0
            self._dead_arr = dead
            self._safe_cap_arr = _np.where(dead, 1.0, cap_total)

    def _refresh_online(self) -> None:
        links = self._links
        online = self._online
        for i in range(len(links)):
            online[i] = links[i].online
        self._rebuild_online_derived()

    def refresh(self) -> None:
        """Bring the arrays up to date with the topology's version counters."""
        topology = self._topology
        version = topology.state_version
        if version == self._seen_state_version:
            return
        if (
            topology.node_count != self._node_count
            or topology.link_count != self._link_count
        ):
            self._rebuild_structure()
        else:
            self._refresh_online()
        self._seen_state_version = version

    # ------------------------------------------------------------------ #
    # LVN kernel (equations 1-4)
    # ------------------------------------------------------------------ #
    def _lv_values(self, normalization_constant: float, as_array: bool):
        """Per-link LV = capacity / K (eq. 4), cached per (K, backend).

        The list variant must hold plain python floats — the table the
        kernel hands back is audit state that gets JSON-serialized, so
        numpy scalars may never leak out of the numpy backend (whose
        ``tolist()`` conversion strips them).
        """
        key = (normalization_constant, as_array)
        cached = self._lv_cache.get(key)
        if cached is None:
            if as_array:
                cached = self._cap_arr / normalization_constant
            else:
                cached = [cap / normalization_constant for cap in self._cap]
            self._lv_cache[key] = cached
        return cached

    def _use_numpy(self) -> bool:
        if self._force_backend == "numpy":
            return self._np_ready
        if self._force_backend == "list":
            return False
        return self._np_ready and self._link_count >= NUMPY_MIN_LINKS

    def weight_table(
        self,
        used_of: Optional[Callable[[Link], float]] = None,
        normalization_constant: float = _DEFAULT_K,
    ) -> CompiledWeightTable:
        """The LVN table alone (mirrors :func:`repro.core.lvn.weight_table`)."""
        return self.weight_table_with_nv(used_of, normalization_constant, _nv=False)[0]

    def weight_table_with_nv(
        self,
        used_of: Optional[Callable[[Link], float]] = None,
        normalization_constant: float = _DEFAULT_K,
        _nv: bool = True,
    ) -> Tuple[CompiledWeightTable, Optional[Dict[str, float]]]:
        """Equations (1)-(4) over the arrays, bit-identical to the python path.

        Raises:
            ReproError: If a node has no adjacent links (matching
                :func:`repro.core.lvn.node_validation` — the first such node
                in insertion order), or the normalization constant is not
                positive.  A node whose links are all *offline* gets NV 0.0
                in both paths (the shared degenerate-topology rule).
        """
        self.refresh()
        if self._linkless_uid is not None:
            raise ReproError(
                f"node {self._linkless_uid!r} has no adjacent links; NV undefined"
            )
        if self._link_count and not (normalization_constant > 0.0):
            raise ReproError(
                f"normalization constant must be positive, got {normalization_constant!r}"
            )
        links = self._links
        if used_of is None:
            used_vals = [link.used_mbps for link in links]
        else:
            used_vals = [used_of(link) for link in links]

        if self._use_numpy():
            nv_vals, weights = self._kernel_numpy(used_vals, normalization_constant)
        else:
            nv_vals, weights = self._kernel_list(used_vals, normalization_constant)

        table = CompiledWeightTable(zip(self._link_names, weights))
        table.link_values = weights
        table.structure_token = self._token
        return table, dict(zip(self._uids, nv_vals)) if _nv else None

    def _kernel_list(
        self, used_vals: List[float], k: float
    ) -> Tuple[List[float], List[float]]:
        nv_vals = [0.0] * self._node_count
        for p, segment in enumerate(self._nv_links):
            total_cap = self._nv_cap[p]
            if total_cap > 0.0:
                total_used = 0.0
                for i in segment:
                    total_used += used_vals[i]
                nv_vals[p] = total_used / total_cap
        lv = self._lv_values(k, as_array=False)
        weights = [
            (nv_vals[a] if nv_vals[a] >= nv_vals[b] else nv_vals[b]) + (u / c) * v
            for a, b, u, c, v in zip(
                self._a_pos, self._b_pos, used_vals, self._cap, lv
            )
        ]
        return nv_vals, weights

    def _kernel_numpy(
        self, used_vals: List[float], k: float
    ) -> Tuple[List[float], List[float]]:
        count = self._link_count
        used_arr = _np.asarray(used_vals, dtype=_np.float64)
        # Extended (L+1)-slot array: offline links and the padding
        # sentinel both read 0.0, a bitwise no-op for these sums.  The
        # capacity totals (eq. 1 denominators) only depend on structure and
        # online state, so they come precomputed from the refresh.
        ext_used = _np.zeros(count + 1)
        ext_used[:count] = _np.where(self._online_arr, used_arr, 0.0)
        padded_used = ext_used[self._pad_idx]
        if self._maxdeg:
            total_used = padded_used[:, 0].copy()
            # Column-at-a-time accumulation: every node's sum proceeds
            # strictly left-to-right, exactly like the python sum().
            for j in range(1, self._maxdeg):
                total_used += padded_used[:, j]
        else:  # pragma: no cover - only reachable with zero nodes
            total_used = _np.zeros(self._node_count)
        nv_arr = _np.where(self._dead_arr, 0.0, total_used / self._safe_cap_arr)
        lu = (used_arr / self._cap_arr) * self._lv_values(k, as_array=True)
        weights = _np.maximum(nv_arr[self._a_pos_arr], nv_arr[self._b_pos_arr]) + lu
        return nv_arr.tolist(), weights.tolist()

    # ------------------------------------------------------------------ #
    # Dijkstra over the CSR arrays
    # ------------------------------------------------------------------ #
    def _weight_values(self, weights: Dict[str, float]) -> List[float]:
        if (
            type(weights) is CompiledWeightTable
            and weights.structure_token == self._token
        ):
            return weights.link_values
        return [weights[name] for name in self._link_names]

    def routing_state(
        self,
        source: str,
        used_of: Optional[Callable[[Link], float]] = None,
        normalization_constant: float = _DEFAULT_K,
    ) -> Tuple[CompiledWeightTable, DijkstraResult]:
        """One decision's (weight table, shortest-path tree), fused.

        The cache-less hot path calls both per decision; fusing them shares
        the version check and hands the freshly computed value array to
        Dijkstra without the token round-trip.
        """
        table = self.weight_table_with_nv(used_of, normalization_constant, _nv=False)[0]
        return table, self._run_dijkstra(source, table.link_values)

    def dijkstra(self, source: str, weights: Dict[str, float]) -> DijkstraResult:
        """Single-source shortest paths, bit-identical to the python path.

        Same determinism contract, error messages and dict insertion order
        as :func:`repro.network.routing.dijkstra.dijkstra` (trace mode is
        not supported here; the VRA falls back to the python path for it).
        """
        self.refresh()
        if source not in self._pos_of:
            # Checked before weight resolution so an unknown source raises
            # the python path's TopologyError even with stale/empty weights.
            raise TopologyError(
                f"Dijkstra source {source!r} is not in topology {self._topology.name!r}"
            )
        return self._run_dijkstra(source, self._weight_values(weights))

    def _run_dijkstra(self, source: str, values: List[float]) -> DijkstraResult:
        pos = self._pos_of.get(source)
        if pos is None:
            raise TopologyError(
                f"Dijkstra source {source!r} is not in topology {self._topology.name!r}"
            )
        n = self._node_count
        inf = float("inf")
        dist = [inf] * n
        prev = [-1] * n
        settled = bytearray(n)
        rank = self._rank
        adj, names = self._adj_online, self._link_names
        heappush, heappop = heapq.heappush, heapq.heappop

        dist[pos] = 0.0
        reached = [pos]  # dict insertion order: source, then first relaxations
        heap: List[Tuple[float, int, int]] = [(0.0, rank[pos], pos)]
        while heap:
            d, _, u = heappop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            # Offline links are already filtered out of the edge lists —
            # before validation, matching the python path's lazy scan.
            for v, i in adj[u]:
                cost = values[i]
                if not (cost >= 0.0):  # rejects negatives and NaN
                    raise RoutingError(
                        f"link {names[i]!r} has invalid weight {cost!r}; "
                        "Dijkstra requires non-negative weights"
                    )
                if settled[v]:
                    continue
                candidate = d + cost
                if candidate < dist[v]:
                    if dist[v] == inf:
                        reached.append(v)
                    dist[v] = candidate
                    prev[v] = u
                    heappush(heap, (candidate, rank[v], v))

        uids = self._uids
        distances = {uids[p]: dist[p] for p in reached}
        predecessors = {
            uids[p]: uids[prev[p]] if prev[p] >= 0 else None for p in reached
        }
        return DijkstraResult(
            source=source, distances=distances, predecessors=predecessors
        )
