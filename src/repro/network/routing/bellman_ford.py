"""Bellman-Ford shortest paths.

The paper asserts the links are "assigned with a numeric weight of
negative value" while printing strictly positive numbers (DESIGN.md §5
erratum 3).  Dijkstra — which the paper actually runs — is only correct
for non-negative weights; Bellman-Ford is the algorithm that *would* have
been required had the weights truly been negative.  It is provided

* as an independent oracle for the Dijkstra implementation (property
  tests assert identical distances on non-negative weights), and
* to make the erratum concrete: on genuinely negative weights an
  undirected graph always contains a negative cycle (any negative edge
  traversed back and forth), which :func:`bellman_ford` detects — i.e.
  the paper's "negative weights" reading is not merely unconventional,
  it is unroutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError, TopologyError
from repro.network.routing.dijkstra import WeightFn
from repro.network.routing.paths import Path
from repro.network.topology import Topology


@dataclass
class BellmanFordResult:
    """Shortest-path tree from a single source, with cycle detection.

    Attributes:
        source: Source node uid.
        distances: Uid -> shortest distance (unreachable uids absent).
        predecessors: Uid -> previous hop on the shortest path.
        negative_cycle: True when a negative cycle is reachable from the
            source, in which case distances are not meaningful.
    """

    source: str
    distances: Dict[str, float]
    predecessors: Dict[str, Optional[str]]
    negative_cycle: bool = False

    def reaches(self, target: str) -> bool:
        """True if ``target`` is reachable (and no negative cycle)."""
        return not self.negative_cycle and target in self.distances

    def cost(self, target: str) -> float:
        """Shortest distance to ``target``.

        Raises:
            RoutingError: On unreachable targets or negative cycles.
        """
        if self.negative_cycle:
            raise RoutingError(
                "distances are undefined: a negative cycle is reachable "
                f"from {self.source!r}"
            )
        try:
            return self.distances[target]
        except KeyError:
            raise RoutingError(
                f"node {target!r} is unreachable from {self.source!r}"
            ) from None

    def path(self, target: str) -> Path:
        """Shortest :class:`Path` from the source to ``target``."""
        cost = self.cost(target)
        nodes: List[str] = []
        cursor: Optional[str] = target
        while cursor is not None:
            nodes.append(cursor)
            cursor = self.predecessors.get(cursor)
        nodes.reverse()
        if nodes[0] != self.source:
            raise RoutingError(
                f"broken predecessor chain for {target!r} from {self.source!r}"
            )
        return Path(nodes=tuple(nodes), cost=cost)


def bellman_ford(topology: Topology, source: str, weight: WeightFn) -> BellmanFordResult:
    """Single-source shortest paths, tolerating negative edge weights.

    Undirected edges are treated as two directed arcs of the same weight,
    so *any* reachable negative-weight link implies a negative cycle —
    which is exactly the lesson of the paper's erratum 3.

    Raises:
        TopologyError: If ``source`` is not in the topology.
    """
    if not topology.has_node(source):
        raise TopologyError(
            f"Bellman-Ford source {source!r} is not in topology {topology.name!r}"
        )
    arcs: List[Tuple[str, str, float]] = []
    for link in topology.links():
        if not link.online:
            continue
        cost = weight(link)
        if cost != cost:  # NaN
            raise RoutingError(f"link {link.name!r} has NaN weight")
        arcs.append((link.a_uid, link.b_uid, cost))
        arcs.append((link.b_uid, link.a_uid, cost))

    distances: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Optional[str]] = {source: None}

    for _ in range(max(topology.node_count - 1, 0)):
        changed = False
        for a, b, cost in arcs:
            if a in distances and distances[a] + cost < distances.get(b, float("inf")) - 1e-15:
                distances[b] = distances[a] + cost
                predecessors[b] = a
                changed = True
        if not changed:
            break

    negative_cycle = any(
        a in distances
        and distances[a] + cost < distances.get(b, float("inf")) - 1e-12
        for a, b, cost in arcs
    )
    return BellmanFordResult(
        source=source,
        distances=distances,
        predecessors=predecessors,
        negative_cycle=negative_cycle,
    )
