"""Routing algorithms over :class:`~repro.network.topology.Topology`.

:mod:`repro.network.routing.dijkstra` is a from-scratch Dijkstra used by the
paper's VRA; it offers a *trace mode* that records the per-step tentative
distance table in exactly the layout of the paper's Tables 4 and 5.
"""

from repro.network.routing.bellman_ford import BellmanFordResult, bellman_ford
from repro.network.routing.cache import (
    DEFAULT_TREE_CAPACITY,
    RoutingCache,
    RoutingCacheStats,
)
from repro.network.routing.dijkstra import DijkstraResult, DijkstraStep, dijkstra
from repro.network.routing.paths import Path

__all__ = [
    "BellmanFordResult",
    "DEFAULT_TREE_CAPACITY",
    "DijkstraResult",
    "DijkstraStep",
    "Path",
    "RoutingCache",
    "RoutingCacheStats",
    "bellman_ford",
    "dijkstra",
]
