"""Path value object shared by routing and the VRA."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Path:
    """A route through the network with its total cost.

    Attributes:
        nodes: Node uids from source to destination, inclusive.
        cost: Sum of link weights along the path (0 for a 1-node path).
    """

    nodes: Tuple[str, ...]
    cost: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a path must contain at least one node")

    @property
    def source(self) -> str:
        """First node of the path."""
        return self.nodes[0]

    @property
    def destination(self) -> str:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    def reversed(self) -> "Path":
        """The same path walked destination-to-source (same cost; the
        paper's Tables give paths as "U2,U1,U6,U5" but downloads follow the
        reverse direction)."""
        return Path(nodes=tuple(reversed(self.nodes)), cost=self.cost)

    def as_label(self) -> str:
        """Paper-style comma-joined node list, e.g. ``"U2,U1,U6,U5"``."""
        return ",".join(self.nodes)

    def __repr__(self) -> str:
        return f"Path({self.as_label()}, cost={self.cost:.4f})"
