"""From-scratch Dijkstra shortest paths with a paper-style step trace.

The VRA "run[s] the Dijkstra's routing algorithm to calculate the least
expensive paths from the client's adjacent server to all other network
nodes" (Figure 5).  :func:`dijkstra` implements that over arbitrary
non-negative link weights.

Trace mode reproduces the tabular presentation of the paper's Tables 4-5
(after reference [7], R. Jain's routing-course notes): one row per settled
node, columns holding each destination's tentative distance ("R" while
unreached) and the tentative path.  Note that the paper's own Table 4
contains a missed relaxation (DESIGN.md §5); this implementation performs
*all* relaxations, so its Experiment A row differs from the misprinted one —
the benchmark reports the delta explicitly.

Determinism contract: ties are broken by node uid (not by relaxation
history), and a relaxation only wins on a *strict* improvement.  The
result is therefore a pure function of (topology, online set, weights),
which is what lets :func:`tree_unaffected` prove that a cached tree is
bit-for-bit identical to a fresh run after a set of link deltas.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError, TopologyError
from repro.network.link import Link
from repro.network.routing.paths import Path
from repro.network.topology import Topology

WeightFn = Callable[[Link], float]

#: Marker used in trace rows for a destination not yet reached — the paper's
#: tables print "R" (for "unReachable so far").
UNREACHED = "R"


@dataclass(frozen=True)
class DijkstraStep:
    """One row of the paper-style Dijkstra table.

    Attributes:
        step: 1-based settlement count.
        settled: Uids settled so far, in settlement order.
        distances: Destination uid -> tentative distance (unreached nodes
            are absent).
        paths: Destination uid -> tentative path node tuple.
    """

    step: int
    settled: Tuple[str, ...]
    distances: Dict[str, float]
    paths: Dict[str, Tuple[str, ...]]

    def distance_label(self, uid: str, digits: int = 3) -> str:
        """Formatted tentative distance, or ``"R"`` when unreached."""
        if uid not in self.distances:
            return UNREACHED
        return f"{self.distances[uid]:.{digits}f}"

    def path_label(self, uid: str) -> str:
        """Paper-style comma-joined tentative path, or ``"-"``."""
        if uid not in self.paths:
            return "-"
        return ",".join(self.paths[uid])


@dataclass
class DijkstraResult:
    """Shortest-path tree from a single source.

    Attributes:
        source: Source node uid.
        distances: Uid -> final shortest distance (unreachable uids absent).
        predecessors: Uid -> previous hop on the shortest path.
        steps: Trace rows (empty unless trace mode was requested).
    """

    source: str
    distances: Dict[str, float]
    predecessors: Dict[str, Optional[str]]
    steps: List[DijkstraStep] = field(default_factory=list)

    def reaches(self, target: str) -> bool:
        """True if ``target`` is reachable from the source."""
        return target in self.distances

    def cost(self, target: str) -> float:
        """Shortest distance to ``target``.

        Raises:
            RoutingError: If ``target`` is unreachable.
        """
        try:
            return self.distances[target]
        except KeyError:
            raise RoutingError(
                f"node {target!r} is unreachable from {self.source!r}"
            ) from None

    def path(self, target: str) -> Path:
        """Shortest :class:`Path` from the source to ``target``.

        Raises:
            RoutingError: If ``target`` is unreachable.
        """
        cost = self.cost(target)
        nodes: List[str] = []
        cursor: Optional[str] = target
        while cursor is not None:
            nodes.append(cursor)
            cursor = self.predecessors.get(cursor)
        nodes.reverse()
        if nodes[0] != self.source:
            raise RoutingError(
                f"broken predecessor chain for {target!r} from {self.source!r}"
            )
        return Path(nodes=tuple(nodes), cost=cost)

    def node_path(self, target: str) -> Tuple[str, ...]:
        """Node-uid tuple of the shortest path (convenience)."""
        return self.path(target).nodes


def dijkstra(
    topology: Topology,
    source: str,
    weight: WeightFn,
    trace: bool = False,
) -> DijkstraResult:
    """Single-source shortest paths over non-negative link weights.

    Args:
        topology: The network to route over.
        source: Source node uid (the client's home server in the VRA).
        weight: Function mapping each :class:`Link` to its cost — the VRA
            passes the LVN of the link.
        trace: When True, record a :class:`DijkstraStep` per settled node in
            the layout of the paper's Tables 4-5.

    Returns:
        A :class:`DijkstraResult` with distances, predecessors and the
        optional trace.

    Raises:
        TopologyError: If ``source`` is not in the topology.
        RoutingError: If any link weight is negative or NaN.
    """
    if not topology.has_node(source):
        raise TopologyError(f"Dijkstra source {source!r} is not in topology {topology.name!r}")

    distances: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Optional[str]] = {source: None}
    settled: List[str] = []
    settled_set = set()
    steps: List[DijkstraStep] = []
    # Ties break on the node uid, so settlement order — and therefore the
    # predecessor tree — depends only on the final weights, never on the
    # order relaxations happened to occur in.  The tree-revalidation rules
    # of :func:`tree_unaffected` rely on this.
    heap: List[Tuple[float, str]] = [(0.0, source)]

    while heap:
        dist, uid = heapq.heappop(heap)
        if uid in settled_set:
            continue
        settled_set.add(uid)
        settled.append(uid)
        for link in topology.links_at(uid):
            if not link.online:
                continue
            cost = weight(link)
            if not (cost >= 0.0):  # rejects negatives and NaN
                raise RoutingError(
                    f"link {link.name!r} has invalid weight {cost!r}; "
                    "Dijkstra requires non-negative weights"
                )
            neighbor = link.other_end(uid)
            if neighbor in settled_set:
                continue
            candidate = dist + cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = uid
                heapq.heappush(heap, (candidate, neighbor))
        if trace:
            steps.append(_snapshot_step(len(steps) + 1, settled, distances, predecessors, source))

    return DijkstraResult(
        source=source, distances=distances, predecessors=predecessors, steps=steps
    )


@dataclass(frozen=True)
class LinkDelta:
    """One link's routing-relevant change between two weight snapshots.

    Produced by the incremental LVN table
    (:class:`repro.core.lvn_delta.IncrementalLvnTable`) and consumed by
    :func:`tree_unaffected` to decide whether a cached Dijkstra tree is
    still bit-for-bit valid.

    Attributes:
        link: The link that changed.
        old_weight: LVN before the change (None if the link is new).
        new_weight: LVN after the change.
        was_online: Online state before the change (False for new links).
        now_online: Online state after the change.
    """

    link: Link
    old_weight: Optional[float]
    new_weight: float
    was_online: bool
    now_online: bool


def tree_unaffected(result: DijkstraResult, delta: LinkDelta) -> bool:
    """True if ``delta`` provably leaves ``result`` bit-for-bit identical.

    The rules are sound but conservative: a True verdict guarantees that a
    fresh :func:`dijkstra` run over the post-delta weights would return the
    exact distances and predecessors already cached; a False verdict only
    means the proof failed, and the caller re-roots from scratch.

    Soundness leans on the determinism contract (uid tie-break + strict
    relaxation): the final predecessor of a node is the earliest-settled
    neighbor achieving its final distance, so transient relaxations that a
    changed link adds or removes cannot alter the output as long as no
    final distance moves and no settlement-order tie is disturbed.

    Per-delta rules (``u``/``v`` the endpoints, ``d`` the cached
    distances):

    * offline before and after — the link is invisible to both runs.
    * removal (online -> offline): safe iff the link is not a tree edge;
      every cached shortest path survives, so no distance moves.
    * insertion (offline -> online, or a brand-new link): safe if both
      endpoints are unreachable (the edge stays outside the routed
      component); unsafe if exactly one is reachable (new reachability);
      with both reachable, safe iff ``min(du, dv) + w_new > max(du, dv)``
      *strictly* — equality would let the new edge become the
      earliest-settled achiever and steal a predecessor.
    * weight change on a live link: unsafe on a tree edge; on a non-tree
      edge, treat as remove-then-insert (the strict bound above, with the
      new weight).

    The rules compose: a batch of deltas that each pass individually is
    jointly safe, because passing removals keep every cached distance
    achievable and passing insertions keep every cached distance optimal.
    """
    link = delta.link
    if not delta.was_online and not delta.now_online:
        return True

    u, v = link.a_uid, link.b_uid
    preds = result.predecessors
    is_tree_edge = preds.get(u) == v or preds.get(v) == u

    if delta.was_online and not delta.now_online:
        return not is_tree_edge

    du = result.distances.get(u)
    dv = result.distances.get(v)
    if not delta.was_online:  # insertion
        if du is None and dv is None:
            return True
        if du is None or dv is None:
            return False
        return min(du, dv) + delta.new_weight > max(du, dv)

    # Online throughout: a pure weight change.
    if is_tree_edge:
        return False
    if du is None and dv is None:
        return True
    if du is None or dv is None:
        # An online link with exactly one reachable endpoint cannot occur
        # in a consistent cached run; refuse the proof rather than trust it.
        return False
    return min(du, dv) + delta.new_weight > max(du, dv)


def _snapshot_step(
    step: int,
    settled: List[str],
    distances: Dict[str, float],
    predecessors: Dict[str, Optional[str]],
    source: str,
) -> DijkstraStep:
    """Capture the tentative table after a settlement, paper-style."""
    dist_snapshot: Dict[str, float] = {}
    path_snapshot: Dict[str, Tuple[str, ...]] = {}
    for uid, dist in distances.items():
        if uid == source:
            continue
        dist_snapshot[uid] = dist
        nodes: List[str] = []
        cursor: Optional[str] = uid
        while cursor is not None:
            nodes.append(cursor)
            cursor = predecessors.get(cursor)
        nodes.reverse()
        path_snapshot[uid] = tuple(nodes)
    return DijkstraStep(
        step=step,
        settled=tuple(settled),
        distances=dist_snapshot,
        paths=path_snapshot,
    )
