"""From-scratch Dijkstra shortest paths with a paper-style step trace.

The VRA "run[s] the Dijkstra's routing algorithm to calculate the least
expensive paths from the client's adjacent server to all other network
nodes" (Figure 5).  :func:`dijkstra` implements that over arbitrary
non-negative link weights.

Trace mode reproduces the tabular presentation of the paper's Tables 4-5
(after reference [7], R. Jain's routing-course notes): one row per settled
node, columns holding each destination's tentative distance ("R" while
unreached) and the tentative path.  Note that the paper's own Table 4
contains a missed relaxation (DESIGN.md §5); this implementation performs
*all* relaxations, so its Experiment A row differs from the misprinted one —
the benchmark reports the delta explicitly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import RoutingError, TopologyError
from repro.network.link import Link
from repro.network.routing.paths import Path
from repro.network.topology import Topology

WeightFn = Callable[[Link], float]

#: Marker used in trace rows for a destination not yet reached — the paper's
#: tables print "R" (for "unReachable so far").
UNREACHED = "R"


@dataclass(frozen=True)
class DijkstraStep:
    """One row of the paper-style Dijkstra table.

    Attributes:
        step: 1-based settlement count.
        settled: Uids settled so far, in settlement order.
        distances: Destination uid -> tentative distance (unreached nodes
            are absent).
        paths: Destination uid -> tentative path node tuple.
    """

    step: int
    settled: Tuple[str, ...]
    distances: Dict[str, float]
    paths: Dict[str, Tuple[str, ...]]

    def distance_label(self, uid: str, digits: int = 3) -> str:
        """Formatted tentative distance, or ``"R"`` when unreached."""
        if uid not in self.distances:
            return UNREACHED
        return f"{self.distances[uid]:.{digits}f}"

    def path_label(self, uid: str) -> str:
        """Paper-style comma-joined tentative path, or ``"-"``."""
        if uid not in self.paths:
            return "-"
        return ",".join(self.paths[uid])


@dataclass
class DijkstraResult:
    """Shortest-path tree from a single source.

    Attributes:
        source: Source node uid.
        distances: Uid -> final shortest distance (unreachable uids absent).
        predecessors: Uid -> previous hop on the shortest path.
        steps: Trace rows (empty unless trace mode was requested).
    """

    source: str
    distances: Dict[str, float]
    predecessors: Dict[str, Optional[str]]
    steps: List[DijkstraStep] = field(default_factory=list)

    def reaches(self, target: str) -> bool:
        """True if ``target`` is reachable from the source."""
        return target in self.distances

    def cost(self, target: str) -> float:
        """Shortest distance to ``target``.

        Raises:
            RoutingError: If ``target`` is unreachable.
        """
        try:
            return self.distances[target]
        except KeyError:
            raise RoutingError(
                f"node {target!r} is unreachable from {self.source!r}"
            ) from None

    def path(self, target: str) -> Path:
        """Shortest :class:`Path` from the source to ``target``.

        Raises:
            RoutingError: If ``target`` is unreachable.
        """
        cost = self.cost(target)
        nodes: List[str] = []
        cursor: Optional[str] = target
        while cursor is not None:
            nodes.append(cursor)
            cursor = self.predecessors.get(cursor)
        nodes.reverse()
        if nodes[0] != self.source:
            raise RoutingError(
                f"broken predecessor chain for {target!r} from {self.source!r}"
            )
        return Path(nodes=tuple(nodes), cost=cost)

    def node_path(self, target: str) -> Tuple[str, ...]:
        """Node-uid tuple of the shortest path (convenience)."""
        return self.path(target).nodes


def dijkstra(
    topology: Topology,
    source: str,
    weight: WeightFn,
    trace: bool = False,
) -> DijkstraResult:
    """Single-source shortest paths over non-negative link weights.

    Args:
        topology: The network to route over.
        source: Source node uid (the client's home server in the VRA).
        weight: Function mapping each :class:`Link` to its cost — the VRA
            passes the LVN of the link.
        trace: When True, record a :class:`DijkstraStep` per settled node in
            the layout of the paper's Tables 4-5.

    Returns:
        A :class:`DijkstraResult` with distances, predecessors and the
        optional trace.

    Raises:
        TopologyError: If ``source`` is not in the topology.
        RoutingError: If any link weight is negative or NaN.
    """
    if not topology.has_node(source):
        raise TopologyError(f"Dijkstra source {source!r} is not in topology {topology.name!r}")

    distances: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Optional[str]] = {source: None}
    settled: List[str] = []
    settled_set = set()
    steps: List[DijkstraStep] = []
    heap: List[Tuple[float, int, str]] = [(0.0, 0, source)]
    counter = 1

    while heap:
        dist, _, uid = heapq.heappop(heap)
        if uid in settled_set:
            continue
        settled_set.add(uid)
        settled.append(uid)
        for link in topology.links_at(uid):
            if not link.online:
                continue
            cost = weight(link)
            if not (cost >= 0.0):  # rejects negatives and NaN
                raise RoutingError(
                    f"link {link.name!r} has invalid weight {cost!r}; "
                    "Dijkstra requires non-negative weights"
                )
            neighbor = link.other_end(uid)
            if neighbor in settled_set:
                continue
            candidate = dist + cost
            if candidate < distances.get(neighbor, float("inf")) - 1e-15:
                distances[neighbor] = candidate
                predecessors[neighbor] = uid
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
        if trace:
            steps.append(_snapshot_step(len(steps) + 1, settled, distances, predecessors, source))

    return DijkstraResult(
        source=source, distances=distances, predecessors=predecessors, steps=steps
    )


def _snapshot_step(
    step: int,
    settled: List[str],
    distances: Dict[str, float],
    predecessors: Dict[str, Optional[str]],
    source: str,
) -> DijkstraStep:
    """Capture the tentative table after a settlement, paper-style."""
    dist_snapshot: Dict[str, float] = {}
    path_snapshot: Dict[str, Tuple[str, ...]] = {}
    for uid, dist in distances.items():
        if uid == source:
            continue
        dist_snapshot[uid] = dist
        nodes: List[str] = []
        cursor: Optional[str] = uid
        while cursor is not None:
            nodes.append(cursor)
            cursor = predecessors.get(cursor)
        nodes.reverse()
        path_snapshot[uid] = tuple(nodes)
    return DijkstraStep(
        step=step,
        settled=tuple(settled),
        distances=dist_snapshot,
        paths=path_snapshot,
    )
