"""Epoch-versioned memoization of routing state.

The VRA recomputes the LVN weight table (equations 1-4) and a full
Dijkstra tree for every decision, yet its inputs only change when a
*routing epoch* advances: an SNMP sample lands in the limited-access
database, a link fails or recovers, or — on the ground-truth path —
link usage itself mutates.  Between epochs every recomputation is
byte-identical, so the service threads a cheap epoch token (see
``VoDService.routing_epoch``) through this cache and reuses:

* the LVN ``weight_table`` — one per epoch, and
* the ``DijkstraResult`` shortest-path tree — one per ``(epoch, source)``,
  LRU-bounded by ``max_trees``.

Correctness contract: the epoch token MUST change whenever any routing
input could have changed.  Under that contract a cache hit returns the
same decision bit-for-bit as a cold run; the SNMP *staleness* the paper
reproduces lives in the database values themselves, not in the act of
recomputing, so memoization preserves it exactly (the VRA still sees
exactly the last SNMP sample).

Epoch transitions come in two flavours.  Without a ``delta_probe`` the
cache behaves as in PR 1: a new epoch token flushes everything (a *full*
invalidation).  With a probe — wired up by the VRA from the topology and
database change journals plus an incremental LVN table — the cache first
asks it for ``(patched_weight_table, link_deltas)``; on success only the
deltas are applied (a *partial* invalidation): the weight table is
swapped for the patched copy and each cached Dijkstra tree is kept iff
:func:`~repro.network.routing.dijkstra.tree_unaffected` proves it
bit-for-bit valid against every delta (kept = *repaired*; dropped =
*rerooted* lazily on the next request).  The probe returning None — the
journals overflowed, or there is no base table yet — degrades to the
full flush, so delta maintenance can only ever cost performance, never
correctness.

``max_trees=0`` disables the cache entirely: every call computes fresh
and no counters move, restoring the uncached behaviour exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ReproError
from repro.network.routing.dijkstra import DijkstraResult, LinkDelta, tree_unaffected
from repro.obs.registry import NULL_COUNTER, Counter, MetricsRegistry

#: Default LRU bound on cached Dijkstra trees (one per home server is the
#: steady state, so this comfortably covers topologies of ~128 nodes).
DEFAULT_TREE_CAPACITY = 128

#: Signature of the delta probe: None means "cannot patch, flush fully";
#: otherwise the patched weight table plus the link deltas to revalidate
#: cached trees against.
DeltaProbe = Callable[[], Optional[Tuple[Dict[str, float], List[LinkDelta]]]]


@dataclass
class RoutingCacheStats:
    """Hit/miss/invalidation counters of one :class:`RoutingCache`.

    Attributes:
        weight_hits: LVN table requests answered from cache.
        weight_misses: LVN table requests that recomputed.
        tree_hits: Dijkstra-tree requests answered from cache.
        tree_misses: Dijkstra-tree requests that recomputed.
        full_invalidations: Epoch transitions that flushed everything
            (no delta probe, or the probe could not patch).
        partial_invalidations: Epoch transitions absorbed by patching
            the weight table and revalidating trees against link deltas.
        dirty_links: Link deltas applied across all partial
            invalidations (0 deltas = a no-op epoch, the steady-SNMP
            case).
        trees_repaired: Cached trees proven still valid in place across
            a non-empty delta batch.
        trees_rerooted: Cached trees dropped by delta revalidation (they
            recompute lazily, from their own source only, on next use).
        evictions: Trees dropped by the LRU bound (not by invalidation).
    """

    weight_hits: int = 0
    weight_misses: int = 0
    tree_hits: int = 0
    tree_misses: int = 0
    full_invalidations: int = 0
    partial_invalidations: int = 0
    dirty_links: int = 0
    trees_repaired: int = 0
    trees_rerooted: int = 0
    evictions: int = 0

    @property
    def invalidations(self) -> int:
        """Total epoch transitions handled (full flushes + partials).

        PR 1 dashboards read this name; it keeps meaning "epochs the
        cache had to react to" now that most of them no longer flush.
        """
        return self.full_invalidations + self.partial_invalidations

    @property
    def hits(self) -> int:
        """Total cache hits (weights + trees)."""
        return self.weight_hits + self.tree_hits

    @property
    def misses(self) -> int:
        """Total cache misses (weights + trees)."""
        return self.weight_misses + self.tree_misses

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, in [0, 1] (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for snapshots, traces and reports."""
        return {
            "weight_hits": self.weight_hits,
            "weight_misses": self.weight_misses,
            "tree_hits": self.tree_hits,
            "tree_misses": self.tree_misses,
            "invalidations": self.invalidations,
            "full_invalidations": self.full_invalidations,
            "partial_invalidations": self.partial_invalidations,
            "dirty_links": self.dirty_links,
            "trees_repaired": self.trees_repaired,
            "trees_rerooted": self.trees_rerooted,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class RoutingCache:
    """Per-epoch memo of the LVN table and Dijkstra trees.

    Args:
        max_trees: LRU bound on cached trees; ``0`` disables the cache.
        delta_probe: Optional callable consulted on every epoch
            transition; see the module docstring.  None restores PR 1's
            flush-on-every-epoch behaviour.

    The cache holds state for exactly one epoch at a time: the first
    lookup under a new epoch token either patches the previous epoch's
    state via the delta probe or flushes it (counted as a partial or
    full invalidation respectively).  Keeping only the live epoch is
    deliberate — stale epochs can never be asked for again, because the
    version counters feeding the token are monotonic.
    """

    max_trees: int = DEFAULT_TREE_CAPACITY
    delta_probe: Optional[DeltaProbe] = None
    stats: RoutingCacheStats = field(default_factory=RoutingCacheStats)
    _epoch: Optional[Hashable] = field(default=None, repr=False)
    _weights: Optional[Dict[str, float]] = field(default=None, repr=False)
    _trees: "OrderedDict[str, DijkstraResult]" = field(
        default_factory=OrderedDict, repr=False
    )
    _m_partial: Counter = field(default=NULL_COUNTER, repr=False, compare=False)
    _m_dirty: Counter = field(default=NULL_COUNTER, repr=False, compare=False)
    _m_repaired: Counter = field(default=NULL_COUNTER, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_trees < 0:
            raise ReproError(
                f"routing cache size must be >= 0, got {self.max_trees!r}"
            )

    @property
    def enabled(self) -> bool:
        """False when ``max_trees`` is 0 (pass-through mode)."""
        return self.max_trees > 0

    @property
    def epoch(self) -> Optional[Hashable]:
        """The epoch token currently cached (None before first use)."""
        return self._epoch

    def weights(
        self, epoch: Hashable, compute: Callable[[], Dict[str, float]]
    ) -> Dict[str, float]:
        """The LVN table for ``epoch``, computing via ``compute`` on miss."""
        if not self.enabled:
            return compute()
        self._sync_epoch(epoch)
        if self._weights is None:
            self.stats.weight_misses += 1
            self._weights = compute()
        else:
            self.stats.weight_hits += 1
        return self._weights

    def tree(
        self,
        epoch: Hashable,
        source: str,
        compute: Callable[[], DijkstraResult],
    ) -> DijkstraResult:
        """The Dijkstra tree from ``source`` for ``epoch`` (LRU-bounded)."""
        if not self.enabled:
            return compute()
        self._sync_epoch(epoch)
        cached = self._trees.get(source)
        if cached is not None:
            self.stats.tree_hits += 1
            self._trees.move_to_end(source)
            return cached
        self.stats.tree_misses += 1
        result = compute()
        self._trees[source] = result
        while len(self._trees) > self.max_trees:
            self._trees.popitem(last=False)
            self.stats.evictions += 1
        return result

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve the delta-maintenance counters from a registry."""
        self._m_dirty = registry.counter(
            "routing.dirty_links", subsystem="network",
            description="link deltas applied across partial cache invalidations",
        )
        self._m_partial = registry.counter(
            "routing.partial_invalidations", subsystem="network",
            description="epoch transitions absorbed by delta-patching the cache",
        )
        self._m_repaired = registry.counter(
            "routing.trees_repaired", subsystem="network",
            description="cached Dijkstra trees revalidated in place after deltas",
        )

    def clear(self) -> None:
        """Drop all cached state (counters are preserved)."""
        self._epoch = None
        self._weights = None
        self._trees.clear()

    def _sync_epoch(self, epoch: Hashable) -> None:
        if epoch == self._epoch:
            return
        if self._epoch is not None and self.delta_probe is not None:
            patched = self.delta_probe()
            if patched is not None:
                table, deltas = patched
                self.stats.partial_invalidations += 1
                self.stats.dirty_links += len(deltas)
                self._m_partial.inc()
                if deltas:
                    self._m_dirty.inc(len(deltas))
                self._epoch = epoch
                self._weights = table
                if deltas and self._trees:
                    survivors: "OrderedDict[str, DijkstraResult]" = OrderedDict()
                    for source, result in self._trees.items():
                        if all(tree_unaffected(result, d) for d in deltas):
                            survivors[source] = result
                            self.stats.trees_repaired += 1
                            self._m_repaired.inc()
                        else:
                            self.stats.trees_rerooted += 1
                    self._trees = survivors
                return
        if self._epoch is not None:
            self.stats.full_invalidations += 1
        self._epoch = epoch
        self._weights = None
        self._trees.clear()
