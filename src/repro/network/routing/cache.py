"""Epoch-versioned memoization of routing state.

The VRA recomputes the LVN weight table (equations 1-4) and a full
Dijkstra tree for every decision, yet its inputs only change when a
*routing epoch* advances: an SNMP sample lands in the limited-access
database, a link fails or recovers, or — on the ground-truth path —
link usage itself mutates.  Between epochs every recomputation is
byte-identical, so the service threads a cheap epoch token (see
``VoDService.routing_epoch``) through this cache and reuses:

* the LVN ``weight_table`` — one per epoch, and
* the ``DijkstraResult`` shortest-path tree — one per ``(epoch, source)``,
  LRU-bounded by ``max_trees``.

Correctness contract: the epoch token MUST change whenever any routing
input could have changed.  Under that contract a cache hit returns the
same decision bit-for-bit as a cold run; the SNMP *staleness* the paper
reproduces lives in the database values themselves, not in the act of
recomputing, so memoization preserves it exactly (the VRA still sees
exactly the last SNMP sample).

Epoch transitions come in two flavours.  Without a ``delta_probe`` the
cache behaves as in PR 1: a new epoch token flushes everything (a *full*
invalidation).  With a probe — wired up by the VRA from the topology and
database change journals plus an incremental LVN table — the cache first
asks it for ``(patched_weight_table, link_deltas)``; on success only the
deltas are applied (a *partial* invalidation): the weight table is
swapped for the patched copy and each cached Dijkstra tree is kept iff
:func:`~repro.network.routing.dijkstra.tree_unaffected` proves it
bit-for-bit valid against every delta (kept = *repaired*; dropped =
*rerooted* lazily on the next request).  The probe returning None — the
journals overflowed, or there is no base table yet — degrades to the
full flush, so delta maintenance can only ever cost performance, never
correctness.

``max_trees=0`` disables the cache entirely: every call computes fresh
and no counters move, restoring the uncached behaviour exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ReproError
from repro.network.routing.dijkstra import DijkstraResult, LinkDelta, tree_unaffected
from repro.obs.phase import NO_PHASE_TIMER, PhaseTimer
from repro.obs.registry import NULL_COUNTER, Counter, MetricsRegistry

#: Default LRU bound on cached Dijkstra trees (one per home server is the
#: steady state, so this comfortably covers topologies of ~128 nodes).
DEFAULT_TREE_CAPACITY = 128

#: Default LRU bound on whole memoized decisions; one flash crowd keys a
#: handful of (home, title, holder-signature) tuples, so this covers many
#: concurrent crowds.
DEFAULT_DECISION_CAPACITY = 4096

#: Signature of the delta probe: None means "cannot patch, flush fully";
#: otherwise the patched weight table plus the link deltas to revalidate
#: cached trees against.
DeltaProbe = Callable[[], Optional[Tuple[Dict[str, float], List[LinkDelta]]]]

#: ``EpochTransition.kind`` values.
EPOCH_INITIAL = "initial"
EPOCH_FULL = "full"
EPOCH_PARTIAL = "partial"


@dataclass(frozen=True)
class EpochTransition:
    """How the routing cache absorbed one epoch change.

    Returned by :meth:`RoutingCache.sync` so layers stacked above the
    routing cache (the :class:`DecisionCache`) can scope their own
    invalidation to the same event without re-draining the change
    journals:

    * ``initial`` — the cache's very first epoch; nothing was cached yet.
    * ``full`` — everything was flushed (no delta probe, or the probe
      could not patch).
    * ``partial`` — the epoch was absorbed in place: ``weights`` is the
      post-patch LVN table and ``deltas`` lists exactly the links whose
      weight or online state moved (empty for a no-op epoch).
    """

    kind: str
    weights: Optional[Dict[str, float]] = None
    deltas: Tuple[LinkDelta, ...] = ()


@dataclass
class RoutingCacheStats:
    """Hit/miss/invalidation counters of one :class:`RoutingCache`.

    Attributes:
        weight_hits: LVN table requests answered from cache.
        weight_misses: LVN table requests that recomputed.
        tree_hits: Dijkstra-tree requests answered from cache.
        tree_misses: Dijkstra-tree requests that recomputed.
        full_invalidations: Epoch transitions that flushed everything
            (no delta probe, or the probe could not patch).
        partial_invalidations: Epoch transitions absorbed by patching
            the weight table and revalidating trees against link deltas.
        dirty_links: Link deltas applied across all partial
            invalidations (0 deltas = a no-op epoch, the steady-SNMP
            case).
        trees_repaired: Cached trees proven still valid in place across
            a non-empty delta batch.
        trees_rerooted: Cached trees dropped by delta revalidation (they
            recompute lazily, from their own source only, on next use).
        evictions: Trees dropped by the LRU bound (not by invalidation).
    """

    weight_hits: int = 0
    weight_misses: int = 0
    tree_hits: int = 0
    tree_misses: int = 0
    full_invalidations: int = 0
    partial_invalidations: int = 0
    dirty_links: int = 0
    trees_repaired: int = 0
    trees_rerooted: int = 0
    evictions: int = 0

    @property
    def invalidations(self) -> int:
        """Total epoch transitions handled (full flushes + partials).

        PR 1 dashboards read this name; it keeps meaning "epochs the
        cache had to react to" now that most of them no longer flush.
        """
        return self.full_invalidations + self.partial_invalidations

    @property
    def hits(self) -> int:
        """Total cache hits (weights + trees)."""
        return self.weight_hits + self.tree_hits

    @property
    def misses(self) -> int:
        """Total cache misses (weights + trees)."""
        return self.weight_misses + self.tree_misses

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, in [0, 1] (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for snapshots, traces and reports."""
        return {
            "weight_hits": self.weight_hits,
            "weight_misses": self.weight_misses,
            "tree_hits": self.tree_hits,
            "tree_misses": self.tree_misses,
            "invalidations": self.invalidations,
            "full_invalidations": self.full_invalidations,
            "partial_invalidations": self.partial_invalidations,
            "dirty_links": self.dirty_links,
            "trees_repaired": self.trees_repaired,
            "trees_rerooted": self.trees_rerooted,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class RoutingCache:
    """Per-epoch memo of the LVN table and Dijkstra trees.

    Args:
        max_trees: LRU bound on cached trees; ``0`` disables the cache.
        delta_probe: Optional callable consulted on every epoch
            transition; see the module docstring.  None restores PR 1's
            flush-on-every-epoch behaviour.

    The cache holds state for exactly one epoch at a time: the first
    lookup under a new epoch token either patches the previous epoch's
    state via the delta probe or flushes it (counted as a partial or
    full invalidation respectively).  Keeping only the live epoch is
    deliberate — stale epochs can never be asked for again, because the
    version counters feeding the token are monotonic.
    """

    max_trees: int = DEFAULT_TREE_CAPACITY
    delta_probe: Optional[DeltaProbe] = None
    stats: RoutingCacheStats = field(default_factory=RoutingCacheStats)
    _epoch: Optional[Hashable] = field(default=None, repr=False)
    _weights: Optional[Dict[str, float]] = field(default=None, repr=False)
    _trees: "OrderedDict[str, DijkstraResult]" = field(
        default_factory=OrderedDict, repr=False
    )
    _m_partial: Counter = field(default=NULL_COUNTER, repr=False, compare=False)
    _m_dirty: Counter = field(default=NULL_COUNTER, repr=False, compare=False)
    _m_repaired: Counter = field(default=NULL_COUNTER, repr=False, compare=False)
    #: Wall-clock timer around epoch transitions (obs.phase.cache_sync_ms);
    #: the service swaps in a live timer when phase profiling is on.
    phase_timer: PhaseTimer = field(default=NO_PHASE_TIMER, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_trees < 0:
            raise ReproError(
                f"routing cache size must be >= 0, got {self.max_trees!r}"
            )

    @property
    def enabled(self) -> bool:
        """False when ``max_trees`` is 0 (pass-through mode)."""
        return self.max_trees > 0

    @property
    def epoch(self) -> Optional[Hashable]:
        """The epoch token currently cached (None before first use)."""
        return self._epoch

    def weights(
        self, epoch: Hashable, compute: Callable[[], Dict[str, float]]
    ) -> Dict[str, float]:
        """The LVN table for ``epoch``, computing via ``compute`` on miss."""
        if not self.enabled:
            return compute()
        self.sync(epoch)
        if self._weights is None:
            self.stats.weight_misses += 1
            self._weights = compute()
        else:
            self.stats.weight_hits += 1
        return self._weights

    def tree(
        self,
        epoch: Hashable,
        source: str,
        compute: Callable[[], DijkstraResult],
    ) -> DijkstraResult:
        """The Dijkstra tree from ``source`` for ``epoch`` (LRU-bounded)."""
        if not self.enabled:
            return compute()
        self.sync(epoch)
        cached = self._trees.get(source)
        if cached is not None:
            self.stats.tree_hits += 1
            self._trees.move_to_end(source)
            return cached
        self.stats.tree_misses += 1
        result = compute()
        self._trees[source] = result
        while len(self._trees) > self.max_trees:
            self._trees.popitem(last=False)
            self.stats.evictions += 1
        return result

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve the delta-maintenance counters from a registry."""
        self._m_dirty = registry.counter(
            "routing.dirty_links", subsystem="network",
            description="link deltas applied across partial cache invalidations",
        )
        self._m_partial = registry.counter(
            "routing.partial_invalidations", subsystem="network",
            description="epoch transitions absorbed by delta-patching the cache",
        )
        self._m_repaired = registry.counter(
            "routing.trees_repaired", subsystem="network",
            description="cached Dijkstra trees revalidated in place after deltas",
        )

    def clear(self) -> None:
        """Drop all cached state (counters are preserved)."""
        self._epoch = None
        self._weights = None
        self._trees.clear()

    def sync(self, epoch: Hashable) -> Optional[EpochTransition]:
        """Bring the cache onto ``epoch``; returns how it got there.

        Called implicitly by :meth:`weights`/:meth:`tree`, and explicitly
        by the :class:`DecisionCache` layer, which forwards the returned
        :class:`EpochTransition` into its own invalidation pass.  Returns
        None when the epoch is unchanged (nothing to do).
        """
        if epoch == self._epoch:
            return None
        t_phase = self.phase_timer.start()
        try:
            return self._sync_changed(epoch)
        finally:
            self.phase_timer.stop(t_phase)

    def _sync_changed(self, epoch: Hashable) -> EpochTransition:
        if self._epoch is not None and self.delta_probe is not None:
            patched = self.delta_probe()
            if patched is not None:
                table, deltas = patched
                self.stats.partial_invalidations += 1
                self.stats.dirty_links += len(deltas)
                self._m_partial.inc()
                if deltas:
                    self._m_dirty.inc(len(deltas))
                self._epoch = epoch
                self._weights = table
                if deltas and self._trees:
                    survivors: "OrderedDict[str, DijkstraResult]" = OrderedDict()
                    for source, result in self._trees.items():
                        if all(tree_unaffected(result, d) for d in deltas):
                            survivors[source] = result
                            self.stats.trees_repaired += 1
                            self._m_repaired.inc()
                        else:
                            self.stats.trees_rerooted += 1
                    self._trees = survivors
                return EpochTransition(
                    EPOCH_PARTIAL, weights=table, deltas=tuple(deltas)
                )
        initial = self._epoch is None
        if not initial:
            self.stats.full_invalidations += 1
        self._epoch = epoch
        self._weights = None
        self._trees.clear()
        return EpochTransition(EPOCH_INITIAL if initial else EPOCH_FULL)


@dataclass
class DecisionCacheStats:
    """Hit/miss/invalidation counters of one :class:`DecisionCache`.

    Attributes:
        hits: Decisions answered whole from cache.
        misses: Lookups that fell through to a full VRA run.
        full_invalidations: Epoch transitions that flushed every decision.
        partial_invalidations: Epoch transitions absorbed by revalidating
            decisions against the link deltas.
        decisions_flushed: Decisions dropped by full invalidations.
        decisions_dropped: Decisions dropped because a link delta touched
            their shortest-path tree.
        decisions_refreshed: Decisions kept across a weight-changing delta
            batch, with their audit weight table rebased onto the patched
            one (choice, path and cost provably unchanged).
        evictions: Decisions dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    full_invalidations: int = 0
    partial_invalidations: int = 0
    decisions_flushed: int = 0
    decisions_dropped: int = 0
    decisions_refreshed: int = 0
    evictions: int = 0

    @property
    def invalidations(self) -> int:
        """Total epoch transitions handled (full flushes + partials)."""
        return self.full_invalidations + self.partial_invalidations

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, in [0, 1] (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for snapshots, traces and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "full_invalidations": self.full_invalidations,
            "partial_invalidations": self.partial_invalidations,
            "decisions_flushed": self.decisions_flushed,
            "decisions_dropped": self.decisions_dropped,
            "decisions_refreshed": self.decisions_refreshed,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _DecisionEntry:
    """One memoized decision plus the state its validity hangs on."""

    decision: object
    tree: Optional[DijkstraResult]
    candidate_count: int


class DecisionCache:
    """Whole-decision memo layered above the :class:`RoutingCache`.

    Every request sharing a key — the caller builds it from the home
    server, title, per-holder availability signature and QoS class — is
    answered with the *same* :class:`~repro.core.vra.VraDecision` within
    one routing epoch, so a 10k-request flash crowd costs one Dijkstra
    run plus 10k dict hits.

    Invalidation contract (what evicts a whole decision vs. a tree):

    * A **full** epoch transition flushes everything, exactly like the
      routing cache underneath.
    * A **partial** transition (delta-patched epoch) drops only decisions
      whose shortest-path tree a :class:`LinkDelta` could have touched —
      the same :func:`tree_unaffected` proof the routing cache runs for
      its trees, memoized per distinct tree so a crowd of decisions over
      one tree is judged once.  Locally-served decisions reference no
      tree and survive every delta.
    * Surviving routed decisions are *refreshed*: their audit ``weights``
      table is rebased onto the patched table (``dataclasses.replace`` on
      the frozen decision), because that is the table a cold run after
      the delta would embed.  Choice, path and cost are provably
      unchanged, so the refreshed decision stays bit-for-bit equal to a
      cache-off recompute.
    * Availability churn that never touches a journal — a holder filling
      its last stream slot, a title evicted by the DMA — is carried by
      the *key* (the holder signatures change), not by invalidation.

    ``max_decisions=0`` disables the cache entirely: lookups miss, stores
    are dropped, and no counters move.
    """

    def __init__(self, max_decisions: int = DEFAULT_DECISION_CAPACITY):
        if max_decisions < 0:
            raise ReproError(
                f"decision cache size must be >= 0, got {max_decisions!r}"
            )
        self.max_decisions = max_decisions
        self.stats = DecisionCacheStats()
        self._entries: "OrderedDict[Hashable, _DecisionEntry]" = OrderedDict()
        self._on = max_decisions > 0
        self._full = False
        self._m_hits: Counter = NULL_COUNTER
        self._m_misses: Counter = NULL_COUNTER
        self._m_refreshed: Counter = NULL_COUNTER
        self._m_dropped: Counter = NULL_COUNTER

    @property
    def enabled(self) -> bool:
        """False when ``max_decisions`` is 0 (pass-through mode)."""
        return self.max_decisions > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[_DecisionEntry]:
        """The live entry under ``key``, or None (counted as hit/miss)."""
        if not self._on:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._m_misses.inc()
            return None
        self.stats.hits += 1
        self._m_hits.inc()
        if self._full:
            # LRU ordering only matters once eviction is possible; below
            # capacity the reorder is skipped to keep the hit path lean.
            self._entries.move_to_end(key)
        return entry

    def peek(self, key: Hashable) -> Optional[_DecisionEntry]:
        """The entry under ``key`` without hit/miss accounting or LRU
        reordering (introspection; the service's replay layer reads the
        candidate count it just stored)."""
        return self._entries.get(key)

    def put(
        self,
        key: Hashable,
        decision: object,
        tree: Optional[DijkstraResult],
        candidate_count: int = 0,
    ) -> None:
        """Memoize ``decision`` under ``key`` (LRU-bounded).

        Args:
            key: The full decision key; the caller guarantees that equal
                keys within one epoch imply bit-identical decisions.
            decision: The decision object to hand back on hits.
            tree: The Dijkstra tree the decision was derived from, or
                None for locally-served decisions (which then survive
                every link delta).
            candidate_count: Polled-up remote candidates, replayed into
                the ``vra.candidates`` histogram on hits so telemetry
                matches a cache-off run.
        """
        if not self._on:
            return
        self._entries[key] = _DecisionEntry(decision, tree, candidate_count)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_decisions:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._full = len(self._entries) >= self.max_decisions

    def apply(self, transition: Optional[EpochTransition]) -> None:
        """Absorb one routing-epoch transition (from :meth:`RoutingCache.sync`)."""
        if transition is None or transition.kind == EPOCH_INITIAL:
            return
        if transition.kind == EPOCH_FULL:
            if self._entries:
                self.stats.decisions_flushed += len(self._entries)
                self._entries.clear()
                self._full = False
            self.stats.full_invalidations += 1
            return
        self.stats.partial_invalidations += 1
        deltas = transition.deltas
        if not deltas or not self._entries:
            return
        table = transition.weights
        verdicts: Dict[int, bool] = {}
        survivors: "OrderedDict[Hashable, _DecisionEntry]" = OrderedDict()
        for key, entry in self._entries.items():
            tree = entry.tree
            if tree is None:  # local serve: no routing state involved
                survivors[key] = entry
                continue
            verdict = verdicts.get(id(tree))
            if verdict is None:
                verdict = all(tree_unaffected(tree, d) for d in deltas)
                verdicts[id(tree)] = verdict
            if not verdict:
                self.stats.decisions_dropped += 1
                self._m_dropped.inc()
                continue
            if getattr(entry.decision, "weights", None) is not table:
                entry.decision = replace(entry.decision, weights=table)
                self.stats.decisions_refreshed += 1
                self._m_refreshed.inc()
            survivors[key] = entry
        self._entries = survivors
        self._full = len(self._entries) >= self.max_decisions

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve the ``decision.*`` counters from a registry."""
        self._m_hits = registry.counter(
            "decision.hits", subsystem="core",
            description="VRA decisions answered whole from the decision cache",
        )
        self._m_misses = registry.counter(
            "decision.misses", subsystem="core",
            description="decision-cache lookups that ran the full VRA",
        )
        self._m_refreshed = registry.counter(
            "decision.refreshed", subsystem="core",
            description="cached decisions rebased in place across link deltas",
        )
        self._m_dropped = registry.counter(
            "decision.dropped", subsystem="core",
            description="cached decisions evicted by a link delta on their tree",
        )

    def evict_server(self, uid: str) -> int:
        """Drop every cached decision whose chosen source is ``uid``.

        Circuit-breaker transitions change which servers the service's
        holder filter admits without moving any journal-backed version
        counter; the service evicts the transitioning server's decisions
        here so a probe (or a re-opened breaker) can never replay a
        choice made under the previous breaker state.

        Returns:
            The number of decisions dropped.
        """
        if not self._entries:
            return 0
        stale = [
            key
            for key, entry in self._entries.items()
            if getattr(entry.decision, "chosen_uid", None) == uid
        ]
        for key in stale:
            del self._entries[key]
            self.stats.decisions_dropped += 1
            self._m_dropped.inc()
        if stale:
            self._full = len(self._entries) >= self.max_decisions
        return len(stale)

    def count_hit(self) -> None:
        """Count a hit answered by an outer replay layer.

        The service's same-state fast path can prove (via its freshness
        token) that a previously returned decision is still exact without
        re-entering the VRA; it calls this so hit-rate reporting matches
        what a full lookup would have counted.
        """
        self.stats.hits += 1
        self._m_hits.inc()

    def clear(self) -> None:
        """Drop all cached decisions (counters are preserved)."""
        self._entries.clear()
        self._full = False
