"""Epoch-versioned memoization of routing state.

The VRA recomputes the LVN weight table (equations 1-4) and a full
Dijkstra tree for every decision, yet its inputs only change when a
*routing epoch* advances: an SNMP sample lands in the limited-access
database, a link fails or recovers, or — on the ground-truth path —
link usage itself mutates.  Between epochs every recomputation is
byte-identical, so the service threads a cheap epoch token (see
``VoDService.routing_epoch``) through this cache and reuses:

* the LVN ``weight_table`` — one per epoch, and
* the ``DijkstraResult`` shortest-path tree — one per ``(epoch, source)``,
  LRU-bounded by ``max_trees``.

Correctness contract: the epoch token MUST change whenever any routing
input could have changed.  Under that contract a cache hit returns the
same decision bit-for-bit as a cold run; the SNMP *staleness* the paper
reproduces lives in the database values themselves, not in the act of
recomputing, so memoization preserves it exactly (the VRA still sees
exactly the last SNMP sample).

``max_trees=0`` disables the cache entirely: every call computes fresh
and no counters move, restoring the uncached behaviour exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from repro.errors import ReproError
from repro.network.routing.dijkstra import DijkstraResult

#: Default LRU bound on cached Dijkstra trees (one per home server is the
#: steady state, so this comfortably covers topologies of ~128 nodes).
DEFAULT_TREE_CAPACITY = 128


@dataclass
class RoutingCacheStats:
    """Hit/miss/invalidation counters of one :class:`RoutingCache`.

    Attributes:
        weight_hits: LVN table requests answered from cache.
        weight_misses: LVN table requests that recomputed.
        tree_hits: Dijkstra-tree requests answered from cache.
        tree_misses: Dijkstra-tree requests that recomputed.
        invalidations: Epoch transitions that flushed the cache.
        evictions: Trees dropped by the LRU bound (not by invalidation).
    """

    weight_hits: int = 0
    weight_misses: int = 0
    tree_hits: int = 0
    tree_misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Total cache hits (weights + trees)."""
        return self.weight_hits + self.tree_hits

    @property
    def misses(self) -> int:
        """Total cache misses (weights + trees)."""
        return self.weight_misses + self.tree_misses

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups, in [0, 1] (0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict for snapshots, traces and reports."""
        return {
            "weight_hits": self.weight_hits,
            "weight_misses": self.weight_misses,
            "tree_hits": self.tree_hits,
            "tree_misses": self.tree_misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class RoutingCache:
    """Per-epoch memo of the LVN table and Dijkstra trees.

    Args:
        max_trees: LRU bound on cached trees; ``0`` disables the cache.

    The cache holds state for exactly one epoch at a time: the first
    lookup under a new epoch token flushes everything from the previous
    one (counted as a single invalidation).  Keeping only the live epoch
    is deliberate — stale epochs can never be asked for again, because
    the version counters feeding the token are monotonic.
    """

    max_trees: int = DEFAULT_TREE_CAPACITY
    stats: RoutingCacheStats = field(default_factory=RoutingCacheStats)
    _epoch: Optional[Hashable] = field(default=None, repr=False)
    _weights: Optional[Dict[str, float]] = field(default=None, repr=False)
    _trees: "OrderedDict[str, DijkstraResult]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_trees < 0:
            raise ReproError(
                f"routing cache size must be >= 0, got {self.max_trees!r}"
            )

    @property
    def enabled(self) -> bool:
        """False when ``max_trees`` is 0 (pass-through mode)."""
        return self.max_trees > 0

    @property
    def epoch(self) -> Optional[Hashable]:
        """The epoch token currently cached (None before first use)."""
        return self._epoch

    def weights(
        self, epoch: Hashable, compute: Callable[[], Dict[str, float]]
    ) -> Dict[str, float]:
        """The LVN table for ``epoch``, computing via ``compute`` on miss."""
        if not self.enabled:
            return compute()
        self._sync_epoch(epoch)
        if self._weights is None:
            self.stats.weight_misses += 1
            self._weights = compute()
        else:
            self.stats.weight_hits += 1
        return self._weights

    def tree(
        self,
        epoch: Hashable,
        source: str,
        compute: Callable[[], DijkstraResult],
    ) -> DijkstraResult:
        """The Dijkstra tree from ``source`` for ``epoch`` (LRU-bounded)."""
        if not self.enabled:
            return compute()
        self._sync_epoch(epoch)
        cached = self._trees.get(source)
        if cached is not None:
            self.stats.tree_hits += 1
            self._trees.move_to_end(source)
            return cached
        self.stats.tree_misses += 1
        result = compute()
        self._trees[source] = result
        while len(self._trees) > self.max_trees:
            self._trees.popitem(last=False)
            self.stats.evictions += 1
        return result

    def clear(self) -> None:
        """Drop all cached state (counters are preserved)."""
        self._epoch = None
        self._weights = None
        self._trees.clear()

    def _sync_epoch(self, epoch: Hashable) -> None:
        if epoch != self._epoch:
            if self._epoch is not None:
                self.stats.invalidations += 1
            self._epoch = epoch
            self._weights = None
            self._trees.clear()
