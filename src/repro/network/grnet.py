"""The Greek Research & Technology Network backbone of the paper's Figure 6.

This module embeds, verbatim, the case-study inputs:

* the six-node, seven-link topology (U1 Athens, U2 Patra, U3 Ioannina,
  U4 Thessaloniki, U5 Xanthi, U6 Heraklio), and
* the Table 2 SNMP traffic samples at 8am, 10am, 4pm and 6pm.

The paper reports some samples in kb and two links in *bits* ("100 bits" on
a 2 Mb link = 0.005% utilisation); everything here is normalised to Mbps,
which round-trips to the paper's printed utilisation percentages (the
``PAPER_TABLE2_UTILIZATION_PERCENT`` constants benchmarks compare against).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology

#: Node uid -> city, in the paper's numbering.
GRNET_NODES: Dict[str, str] = {
    "U1": "Athens",
    "U2": "Patra",
    "U3": "Ioannina",
    "U4": "Thessaloniki",
    "U5": "Xanthi",
    "U6": "Heraklio",
}

#: (link name, endpoint uids, capacity in Mbps), in Table 2 row order.
GRNET_LINKS: List[Tuple[str, Tuple[str, str], float]] = [
    ("Patra-Athens", ("U2", "U1"), 2.0),
    ("Patra-Ioannina", ("U2", "U3"), 2.0),
    ("Thessaloniki-Athens", ("U4", "U1"), 18.0),
    ("Thessaloniki-Xanthi", ("U4", "U5"), 2.0),
    ("Thessaloniki-Ioannina", ("U4", "U3"), 2.0),
    ("Athens-Heraklio", ("U1", "U6"), 18.0),
    ("Xanthi-Heraklio", ("U5", "U6"), 2.0),
]

#: Sampling instants of Table 2, as labels and seconds-since-midnight.
SAMPLE_TIMES: List[str] = ["8am", "10am", "4pm", "6pm"]
SAMPLE_TIME_SECONDS: Dict[str, float] = {
    "8am": 8 * 3600.0,
    "10am": 10 * 3600.0,
    "4pm": 16 * 3600.0,
    "6pm": 18 * 3600.0,
}

#: Table 2 traffic samples, link name -> {time label -> used Mbps}.
#: "100 bits" style entries are 100e-6 kb = 1e-4 Mbit of traffic.
TABLE2_TRAFFIC_MBPS: Dict[str, Dict[str, float]] = {
    "Patra-Athens": {"8am": 0.2, "10am": 1.82, "4pm": 1.82, "6pm": 1.82},
    "Patra-Ioannina": {"8am": 0.0001, "10am": 0.00017, "4pm": 0.2, "6pm": 0.24},
    "Thessaloniki-Athens": {"8am": 1.7, "10am": 7.0, "4pm": 9.8, "6pm": 9.6},
    "Thessaloniki-Xanthi": {"8am": 0.48, "10am": 0.52, "4pm": 0.75, "6pm": 0.6},
    "Thessaloniki-Ioannina": {"8am": 0.3, "10am": 1.48, "4pm": 1.86, "6pm": 1.3},
    "Athens-Heraklio": {"8am": 0.5, "10am": 2.5, "4pm": 5.5, "6pm": 6.0},
    "Xanthi-Heraklio": {"8am": 0.0001, "10am": 0.00015, "4pm": 0.0002, "6pm": 0.00015},
}

#: The utilisation percentages as printed in Table 2 (for benchmark diffs).
PAPER_TABLE2_UTILIZATION_PERCENT: Dict[str, Dict[str, float]] = {
    "Patra-Athens": {"8am": 10.0, "10am": 91.0, "4pm": 91.0, "6pm": 91.0},
    "Patra-Ioannina": {"8am": 0.005, "10am": 0.0085, "4pm": 10.0, "6pm": 12.0},
    "Thessaloniki-Athens": {"8am": 9.4, "10am": 38.8, "4pm": 54.4, "6pm": 53.3},
    "Thessaloniki-Xanthi": {"8am": 24.0, "10am": 26.0, "4pm": 37.5, "6pm": 30.0},
    "Thessaloniki-Ioannina": {"8am": 15.0, "10am": 74.0, "4pm": 93.0, "6pm": 65.0},
    "Athens-Heraklio": {"8am": 2.7, "10am": 13.8, "4pm": 30.5, "6pm": 33.3},
    "Xanthi-Heraklio": {"8am": 0.005, "10am": 0.005, "4pm": 0.01, "6pm": 0.0075},
}

#: The Link Validation Numbers as printed in Table 3 (for benchmark diffs).
PAPER_TABLE3_LVN: Dict[str, Dict[str, float]] = {
    "Patra-Athens": {"8am": 0.083, "10am": 0.632, "4pm": 0.687, "6pm": 0.697},
    "Patra-Ioannina": {"8am": 0.07501, "10am": 0.450017, "4pm": 0.535, "6pm": 0.539},
    "Thessaloniki-Athens": {"8am": 0.2819, "10am": 1.1075, "4pm": 1.5433, "6pm": 1.4824},
    "Thessaloniki-Xanthi": {"8am": 0.168, "10am": 0.4611, "4pm": 0.6391, "6pm": 0.583},
    "Thessaloniki-Ioannina": {"8am": 0.1427, "10am": 0.5571, "4pm": 0.7501, "6pm": 0.653},
    "Athens-Heraklio": {"8am": 0.1116, "10am": 0.5462, "4pm": 0.999, "6pm": 1.0574},
    "Xanthi-Heraklio": {"8am": 0.1201, "10am": 0.13001, "4pm": 0.275015, "6pm": 0.3},
}


def build_grnet_topology() -> Topology:
    """Construct the Figure 6 backbone with zero background traffic."""
    topology = Topology(name="GRNET")
    for uid, city in GRNET_NODES.items():
        topology.add_node(Node(uid=uid, name=city))
    for name, (a, b), capacity in GRNET_LINKS:
        topology.add_link(Link(a_uid=a, b_uid=b, capacity_mbps=capacity, name=name))
    topology.validate()
    return topology


def apply_traffic_sample(topology: Topology, time_label: str) -> None:
    """Load one Table 2 column as background traffic onto the links.

    Args:
        topology: A topology built by :func:`build_grnet_topology` (any
            topology containing the GRNET link names works).
        time_label: One of ``"8am"``, ``"10am"``, ``"4pm"``, ``"6pm"``.

    Raises:
        KeyError: If ``time_label`` is not a Table 2 sampling instant.
    """
    if time_label not in SAMPLE_TIMES:
        raise KeyError(
            f"unknown sample time {time_label!r}; expected one of {SAMPLE_TIMES}"
        )
    for link_name, samples in TABLE2_TRAFFIC_MBPS.items():
        topology.link_named(link_name).set_background_mbps(samples[time_label])


def traffic_at(time_label: str) -> Dict[str, float]:
    """Table 2 column as {link name -> used Mbps}."""
    if time_label not in SAMPLE_TIMES:
        raise KeyError(
            f"unknown sample time {time_label!r}; expected one of {SAMPLE_TIMES}"
        )
    return {name: samples[time_label] for name, samples in TABLE2_TRAFFIC_MBPS.items()}


def interpolated_traffic(seconds_since_midnight: float) -> Dict[str, float]:
    """Piecewise-linear traffic between the Table 2 samples.

    Used by the dynamic-switching benches to morph link load continuously
    through the day the way the paper's narrative ("the optimal server might
    not be the optimal server after some time") requires.  Before 8am and
    after 6pm the nearest sample is held.
    """
    points = [(SAMPLE_TIME_SECONDS[label], label) for label in SAMPLE_TIMES]
    t = float(seconds_since_midnight)
    if t <= points[0][0]:
        return traffic_at(points[0][1])
    if t >= points[-1][0]:
        return traffic_at(points[-1][1])
    for (t0, label0), (t1, label1) in zip(points, points[1:]):
        if t0 <= t <= t1:
            frac = (t - t0) / (t1 - t0)
            before = traffic_at(label0)
            after = traffic_at(label1)
            return {
                name: before[name] + frac * (after[name] - before[name])
                for name in before
            }
    raise AssertionError("unreachable: sample intervals cover [first, last]")
