"""Network link model.

A :class:`Link` is an undirected, capacity-limited connection between two
nodes.  Its *used* bandwidth has two components:

* ``background_mbps`` — traffic from everything that is not the VoD service
  (the Table 2 SNMP samples are background traffic), and
* ``reserved_mbps`` — bandwidth held by active VoD streams, managed by
  :class:`repro.network.flows.FlowManager`.

Equation (5) of the paper defines utilisation as (traffic_in + traffic_out)
divided by total bandwidth; here both directions are aggregated into the
single used-bandwidth figure, matching how Table 2 reports each link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import LinkCapacityError

#: Change-notification kinds emitted to a link's version listener.
STATE_CHANGE = "state"
TRAFFIC_CHANGE = "traffic"


def link_key(a_uid: str, b_uid: str) -> Tuple[str, str]:
    """Canonical undirected key for the link between two node uids."""
    if a_uid == b_uid:
        raise ValueError(f"self-loop links are not allowed (node {a_uid!r})")
    return (a_uid, b_uid) if a_uid <= b_uid else (b_uid, a_uid)


@dataclass
class Link:
    """An undirected network link.

    Attributes:
        a_uid: One endpoint's node uid.
        b_uid: Other endpoint's node uid.
        capacity_mbps: Total bandwidth of the link (LBW in the paper).
        name: Human-readable label, e.g. ``"Patra-Athens"``.
        attributes: Free-form metadata.
    """

    a_uid: str
    b_uid: str
    capacity_mbps: float
    name: str = ""
    attributes: Dict[str, object] = field(default_factory=dict)
    #: Administrative/operational state.  A failed link (``online=False``)
    #: is skipped by routing and excluded from the LVN node validations;
    #: existing reservations are not forcibly torn down (in-flight cluster
    #: transfers finish at their current rate and reroute at the next
    #: cluster boundary, the same cadence the paper's switching uses).
    online: bool = True
    _background_mbps: float = field(default=0.0, repr=False)
    _reserved_mbps: float = field(default=0.0, repr=False)
    #: Monotonic counter of online/offline transitions (routing-relevant
    #: *structural* state).  Feeds the epoch-versioned routing cache.
    _state_version: int = field(default=0, repr=False, compare=False)
    #: Monotonic counter of used-bandwidth mutations (background traffic
    #: and flow reservations) — routing-relevant only on the ground-truth
    #: (``use_reported_stats=False``) path.
    _traffic_version: int = field(default=0, repr=False, compare=False)
    #: Telemetry: reservations granted over the link's lifetime, and the
    #: high-water mark of concurrently reserved VoD bandwidth.
    _reserve_count: int = field(default=0, repr=False, compare=False)
    _peak_reserved_mbps: float = field(default=0.0, repr=False, compare=False)
    #: Set by :meth:`Topology.add_link` so the owning topology can expose a
    #: combined version — and a per-link dirty journal — without scanning
    #: every link per lookup.  Called with ``(kind, link)``.
    _version_listener: Optional[Callable[[str, "Link"], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not (self.capacity_mbps > 0.0):
            raise LinkCapacityError(
                f"link capacity must be positive, got {self.capacity_mbps!r}"
            )
        self.a_uid, self.b_uid = link_key(self.a_uid, self.b_uid)
        if not self.name:
            self.name = f"{self.a_uid}-{self.b_uid}"

    def __setattr__(self, name: str, value: object) -> None:
        # ``online`` is flipped by direct attribute assignment all over the
        # failure-injection code paths; intercept the transition here so the
        # routing epoch advances no matter who flips it.
        if name == "online":
            previous = self.__dict__.get("online")
            object.__setattr__(self, name, value)
            if previous is not None and bool(previous) != bool(value):
                self._notify(STATE_CHANGE)
            return
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # change versioning
    # ------------------------------------------------------------------ #
    @property
    def state_version(self) -> int:
        """Counter of online/offline transitions on this link."""
        return self._state_version

    @property
    def traffic_version(self) -> int:
        """Counter of used-bandwidth mutations on this link."""
        return self._traffic_version

    def _notify(self, kind: str) -> None:
        if kind == STATE_CHANGE:
            object.__setattr__(self, "_state_version", self.__dict__.get("_state_version", 0) + 1)
        else:
            object.__setattr__(self, "_traffic_version", self.__dict__.get("_traffic_version", 0) + 1)
        listener = self.__dict__.get("_version_listener")
        if listener is not None:
            listener(kind, self)

    # ------------------------------------------------------------------ #
    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (sorted) endpoint-uid pair identifying this link."""
        return (self.a_uid, self.b_uid)

    @property
    def endpoints(self) -> Tuple[str, str]:
        """Alias of :attr:`key` for readability at call sites."""
        return self.key

    def other_end(self, uid: str) -> str:
        """The endpoint opposite ``uid``.

        Raises:
            ValueError: If ``uid`` is not an endpoint of this link.
        """
        if uid == self.a_uid:
            return self.b_uid
        if uid == self.b_uid:
            return self.a_uid
        raise ValueError(f"node {uid!r} is not an endpoint of link {self.name}")

    def touches(self, uid: str) -> bool:
        """True if ``uid`` is one of this link's endpoints."""
        return uid == self.a_uid or uid == self.b_uid

    # ------------------------------------------------------------------ #
    # bandwidth accounting
    # ------------------------------------------------------------------ #
    @property
    def background_mbps(self) -> float:
        """Non-VoD traffic on the link, in Mbps."""
        return self._background_mbps

    def set_background_mbps(self, mbps: float) -> None:
        """Set background traffic (clamped into [0, capacity])."""
        if mbps < 0.0:
            raise LinkCapacityError(f"background traffic cannot be negative, got {mbps!r}")
        clamped = min(float(mbps), self.capacity_mbps)
        if clamped != self._background_mbps:
            self._background_mbps = clamped
            self._notify(TRAFFIC_CHANGE)

    @property
    def reserved_mbps(self) -> float:
        """Bandwidth currently reserved by VoD flows, in Mbps."""
        return self._reserved_mbps

    @property
    def reserve_count(self) -> int:
        """Reservations granted over the link's lifetime (telemetry)."""
        return self._reserve_count

    @property
    def peak_reserved_mbps(self) -> float:
        """High-water mark of concurrently reserved bandwidth (telemetry)."""
        return self._peak_reserved_mbps

    @property
    def used_mbps(self) -> float:
        """Total used bandwidth (UBW in the paper): background + reserved."""
        return min(self._background_mbps + self._reserved_mbps, self.capacity_mbps)

    @property
    def free_mbps(self) -> float:
        """Spare capacity in Mbps."""
        return max(self.capacity_mbps - self.used_mbps, 0.0)

    @property
    def utilization(self) -> float:
        """Used over total bandwidth, in [0, 1] (LT in the paper)."""
        return self.used_mbps / self.capacity_mbps

    def reserve(self, mbps: float) -> None:
        """Reserve ``mbps`` of bandwidth for a VoD flow.

        Raises:
            LinkCapacityError: If the reservation does not fit in the spare
                capacity.  Admission control in the service catches this and
                treats the path as unusable.
        """
        if mbps < 0.0:
            raise LinkCapacityError(f"cannot reserve negative bandwidth {mbps!r}")
        if mbps > self.free_mbps + 1e-9:
            raise LinkCapacityError(
                f"link {self.name}: reserving {mbps:.3f} Mbps exceeds free "
                f"capacity {self.free_mbps:.3f} Mbps"
            )
        if mbps > 0.0:
            self._reserved_mbps += mbps
            self._reserve_count += 1
            if self._reserved_mbps > self._peak_reserved_mbps:
                self._peak_reserved_mbps = self._reserved_mbps
            self._notify(TRAFFIC_CHANGE)

    def release(self, mbps: float) -> None:
        """Release a previous reservation of ``mbps``."""
        if mbps < 0.0:
            raise LinkCapacityError(f"cannot release negative bandwidth {mbps!r}")
        if mbps > self._reserved_mbps + 1e-9:
            raise LinkCapacityError(
                f"link {self.name}: releasing {mbps:.3f} Mbps but only "
                f"{self._reserved_mbps:.3f} Mbps is reserved"
            )
        self._reserved_mbps = max(self._reserved_mbps - mbps, 0.0)
        if self._reserved_mbps < 1e-12:
            # Snap float dust so an idle link reads exactly zero.
            self._reserved_mbps = 0.0
        if mbps > 0.0:
            self._notify(TRAFFIC_CHANGE)

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, {self.capacity_mbps:g} Mbps, "
            f"used={self.used_mbps:.3f})"
        )
