"""The VoD service facade.

:class:`VoDService` wires every subsystem together the way the paper's
architecture section describes:

* a :class:`~repro.database.store.ServiceDatabase` with full- and
  limited-access modules;
* one :class:`~repro.server.video_server.VideoServer` per network node;
* the per-node SNMP statistics modules feeding the limited-access database
  (:class:`~repro.snmp.collector.StatisticsService`);
* the :class:`~repro.core.vra.VirtualRoutingAlgorithm` reading link state
  from the database (staleness included), and
* :class:`~repro.core.session.StreamingSession` processes that re-run the
  VRA per cluster and switch servers dynamically.

The *service initialization* phase of the paper (administrators contribute
link bandwidths and per-server title lists) maps to the constructor plus
:meth:`seed_title` / :meth:`attach_access_network` calls before
:meth:`start`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple, Union

from repro.changes import JournalCursor
from repro.client.client import Client
from repro.client.requests import VideoRequest
from repro.core.admission_queue import (
    DEFAULT_ADMISSION_RATE_PER_S,
    DEFAULT_ADMISSION_TICK_S,
    AdmissionQueue,
    AdmissionSlot,
)
from repro.core.lvn import DEFAULT_NORMALIZATION_CONSTANT
from repro.core.session import (
    DEFAULT_LOCAL_READ_MBPS,
    DEFAULT_RATE_UPDATE_PERIOD_S,
    NO_RETRY,
    ClusterRecord,
    RetryPolicy,
    SessionRecord,
    StreamingSession,
)
from repro.core.vra import VirtualRoutingAlgorithm, VraDecision
from repro.database.records import LinkEntry, ServerEntry
from repro.database.store import ServiceDatabase
from repro.errors import (
    NoReachableHolderError,
    ReproError,
    RoutingError,
    ServiceError,
    TitleUnavailableError,
)
from repro.network.flows import FlowManager
from repro.network.link import STATE_CHANGE, Link
from repro.network.node import Node
from repro.network.routing.paths import Path
from repro.network.topology import Topology
from repro.obs.phase import PhaseProfiler
from repro.placement.base import PlacementConfig
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import KIND_SERVER, BreakerBoard
from repro.resilience.staleness import StalenessGuard
from repro.resilience.supervisor import SessionSupervisor
from repro.obs.sampler import DEFAULT_SERIES_CAPACITY, TelemetrySampler
from repro.obs.spans import SessionSpan
from repro.server.video_server import VideoServer
from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process
from repro.sim.trace import Tracer
from repro.snmp.collector import DEFAULT_POLL_PERIOD_S, StatisticsService
from repro.storage.video import VideoTitle

#: ``DecideOutcome.outcome`` values.
DECIDE_OK = "ok"
NO_HOLDER = "no-holder"
NO_REACHABLE_HOLDER = "no-reachable-holder"
NO_AVAILABLE_HOLDER = "no-available-holder"


@dataclass(frozen=True)
class DecideOutcome:
    """Explicit result of a degradable VRA decision (:meth:`VoDService.try_decide`).

    Instead of an exception, an impossible decision comes back as an
    outcome string — ``no-holder`` (title nowhere), ``no-reachable-holder``
    (the home server is partitioned from every holder), or
    ``no-available-holder`` (every holder polled out: crashed, at stream
    capacity, or disk-failed).  ``decision`` is set only for ``ok``.
    """

    outcome: str
    decision: Optional[VraDecision] = None
    reason: str = ""

    @property
    def ok(self) -> bool:
        """True when a decision was produced."""
        return self.outcome == DECIDE_OK


@dataclass
class ServiceConfig:
    """Deployment knobs of the VoD service.

    Attributes:
        cluster_mb: Common striping cluster size ``c`` (MB); also the
            dynamic-switching granularity.
        disk_count: Disks per server ("as many disks as possible").
        disk_capacity_mb: Capacity of each disk (MB).
        max_streams: Concurrent outgoing streams per server.
        snmp_period_s: Statistics-module period (paper: 1-2 minutes).
        normalization_constant: The K of equation (4).
        local_read_mbps: Disk read rate for home-server serves.
        use_reported_stats: When True (paper-faithful) the VRA reads link
            usage from the limited-access database, i.e. the latest SNMP
            sample; when False it reads live ground truth from the links.
        use_server_load_in_vra: Future-work extension ("Server
            configuration factor"): fold each server's stream-slot
            occupancy into its node validation, steering the VRA away
            from busy servers.  Default off = the paper's exact eq. (2).
        strict_qos_admission: Future-work extension ("improving the QoS
            standards"): reject a request outright when no candidate
            path can sustain the title's playback rate, instead of
            admitting it at a degraded rate.  Blocked requests fail with
            a ``qos-blocked:`` reason.  Default off = paper behaviour.
        evict_until_fits: DMA extension (DESIGN.md X2); default off.
            Honoured by the default whole-title placement; ignored when
            ``placement`` is set explicitly (the config object carries
            its own knob).
        placement: Declarative placement-policy choice
            (:class:`~repro.placement.base.PlacementConfig`): whole-title
            DMA (default), prefix replication, or popularity-weighted
            partial caching, plus per-policy knobs.  ``None`` resolves to
            the paper-faithful DMA honouring ``evict_until_fits`` — the
            byte-identical default path.
        pin_seeded_titles: Seed-pinning extension: initialisation-phase
            titles are exempt from cache eviction so the DMA can never
            delete a title's last network-wide copy.  Default True — a
            deployable service needs it; set False for exact Figure 2
            behaviour (the hazard is pinned by a failure-injection test).
        vra_trace: Record paper-style Dijkstra step tables per decision.
        routing_cache_size: LRU bound on the epoch-versioned routing
            cache's Dijkstra trees (see :mod:`repro.network.routing.cache`).
            Between routing epochs (SNMP database writes, link failures,
            topology growth) the VRA reuses the LVN table and per-home
            shortest-path trees instead of recomputing them — decisions
            are bit-for-bit identical either way.  ``0`` disables the
            cache and restores recompute-per-decision behaviour exactly.
            The cache is also auto-disabled when
            ``use_server_load_in_vra`` is on, because live stream-slot
            occupancy feeds the weights without a version counter.
        routing_delta_updates: Delta-scoped cache invalidation (requires
            an active routing cache).  When on, routing epochs are
            absorbed by patching only the weight-table entries whose
            links actually changed — drained from the topology and
            database change journals — and by revalidating cached
            Dijkstra trees in place, instead of flushing the whole cache
            per epoch.  Decisions stay bit-for-bit identical (journal
            overflow falls back to the full flush); this only changes
            how much work an epoch transition costs, which the
            ``benchmarks/test_bench_incremental_lvn.py`` drumbeat
            scenarios measure.  Off restores PR 1's flush-per-epoch
            behaviour exactly.
        compiled_routing: Route the VRA's weight-table builds and Dijkstra
            runs through the array-compiled topology snapshot
            (:class:`~repro.network.compiled.TopologySnapshot`): the
            topology is frozen into int-indexed CSR arrays, refreshed off
            its ``state_version`` counter, and the LVN/Dijkstra kernels
            run over flat arrays instead of per-link object loops.
            Decisions are bit-for-bit identical either way — the compiled
            kernels reproduce the python path down to the last ulp and to
            dict insertion order (the equivalence property suites pin
            this) — so the knob only changes what a cache/memo miss
            costs.  On by default; turn off (or uninstall numpy — the
            snapshot then runs its plain-list backend, still faster than
            the object loops) to get PR 7's exact execution path.
            Ignored when ``use_server_load_in_vra`` is on, because the
            compiled kernel implements the paper's exact eq. (2) without
            the workload extension.
        decision_cache_size: LRU bound on *whole-decision* memoization
            (see :class:`~repro.network.routing.cache.DecisionCache`).
            Within a routing epoch, requests sharing ``(home server,
            title, holder availability signature, QoS class)`` are
            answered from one cached :class:`VraDecision` instead of
            re-running the poll/LVN/Dijkstra pipeline — the flash-crowd
            fast path.  Epoch transitions invalidate delta-scoped: only
            decisions whose Dijkstra tree a changed link could touch are
            dropped.  Decisions are bit-for-bit identical either way.
            ``0`` (default) disables it; requires an active routing
            cache (same ``use_server_load_in_vra`` caveat).
        admission_queue_capacity: Enables the load-leveling admission
            front-end (:class:`~repro.core.admission_queue.AdmissionQueue`)
            when > 0: requests drain from a bounded deterministic FIFO at
            ``admission_rate_per_s`` instead of all starting at once, and
            arrivals past ``capacity`` waiting requests are shed with an
            ``admission-shed:`` failure reason.  ``0`` (default) bypasses
            the queue entirely — legacy-identical admission.
        admission_rate_per_s: Queue drain rate (admissions per simulated
            second, quantised to ``admission_tick_s`` ticks).
        admission_tick_s: Drain-tick width in simulated seconds.
        retry_attempts: Cluster-boundary retry budget per cluster.  When a
            per-cluster VRA run finds no source (all holders crashed,
            partitioned, or polled out), the session backs off and retries
            up to this many times instead of failing instantly.  ``0``
            (default) is the paper's fail-fast behaviour, byte-identical
            to pre-retry runs.
        retry_backoff_s: First retry delay in simulated seconds.
        retry_backoff_multiplier: Exponential backoff growth factor.
        retry_max_backoff_s: Ceiling on any single retry delay.
        requeue_attempts: Strict-QoS admission re-queue budget.  Under
            ``strict_qos_admission``, a rejected request waits
            ``requeue_delay_s`` and re-attempts admission up to this many
            times before failing — crash-recovery storms then shed load
            by delaying rather than dropping.  ``0`` (default) keeps the
            reject-immediately behaviour.
        requeue_delay_s: Simulated wait between admission re-attempts.
        retry_deadline_s: Overall cap on the total simulated time one
            cluster boundary may spend in retry backoff, across all
            attempts.  A retry whose full backoff would cross the
            deadline waits only the remaining slack; once the budget is
            exhausted the next failure propagates.  ``None`` (default)
            keeps the per-attempt-only policy, bit-for-bit.
        session_failover: Mid-stream session failover
            (:class:`~repro.resilience.supervisor.SessionSupervisor`).
            Active transfer segments are indexed by their source server
            and path links; a fault on either (server crash, disk
            failure taking the title, path link offline) *preempts* the
            session immediately — it re-runs the VRA and migrates the
            remainder of the cluster to a surviving holder, stalling
            through ``failover_backoff_s`` waits while holders exist but
            none is currently usable.  A session fails only when no
            online full holder of its title remains.  Default off —
            faults mid-transfer then play out exactly as before (the
            stream limps to the boundary or dies there).
        failover_backoff_s: Wait between failover re-decide attempts.
        breaker_threshold: Per-server/per-link circuit breakers
            (:class:`~repro.resilience.breaker.BreakerBoard`) trip after
            this many failures inside ``breaker_window_s``.  An open
            server breaker filters that server out of the VRA's holder
            set (never to emptiness — with every holder tripped the
            unfiltered set is used, so breakers cannot cause a failure);
            an open link breaker conservatively inflates that link's
            weight to look saturated (reported-stats path only).  After
            ``breaker_cooldown_s`` the breaker half-opens and the next
            success closes it.  Transitions ride the existing
            version-counter/journal machinery — no new invalidation
            paths.  ``0`` (default) disables breakers entirely.
        breaker_window_s: Sliding failure-count window.
        breaker_cooldown_s: Open-state dwell before the half-open probe.
        max_stats_age_s: Staleness guard over the SNMP-fed link stats
            (:class:`~repro.resilience.staleness.StalenessGuard`).  A
            link whose latest sample is older than this — e.g. during an
            ``SnmpBlackout`` — has its headroom shrunk by
            ``stale_inflation_factor`` in the LVN weights, and every
            decision taken while any link is stale is marked
            ``degraded``.  Requires ``use_reported_stats``.  ``None``
            (default) trusts samples of any age, as the paper does.
        stale_inflation_factor: Headroom divisor for stale links (> 1).
        staleness_check_period_s: Spacing of the guard's periodic
            refresh; ``None`` (default) follows ``snmp_period_s``.
        observability: Enable the unified telemetry layer: a live
            metrics registry (per-link utilisation, cache occupancy,
            stream load, VRA decision counters/latency, sim-engine
            gauges), a sim-time sampler snapshotting gauges into ring
            buffers, and per-request session spans sinking into the
            tracer.  Default off — the disabled path routes every
            instrument call to shared no-ops (see
            ``benchmarks/test_bench_obs_overhead.py`` for the cost).
        telemetry_period_s: Simulated seconds between telemetry samples
            (only meaningful with ``observability=True``).
        telemetry_capacity: Ring bound per sampled time series.
        phase_profiling: Register the phase profiler: wall-clock
            ``obs.phase.*`` histograms around VRA decide, routing-cache
            sync, admission drain, fault injection and SNMP collection,
            plus ``obs.memory.*`` gauges (peak RSS, live allocated
            blocks) sampled on the sim clock.  Wall-clock timings are
            not replay-deterministic, so this stays off for seeded
            equivalence runs; requires ``observability=True`` to record
            anything.  Default off — disabled timers are shared no-ops.
    """

    cluster_mb: float = 64.0
    disk_count: int = 4
    disk_capacity_mb: float = 20_000.0
    max_streams: int = 32
    snmp_period_s: float = DEFAULT_POLL_PERIOD_S
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT
    local_read_mbps: float = DEFAULT_LOCAL_READ_MBPS
    rate_update_period_s: float = DEFAULT_RATE_UPDATE_PERIOD_S
    use_reported_stats: bool = True
    use_server_load_in_vra: bool = False
    strict_qos_admission: bool = False
    evict_until_fits: bool = False
    pin_seeded_titles: bool = True
    placement: Optional[PlacementConfig] = None
    vra_trace: bool = False
    routing_cache_size: int = 128
    routing_delta_updates: bool = True
    compiled_routing: bool = True
    decision_cache_size: int = 0
    admission_queue_capacity: int = 0
    admission_rate_per_s: float = DEFAULT_ADMISSION_RATE_PER_S
    admission_tick_s: float = DEFAULT_ADMISSION_TICK_S
    retry_attempts: int = 0
    retry_backoff_s: float = 30.0
    retry_backoff_multiplier: float = 2.0
    retry_max_backoff_s: float = 300.0
    requeue_attempts: int = 0
    requeue_delay_s: float = 60.0
    retry_deadline_s: Optional[float] = None
    session_failover: bool = False
    failover_backoff_s: float = 15.0
    breaker_threshold: int = 0
    breaker_window_s: float = 600.0
    breaker_cooldown_s: float = 300.0
    max_stats_age_s: Optional[float] = None
    stale_inflation_factor: float = 4.0
    staleness_check_period_s: Optional[float] = None
    observability: bool = False
    telemetry_period_s: float = 60.0
    telemetry_capacity: int = DEFAULT_SERIES_CAPACITY
    phase_profiling: bool = False
    #: Per-node hardware overrides ("we propose the use of as many disks
    #: as possible" — sites differ): node uid -> subset of
    #: {disk_count, disk_capacity_mb, max_streams}.  Unlisted nodes use
    #: the uniform values above.
    server_overrides: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def resolved_placement(self) -> PlacementConfig:
        """The effective placement config: the explicit object when set,
        otherwise the paper-faithful whole-title DMA honouring the legacy
        ``evict_until_fits`` knob."""
        if self.placement is not None:
            return self.placement
        return PlacementConfig(kind="dma", evict_until_fits=self.evict_until_fits)

    def retry_policy(self) -> RetryPolicy:
        """The session retry policy these knobs describe (shared NO_RETRY
        singleton when disabled, so the default path allocates nothing)."""
        if self.retry_attempts <= 0:
            return NO_RETRY
        return RetryPolicy(
            attempts=self.retry_attempts,
            backoff_s=self.retry_backoff_s,
            multiplier=self.retry_backoff_multiplier,
            max_backoff_s=self.retry_max_backoff_s,
            deadline_s=self.retry_deadline_s,
        )


def _points_table_size(server: VideoServer) -> float:
    """Entries in a server's DMA points table; 0 for trackerless policies
    (the caching baselines keep no popularity state)."""
    tracker = getattr(server.dma, "tracker", None)
    return float(len(tracker)) if tracker is not None else 0.0


class VoDService:
    """The distributed VoD service over one topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[ServiceConfig] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        topology.validate()
        self.sim = sim
        self.topology = topology
        self.config = config if config is not None else ServiceConfig()
        #: Structured event trace (disabled by default); categories:
        #: request.submitted / request.blocked, vra.decision,
        #: placement.pass (plus the legacy dma.pass alias under the
        #: deprecated shim), session.finished, service.expanded, and the
        #: span.* categories of the observability layer.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: The telemetry instrument registry.  Disabled (all no-ops)
        #: unless ``config.observability`` is set or an enabled registry
        #: is passed in explicitly.
        self.obs = (
            registry
            if registry is not None
            else MetricsRegistry(enabled=self.config.observability)
        )
        self._obs_enabled = self.obs.enabled
        #: Per-request session spans (populated only when observability
        #: is on).
        self.spans: List[SessionSpan] = []
        #: Phase profiler: wall-clock ``obs.phase.*`` histograms and
        #: ``obs.memory.*`` gauges.  Hands out shared no-op timers unless
        #: ``config.phase_profiling`` (and observability) are on.
        self.profiler = PhaseProfiler(self.obs, enabled=self.config.phase_profiling)
        self._t_decide = self.profiler.timer("vra_decide")
        #: Write-behind streaming hook: called with each session span the
        #: moment it finishes (installed by
        #: :class:`repro.obs.stream.StreamingTelemetry`; None otherwise).
        self.on_span_finished: Optional[Callable[[SessionSpan], None]] = None
        self.database = ServiceDatabase()
        self.flows = FlowManager(topology)
        self._subnet_map: Dict[str, str] = {}
        self._clients: Dict[str, Client] = {}
        self.sessions: List[SessionRecord] = []
        #: Server-availability generation: bumped by every server whenever
        #: anything feeding a VRA poll answer moves (online state, title
        #: residency, disk health, stream slots).  Together with the
        #: database's title-locations version it stamps the decision-key
        #: cache below, so the flash-crowd hot path rebuilds holder
        #: signatures only when some availability input actually changed.
        self._availability_version = 0
        #: Same-state decision replay: ``(home_uid, title_id) ->
        #: (freshness token, decision, candidate_count)``.  While the
        #: token is unchanged, every routing and availability input of
        #: that pair's decision is provably unchanged, so the stored
        #: decision is returned as-is — the flash-crowd O(1) fast path.
        #: Metadata-only (one tuple per home/title pair ever decided).
        self._decision_replay: Dict[
            Tuple[str, str], Tuple[Tuple[int, int, int, int], VraDecision, int]
        ] = {}
        self._register_service_instruments()

        #: Deployment-wide placement-policy choice, resolved once; every
        #: server (including runtime-added ones) builds its policy from it.
        self.placement_config = self.config.resolved_placement()
        # Overrides may name nodes that do not exist *yet*: they apply
        # when that node joins via add_server (runtime expansion).
        self.servers: Dict[str, VideoServer] = {}
        for node in topology.nodes():
            hardware = self._server_hardware(node.uid)
            server = VideoServer(
                node_uid=node.uid,
                database=self.database,
                disk_count=hardware["disk_count"],
                disk_capacity_mb=hardware["disk_capacity_mb"],
                cluster_mb=self.config.cluster_mb,
                max_streams=hardware["max_streams"],
                pin_seeded=self.config.pin_seeded_titles,
                placement=self.placement_config,
            )
            self.servers[node.uid] = server
            server.on_availability_change = self._bump_availability
            server.attach_metrics(self.obs)
            self._register_server_gauges(server)
            self.database.register_server(
                ServerEntry(
                    server_uid=node.uid,
                    disk_count=hardware["disk_count"],
                    disk_capacity_mb=hardware["disk_capacity_mb"],
                    cache_capacity_mb=hardware["disk_count"] * hardware["disk_capacity_mb"],
                    max_streams=hardware["max_streams"],
                )
            )
        for link in topology.links():
            self.database.register_link(
                LinkEntry(
                    link_name=link.name,
                    endpoints=link.endpoints,
                    total_bandwidth_mbps=link.capacity_mbps,
                )
            )
            self._register_link_gauges(link)

        self.statistics = StatisticsService(
            sim,
            topology,
            self.database.limited_access(),
            period_s=self.config.snmp_period_s,
        )
        self.statistics.attach_metrics(self.obs)
        self.statistics.phase_timer = self.profiler.timer("snmp_collect")

        # Resilience layer (every knob default-off: the attributes below
        # stay None and the legacy execution path is byte-identical).
        if (
            self.config.max_stats_age_s is not None
            and not self.config.use_reported_stats
        ):
            raise ServiceError(
                "max_stats_age_s guards the reported (SNMP-fed) link stats "
                "and requires use_reported_stats=True"
            )
        #: Staleness guard over the SNMP-fed link stats; None when off.
        self.staleness_guard: Optional[StalenessGuard] = None
        if self.config.max_stats_age_s is not None:
            self.staleness_guard = StalenessGuard(
                sim,
                self.database,
                topology,
                max_age_s=self.config.max_stats_age_s,
                inflation_factor=self.config.stale_inflation_factor,
                check_period_s=(
                    self.config.staleness_check_period_s
                    if self.config.staleness_check_period_s is not None
                    else self.config.snmp_period_s
                ),
                on_change=self._on_staleness_change,
            )
            # Fresh samples clear staleness in the collection round that
            # wrote them (blackout-skipped rounds do not fire this).
            self.statistics.on_round = self.staleness_guard.refresh
            if self._obs_enabled:
                self.obs.gauge(
                    "snmp.stale_links", subsystem="snmp",
                    description="links whose latest SNMP sample is age-expired",
                    callback=lambda: float(self.staleness_guard.stale_count),
                )
        #: Per-server/per-link circuit breakers; None when threshold is 0.
        self.breakers: Optional[BreakerBoard] = None
        if self.config.breaker_threshold > 0:
            self.breakers = BreakerBoard(
                sim,
                threshold=self.config.breaker_threshold,
                window_s=self.config.breaker_window_s,
                cooldown_s=self.config.breaker_cooldown_s,
                on_transition=self._on_breaker_transition,
                registry=self.obs,
            )
        #: Mid-stream failover supervisor; None when off.
        self.supervisor: Optional[SessionSupervisor] = None
        if self.config.session_failover:
            self.supervisor = SessionSupervisor(
                sim,
                self.servers,
                self.database,
                topology,
                backoff_s=self.config.failover_backoff_s,
                registry=self.obs,
            )
        if self.supervisor is not None or self.breakers is not None:
            for server in self.servers.values():
                server.on_state_change = self._on_server_state
            topology.on_state_change = self._on_link_state

        # Live server load feeds the weights without a version counter, so
        # epoch caching cannot see those changes; fall back to recompute.
        cacheable = not self.config.use_server_load_in_vra
        delta_on = (
            cacheable
            and self.config.routing_delta_updates
            and self.config.routing_cache_size > 0
        )
        # Journal cursors for delta-scoped invalidation.  Starting at the
        # current heads skips the initialisation-phase records; the VRA's
        # first (cold) weight build snapshots every link anyway.
        self._topo_cursor = JournalCursor(
            topology.change_journal,
            kinds=(STATE_CHANGE,) if self.config.use_reported_stats else None,
        )
        self._stats_cursor = JournalCursor(self.database.stats_journal)
        # On the reported-stats path the staleness guard and open link
        # breakers interpose on the used-bandwidth reads; without either
        # the plain reader keeps the default path byte-identical.
        used_of: Optional[Callable[[Link], float]] = None
        if self.config.use_reported_stats:
            guarded = self.staleness_guard is not None or self.breakers is not None
            used_of = self._guarded_used if guarded else self._reported_used
        self.vra = VirtualRoutingAlgorithm(
            topology,
            used_of=used_of,
            normalization_constant=self.config.normalization_constant,
            node_load=self._server_load if self.config.use_server_load_in_vra else None,
            trace=self.config.vra_trace,
            epoch_of=self.routing_epoch if cacheable else None,
            cache_size=self.config.routing_cache_size,
            delta_of=self._routing_delta if delta_on else None,
            decision_cache_size=(
                self.config.decision_cache_size
                if self.config.routing_cache_size > 0
                else 0
            ),
            metrics=self.obs,
            compiled=self.config.compiled_routing,
        )
        self._decision_memo_on = self.vra.decision_cache is not None
        if self.vra.cache is not None:
            self.vra.cache.phase_timer = self.profiler.timer("cache_sync")
        # Freshness token for the same-state replay layer: four version
        # counters covering every input a VRA decision reads — server
        # availability (poll answers), title holder lists, reported link
        # stats, and topology structure/traffic.  Reads the underlying
        # counters directly (not the properties) because this runs per
        # decision on the hot path; a parity test pins the closure
        # against routing_epoch().
        db, topo = self.database, self.topology
        if self.config.use_reported_stats:
            self._freshness = lambda: (
                self._availability_version,
                db._locations_version,
                db._link_stats_version,
                topo._state_version,
            )
        else:
            self._freshness = lambda: (
                self._availability_version,
                db._locations_version,
                topo._traffic_version,
                topo._state_version,
            )
        #: Optional QoS-class hook for decision memoization: maps a title
        #: id to a hashable service class folded into the decision key.
        #: None (default) treats every request as one class — today's
        #: VRA has no QoS-class input, so this is forward compatibility
        #: for the user-class extension surveyed in PAPERS.md.
        self.qos_class_of: Optional[Callable[[str], Hashable]] = None
        #: The load-leveling admission front-end; None when the knob is 0
        #: (requests go straight to session start, legacy-identical).
        self.admission_queue: Optional[AdmissionQueue] = None
        if self.config.admission_queue_capacity > 0:
            self.admission_queue = AdmissionQueue(
                capacity=self.config.admission_queue_capacity,
                rate_per_s=self.config.admission_rate_per_s,
                tick_s=self.config.admission_tick_s,
            )
            self.admission_queue.attach_metrics(self.obs)
            self.admission_queue.phase_timer = self.profiler.timer("admission_drain")
        #: Periodic sim-time gauge sampler (a no-op when observability is
        #: off; started alongside the SNMP collector in :meth:`start`).
        self.telemetry = TelemetrySampler(
            sim,
            self.obs,
            period_s=self.config.telemetry_period_s,
            capacity=self.config.telemetry_capacity,
        )
        self._started = False
        #: Resolved once: every session shares the same policy object.
        self._retry_policy = self.config.retry_policy()
        #: Optional per-session wrapper around the decide function, used by
        #: the switching baselines (e.g. ``NeverSwitch``): called once per
        #: session with the fresh decide closure, returns the one to use.
        self.decide_wrapper: Optional[Callable[[Callable[[], VraDecision]], Callable[[], VraDecision]]] = None

    # ------------------------------------------------------------------ #
    # telemetry registration
    # ------------------------------------------------------------------ #
    def _register_service_instruments(self) -> None:
        """Resolve service-level instruments (all no-ops when disabled)."""
        obs = self.obs
        self._m_requests = obs.counter(
            "service.requests_submitted", subsystem="service",
            description="client requests placed",
        )
        self._m_blocked = obs.counter(
            "service.requests_blocked", subsystem="service",
            description="requests rejected by strict-QoS admission",
        )
        self._m_completed = obs.counter(
            "service.sessions_completed", subsystem="service",
            description="sessions that delivered every cluster",
        )
        self._m_failed = obs.counter(
            "service.sessions_failed", subsystem="service",
            description="sessions that finished without completing",
        )
        self._m_clusters = obs.counter(
            "session.clusters_delivered", subsystem="core",
            description="cluster transfers completed",
        )
        self._m_switches = obs.counter(
            "session.switches", subsystem="core",
            description="mid-stream server switches",
        )
        self._m_decision_latency = obs.histogram(
            "vra.decision_latency_ms", subsystem="core",
            description="wall-clock latency of one VRA decision (ms)",
        )
        self._m_retries = obs.counter(
            "resilience.retries", subsystem="core",
            description="cluster-boundary VRA retries taken by sessions",
        )
        self._m_recoveries = obs.counter(
            "resilience.sessions_recovered", subsystem="core",
            description="sessions that lost every source and found one "
            "again via retry/backoff",
        )
        self._m_recovery_s = obs.histogram(
            "resilience.recovery_s", subsystem="core",
            description="simulated time a cluster boundary stayed blocked "
            "before a retry succeeded (s)",
        )
        self._m_requeues = obs.counter(
            "resilience.requeues", subsystem="service",
            description="strict-QoS admission rejections re-queued "
            "instead of dropped",
        )
        self._m_degraded = obs.counter(
            "resilience.degraded_decisions", subsystem="core",
            description="try_decide calls that returned a non-ok outcome",
        )
        self._m_startup = obs.histogram(
            "session.startup_s", subsystem="core",
            description="startup delay of completed sessions (s)",
        )
        self._m_stall = obs.histogram(
            "session.stall_s", subsystem="core",
            description="total stall time of completed sessions (s)",
        )
        if not self._obs_enabled:
            return
        # Observable gauges: evaluated by the telemetry sampler, so the
        # closures below cost nothing between samples.
        obs.gauge(
            "sim.events_fired", subsystem="sim",
            description="cumulative events executed by the engine",
            callback=lambda: float(self.sim.events_fired),
        )
        obs.gauge(
            "sim.pending_events", subsystem="sim",
            description="events scheduled and not yet fired/cancelled",
            callback=lambda: float(self.sim.pending_count),
        )
        obs.gauge(
            "sim.heap_depth", subsystem="sim",
            description="raw event-heap length (cancelled carcasses included)",
            callback=lambda: float(self.sim.heap_depth),
        )
        # Cancelled-carcass compactions are engine-internal events, so the
        # counter rides the engine's hook rather than a sampled gauge.
        m_compactions = obs.counter(
            "engine.heap_compactions", subsystem="sim",
            description="cancelled-carcass heap compactions performed",
        )
        self.sim.on_compaction = m_compactions.inc
        obs.gauge(
            "service.sessions_active", subsystem="service",
            description="sessions submitted and not yet finished",
            callback=lambda: float(
                sum(1 for r in self.sessions if not r.request.finished)
            ),
        )
        obs.gauge(
            "service.flows_active", subsystem="network",
            description="bandwidth reservations currently held",
            callback=lambda: float(self.flows.active_count),
        )
        obs.gauge(
            "routing.cache_hit_rate", subsystem="core",
            description="routing-cache hits over lookups, in [0, 1]",
            callback=self._cache_hit_rate,
        )
        obs.gauge(
            "decision.cache_hit_rate", subsystem="core",
            description="whole-decision memo hits over lookups, in [0, 1]",
            callback=self._decision_hit_rate,
        )
        obs.gauge(
            "admission.queue_depth", subsystem="service",
            description="requests waiting in the admission queue",
            callback=lambda: float(
                self.admission_queue.depth
                if self.admission_queue is not None
                else 0.0
            ),
        )

    def _register_server_gauges(self, server: VideoServer) -> None:
        """Per-server occupancy/load gauges (sampled, not hot-path)."""
        if not self._obs_enabled:
            return
        obs = self.obs
        labels = {"server": server.node_uid}
        obs.gauge(
            "server.cache_used_mb", subsystem="server", labels=labels,
            description="disk-cache bytes resident (MB)",
            callback=lambda s=server: s.array.used_mb,
        )
        obs.gauge(
            "server.cache_fraction", subsystem="server", labels=labels,
            description="disk-cache occupancy over capacity, in [0, 1]",
            callback=lambda s=server: s.array.used_mb / s.array.total_capacity_mb,
        )
        obs.gauge(
            "server.active_streams", subsystem="server", labels=labels,
            description="streams currently sourced",
            callback=lambda s=server: float(s.admission.active_count),
        )
        obs.gauge(
            "server.stream_load", subsystem="server", labels=labels,
            description="stream-slot occupancy, in [0, 1]",
            callback=lambda s=server: s.admission.load,
        )
        obs.gauge(
            "dma.points_table_size", subsystem="server", labels=labels,
            description="titles tracked in the DMA points table",
            callback=lambda s=server: float(_points_table_size(s)),
        )

    def _register_link_gauges(self, link: Link) -> None:
        """Per-link utilisation/reservation gauges (sampled)."""
        if not self._obs_enabled:
            return
        labels = {"link": link.name}
        self.obs.gauge(
            "link.utilization", subsystem="network", labels=labels,
            description="used over total bandwidth (eq. 5), in [0, 1]",
            callback=lambda l=link: l.utilization,
        )
        self.obs.gauge(
            "link.reserved_mbps", subsystem="network", labels=labels,
            description="bandwidth reserved by VoD flows (Mbps)",
            callback=lambda l=link: l.reserved_mbps,
        )

    def _cache_hit_rate(self) -> float:
        """Routing-cache hit rate, 0.0 when caching is off or replaced."""
        stats = getattr(self.vra, "cache_stats", None)
        return stats.hit_rate if stats is not None else 0.0

    def _decision_hit_rate(self) -> float:
        """Decision-memo hit rate, 0.0 when that layer is off."""
        stats = getattr(self.vra, "decision_cache_stats", None)
        return stats.hit_rate if stats is not None else 0.0

    # ------------------------------------------------------------------ #
    # initialisation phase
    # ------------------------------------------------------------------ #
    def attach_access_network(self, subnet: str, server_uid: str) -> None:
        """Declare that clients in ``subnet`` are adjacent to a server.

        Raises:
            ServiceError: If the server uid is unknown or the subnet is
                already attached elsewhere.
        """
        if server_uid not in self.servers:
            raise ServiceError(f"unknown server {server_uid!r}")
        existing = self._subnet_map.get(subnet)
        if existing is not None and existing != server_uid:
            raise ServiceError(
                f"subnet {subnet!r} is already attached to {existing!r}"
            )
        self._subnet_map[subnet] = server_uid

    def register_client(self, client: Client) -> str:
        """Register a client and resolve its home server from its address.

        Returns:
            The client's home server uid.
        """
        home_uid = client.resolve_home(self._subnet_map)
        self._clients[client.client_id] = client
        return home_uid

    def seed_title(self, server_uid: str, video: VideoTitle) -> None:
        """Initialisation-phase title load on one server.

        Raises:
            ServiceError: If the server uid is unknown.
        """
        server = self.servers.get(server_uid)
        if server is None:
            raise ServiceError(f"unknown server {server_uid!r}")
        server.seed_title(video)

    def start(self) -> None:
        """Begin periodic SNMP collection and telemetry sampling (call
        after initialisation)."""
        if not self._started:
            self.statistics.start()
            self.telemetry.start()
            if self.staleness_guard is not None:
                self.staleness_guard.start()
            self._started = True

    # ------------------------------------------------------------------ #
    # runtime expansion (the paper: "New nodes can easily be connected to
    # the network and the only thing that has to be changed is [the]
    # corresponding database entries")
    # ------------------------------------------------------------------ #
    def add_server(self, node: "Node", links: List[Link]) -> VideoServer:
        """Attach a new video-server node to the running service.

        Grows the topology, registers the database entries, spins up the
        node's video server and SNMP statistics module — after which the
        VRA routes to/through the newcomer like any other node.

        Args:
            node: The new network node.
            links: Links joining the newcomer to existing nodes (every
                link must have ``node`` as one endpoint).

        Returns:
            The newcomer's :class:`VideoServer`.

        Raises:
            ServiceError: If no links are given or a link does not touch
                the new node.
            TopologyError: For duplicate nodes/links or unknown far ends.
        """
        if not links:
            raise ServiceError(
                f"new server {node.uid!r} needs at least one link to join"
            )
        for link in links:
            if not link.touches(node.uid):
                raise ServiceError(
                    f"link {link.name!r} does not touch new node {node.uid!r}"
                )
        self.topology.add_node(node)
        for link in links:
            self.topology.add_link(link)
        hardware = self._server_hardware(node.uid)
        server = VideoServer(
            node_uid=node.uid,
            database=self.database,
            disk_count=hardware["disk_count"],
            disk_capacity_mb=hardware["disk_capacity_mb"],
            cluster_mb=self.config.cluster_mb,
            max_streams=hardware["max_streams"],
            pin_seeded=self.config.pin_seeded_titles,
            placement=self.placement_config,
        )
        self.servers[node.uid] = server
        server.on_availability_change = self._bump_availability
        if self.supervisor is not None or self.breakers is not None:
            server.on_state_change = self._on_server_state
        self._bump_availability()
        server.attach_metrics(self.obs)
        self._register_server_gauges(server)
        self.database.register_server(
            ServerEntry(
                server_uid=node.uid,
                disk_count=hardware["disk_count"],
                disk_capacity_mb=hardware["disk_capacity_mb"],
                cache_capacity_mb=hardware["disk_count"] * hardware["disk_capacity_mb"],
                max_streams=hardware["max_streams"],
            )
        )
        for link in links:
            self.database.register_link(
                LinkEntry(
                    link_name=link.name,
                    endpoints=link.endpoints,
                    total_bandwidth_mbps=link.capacity_mbps,
                )
            )
            self._register_link_gauges(link)
        self.statistics.add_node(node.uid)
        self.tracer.record(
            self.sim.now,
            "service.expanded",
            f"node {node.uid} ({node.name}) joined with "
            f"{len(links)} link(s)",
            node_uid=node.uid,
            links=[link.name for link in links],
        )
        return server

    # ------------------------------------------------------------------ #
    # request path (the web module behaviour)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        client: Union[Client, str],
        title_id: str,
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Place a video request on behalf of a client.

        The home server is resolved from the client's address (the paper's
        "Get the IP address of the client placing the video request"),
        the DMA pass runs on the home server, and a streaming session
        process is scheduled.  The session starts at the next simulation
        tick; run the simulator to drive it.

        Args:
            client: A registered :class:`Client` or its client_id.
            title_id: The requested title; must exist in the catalog.

        Returns:
            (request, session, process) — the process finishes when the
            last cluster is delivered.

        Raises:
            ServiceError: For unknown clients or titles.
        """
        client_obj = self._resolve_client(client)
        home_uid = client_obj.resolve_home(self._subnet_map)
        return self._submit_at(home_uid, title_id, client_obj.client_id)

    def request_by_home(
        self, home_uid: str, title_id: str, client_id: str = "anonymous"
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Place a request directly at a home server (experiment harness)."""
        if home_uid not in self.servers:
            raise ServiceError(f"unknown server {home_uid!r}")
        return self._submit_at(home_uid, title_id, client_id)

    def decide(self, home_uid: str, title_id: str) -> VraDecision:
        """One VRA decision for a request at ``home_uid`` (no streaming)."""
        t_phase = self._t_decide.start()
        try:
            cache_key: Optional[Hashable] = None
            token: Optional[Tuple[int, int, int, int]] = None
            if self._decision_memo_on:
                # Same-state replay: while the freshness token is unchanged,
                # every input of this pair's previous decision (holder list,
                # poll answers, LVN weights, topology) is provably unchanged,
                # so the stored decision is returned without re-entering the
                # VRA — one dict probe and one tuple compare per request.
                token = self._freshness()
                replay = self._decision_replay.get((home_uid, title_id))
                if replay is not None and replay[0] == token:
                    decision = replay[1]
                    self.vra.count_replayed(decision, replay[2])
                    if self._obs_enabled:
                        self._m_decision_latency.observe(0.0)
                    if self.tracer.enabled:
                        self._trace_decision(home_uid, title_id, decision)
                    return decision
                # The memo key is the promise that a cached decision's inputs
                # are reproduced exactly: beyond the routing epoch (synced
                # inside the VRA), each holder's poll answer is a function of
                # its (online, title-resident, headroom-bucket) signature.
                holders = self.database.servers_with_title(title_id, min_fraction=1.0)
                if self.breakers is not None:
                    # Filter *before* keying, so the memo key describes
                    # the holder set the VRA actually saw.  Transitions
                    # bump the availability version, staling the token.
                    holders = self.breakers.filter_servers(holders)
                cache_key = (
                    home_uid,
                    title_id,
                    frozenset(self._holder_signature(uid, title_id) for uid in holders),
                    self.qos_class_of(title_id) if self.qos_class_of is not None else None,
                )
            else:
                # Full holders only: a server advertising a prefix fraction
                # cannot source a whole remote stream, so the VRA prefers
                # full holders by construction.
                holders = self.database.servers_with_title(title_id, min_fraction=1.0)
                if self.breakers is not None:
                    holders = self.breakers.filter_servers(holders)
            started = perf_counter() if self._obs_enabled else 0.0
            decision = self.vra.decide(
                home_uid,
                title_id,
                holders,
                poll=lambda uid: self.servers[uid].can_provide(title_id),
                cache_key=cache_key,
            )
            if self._obs_enabled:
                self._m_decision_latency.observe((perf_counter() - started) * 1e3)
            if (
                self.staleness_guard is not None
                and self.staleness_guard.degraded
                and not decision.degraded
            ):
                # Stamped outside the VRA so its memo keeps the unmarked
                # decision; the replay layer below stores the marked one
                # (safe: every stale-set flip touches the journaled links,
                # which stales the freshness token).
                decision = replace(decision, degraded=True)
            if token is not None:
                # Arm the replay layer.  The candidate count comes from the
                # VRA's memo entry (just stored or refreshed) so a replayed
                # request lands the exact histogram sample a cold run would.
                entry = self.vra.decision_cache.peek(cache_key)
                if entry is not None:
                    self._decision_replay[(home_uid, title_id)] = (
                        token, decision, entry.candidate_count
                    )
            if self.tracer.enabled:
                self._trace_decision(home_uid, title_id, decision)
            return decision

        finally:
            self._t_decide.stop(t_phase)

    def _close_span(self, span: SessionSpan, status: str) -> None:
        """Finish a span and hand it to the streaming hook, if installed."""
        span.finish(self.sim.now, status)
        if self.on_span_finished is not None:
            self.on_span_finished(span)

    def _trace_decision(
        self, home_uid: str, title_id: str, decision: VraDecision
    ) -> None:
        self.tracer.record(
            self.sim.now,
            "vra.decision",
            f"{title_id} at {home_uid}: chose {decision.chosen_uid} "
            f"via {decision.path.as_label()} (cost {decision.cost:.4f})",
            home_uid=home_uid,
            title_id=title_id,
            chosen_uid=decision.chosen_uid,
            cost=decision.cost,
            served_locally=decision.served_locally,
        )

    def _bump_availability(self) -> None:
        """A server's poll-answer inputs moved; stale the replay tokens."""
        self._availability_version += 1

    # ------------------------------------------------------------------ #
    # resilience-layer fan-out (wired only when a knob is on)
    # ------------------------------------------------------------------ #
    def _on_server_state(self, server: VideoServer) -> None:
        """A server flipped online: preempt its sessions, feed its breaker."""
        if self.supervisor is not None:
            self.supervisor.on_server_state(server)
        if self.breakers is not None and not server.online:
            self.breakers.server_failure(server.node_uid)

    def _on_link_state(self, link: Link) -> None:
        """A link flipped online: preempt path users, feed its breaker."""
        if self.supervisor is not None:
            self.supervisor.on_link_state(link)
        if self.breakers is not None and not link.online:
            self.breakers.link_failure(link.name)

    def _on_breaker_transition(
        self, kind: str, target: str, old: str, new: str
    ) -> None:
        """Ride breaker transitions on the existing invalidation machinery.

        A server breaker changes holder filtering, which is exactly the
        class of change the availability version covers; any memoized
        decision still naming the server is evicted defensively.  A link
        breaker changes that link's effective weight, which is exactly
        what a reported-stats write would — so it is journaled as one.
        """
        if kind == KIND_SERVER:
            self._bump_availability()
            if self.vra.decision_cache is not None:
                self.vra.decision_cache.evict_server(target)
        elif self.config.use_reported_stats:
            self.database.touch_links([target])
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "breaker.transition",
                f"{kind} {target}: {old} -> {new}",
                kind=kind,
                target=target,
                old=old,
                new=new,
            )

    def _on_staleness_change(self, changed: List[str]) -> None:
        """Stale-set flips invalidate exactly the affected links' weights."""
        self.database.touch_links(changed)
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "snmp.staleness",
                f"{len(changed)} link(s) changed staleness",
                links=list(changed),
            )

    def _holder_signature(self, uid: str, title_id: str) -> Tuple[str, bool, int]:
        """One holder's contribution to the decision-memo key.

        ``can_provide`` is ``online and has_title and headroom > 0``; the
        signature carries ``(uid, online-and-resident, headroom bucket)``
        where the bucket is ``bit_length`` of the free stream slots (0
        means saturated).  The poll answer is exactly ``flag and bucket >
        0``, so equal keys guarantee equal poll outcomes while stream
        churn within a power-of-two band keeps the key stable.
        """
        server = self.servers[uid]
        admission = server.admission
        headroom = admission.max_streams - admission.active_count
        return (
            uid,
            server.online and server.has_title(title_id),
            headroom.bit_length() if headroom > 0 else 0,
        )

    def try_decide(self, home_uid: str, title_id: str) -> DecideOutcome:
        """One VRA decision that degrades to an explicit outcome.

        Where :meth:`decide` raises, this returns a :class:`DecideOutcome`
        naming what is wrong — ``no-holder``, ``no-reachable-holder``
        (home server partitioned from every holder), or
        ``no-available-holder`` (every holder polled out).  Resilience
        tooling and operators poll this instead of catching exceptions;
        non-ok outcomes land on the ``resilience.degraded_decisions``
        counter and in the trace.
        """
        try:
            return DecideOutcome(DECIDE_OK, decision=self.decide(home_uid, title_id))
        except TitleUnavailableError as exc:
            outcome, reason = NO_HOLDER, str(exc)
        except NoReachableHolderError as exc:
            outcome, reason = NO_REACHABLE_HOLDER, str(exc)
        except RoutingError as exc:
            outcome, reason = NO_AVAILABLE_HOLDER, str(exc)
        self._m_degraded.inc()
        self.tracer.record(
            self.sim.now,
            "vra.degraded",
            f"{title_id} at {home_uid}: {outcome}",
            home_uid=home_uid,
            title_id=title_id,
            outcome=outcome,
        )
        return DecideOutcome(outcome, reason=reason)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def routing_epoch(self) -> Tuple[str, int, int]:
        """Cheap version token over every VRA routing input.

        The token changes whenever a decision could differ from the
        previous one: on the paper-faithful path (``use_reported_stats``)
        that is a limited-access database write (SNMP collector rounds,
        admin updates) or a structural change (link online/offline,
        runtime expansion); on the ground-truth path it additionally
        tracks every link-usage mutation.  Equal tokens guarantee
        bit-identical LVN tables and Dijkstra trees, which is what lets
        the routing cache reuse them safely.
        """
        if self.config.use_reported_stats:
            return (
                "db",
                self.database.link_stats_version,
                self.topology.state_version,
            )
        return (
            "net",
            self.topology.traffic_version,
            self.topology.state_version,
        )

    def _routing_delta(self) -> Optional[FrozenSet[str]]:
        """Names of links whose VRA-visible inputs may have moved.

        Drains this service's cursors on the change journals that back
        :meth:`routing_epoch`: on the reported-stats path, structural
        topology changes (online/offline, expansion) plus database
        value changes; on the ground-truth path, every topology change.
        Returns None when a journal overflowed — the caller (the routing
        cache's delta probe) then falls back to a full flush.
        """
        if self.config.use_reported_stats:
            structural = self._topo_cursor.drain()
            reported = self._stats_cursor.drain()
            if structural is None or reported is None:
                return None
            return structural | reported
        return self._topo_cursor.drain()

    def snapshot(self) -> Dict[str, object]:
        """One-call operational snapshot of the running service.

        Includes the routing-cache hit/miss/invalidation counters, so
        operators (and the benchmark reports) can see how often the VRA
        actually recomputed.  Also records the snapshot into the event
        trace when tracing is enabled.
        """
        cache_stats = getattr(self.vra, "cache_stats", None)
        cache_dict = cache_stats.as_dict() if cache_stats is not None else None
        decision_stats = getattr(self.vra, "decision_cache_stats", None)
        snapshot: Dict[str, object] = {
            "time": self.sim.now,
            "server_count": len(self.servers),
            "link_count": self.topology.link_count,
            "session_count": len(self.sessions),
            "completed_sessions": len(self.completed_sessions()),
            "active_flows": self.flows.active_count,
            "vra_decisions": getattr(self.vra, "decision_count", 0),
            "routing_epoch": self.routing_epoch(),
            "routing_cache": cache_dict,
            "decision_cache": (
                decision_stats.as_dict() if decision_stats is not None else None
            ),
            "admission_queue": (
                self.admission_queue.snapshot()
                if self.admission_queue is not None
                else None
            ),
        }
        cache_label = (
            f"cache {cache_dict['hit_rate']:.2%} hit rate"
            if cache_dict is not None
            else "cache off"
        )
        self.tracer.record(
            self.sim.now,
            "service.snapshot",
            f"{snapshot['vra_decisions']} decision(s), {cache_label}",
            **{k: v for k, v in snapshot.items() if k != "time"},
        )
        return snapshot

    def completed_sessions(self) -> List[SessionRecord]:
        """Finished session records (completed or failed)."""
        return [record for record in self.sessions if record.request.finished]

    def title_video(self, title_id: str) -> VideoTitle:
        """Reconstruct the storage-layer video object from the catalog."""
        info = self.database.title_info(title_id)
        return VideoTitle(
            title_id=info.title_id,
            name=info.name,
            size_mb=info.size_mb,
            duration_s=info.duration_s,
            bitrate_mbps=info.bitrate_mbps,
        )

    # ------------------------------------------------------------------ #
    def _submit_at(
        self, home_uid: str, title_id: str, client_id: str
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        video = self.title_video(title_id)
        request = VideoRequest(
            client_id=client_id,
            home_uid=home_uid,
            title_id=title_id,
            submitted_at=self.sim.now,
        )
        home_server = self.servers[home_uid]
        self.tracer.record(
            self.sim.now,
            "request.submitted",
            f"{client_id} at {home_uid} requests {title_id}",
            client_id=client_id,
            home_uid=home_uid,
            title_id=title_id,
        )
        dma_result = home_server.on_download_begins(video)
        self.tracer.record(
            self.sim.now,
            "placement.pass",
            f"{home_uid}: {title_id} -> {dma_result.action.value} "
            f"(points {dma_result.points}, evicted {list(dma_result.evicted)})",
            home_uid=home_uid,
            title_id=title_id,
            action=dma_result.action.value,
            points=dma_result.points,
            evicted=list(dma_result.evicted),
            resident_fraction=dma_result.resident_fraction,
        )
        if self.tracer.enabled and home_server.legacy_policy:
            # Back-compat alias: deployments still constructing the
            # deprecated DiskManipulationAlgorithm shim keep seeing the
            # historical trace family alongside the new one.
            self.tracer.record(
                self.sim.now,
                "dma.pass",
                f"{home_uid}: {title_id} -> {dma_result.action.value} "
                f"(points {dma_result.points}, evicted {list(dma_result.evicted)})",
                home_uid=home_uid,
                title_id=title_id,
                action=dma_result.action.value,
                points=dma_result.points,
                evicted=list(dma_result.evicted),
            )
        dma_stored = dma_result.cached and dma_result.action.value != "hit"
        self._m_requests.inc()
        span: Optional[SessionSpan] = None
        if self._obs_enabled:
            span = SessionSpan(
                request_id=request.request_id,
                client_id=client_id,
                title_id=title_id,
                home_uid=home_uid,
                started_at=self.sim.now,
                sink=self.tracer,
            )
            self.spans.append(span)
            span.add(
                self.sim.now,
                "submitted",
                dma_action=dma_result.action.value,
                dma_points=dma_result.points,
            )

        # Load-leveling front-end: the queue sits *before* the strict-QoS
        # decision so an overload sheds cheaply instead of paying a VRA
        # run per doomed request.  Zero-wait slots fall through to the
        # exact legacy path below, so an idle queue is byte-identical to
        # no queue at all.
        wait_s = 0.0
        if self.admission_queue is not None:
            slot = self.admission_queue.offer(self.sim.now, (home_uid, title_id))
            if slot.shed:
                return self._shed_request(request, video, home_server, dma_stored, span, slot)
            wait_s = slot.wait_s
            if wait_s > 0.0:
                if self.tracer.enabled:
                    self.tracer.record(
                        self.sim.now,
                        "request.queued",
                        f"{client_id} at {home_uid}: {title_id} admission "
                        f"delayed {wait_s:.3f}s ({slot.depth} ahead)",
                        client_id=client_id,
                        home_uid=home_uid,
                        title_id=title_id,
                        wait_s=wait_s,
                        depth=slot.depth,
                    )
                if span is not None:
                    span.add(
                        self.sim.now, "queued",
                        wait_s=wait_s, admit_at=slot.admit_at, depth=slot.depth,
                    )
                return self._delay_request(
                    request, video, home_server, dma_stored, span, wait_s
                )

        if self.config.strict_qos_admission and not self._qos_admissible(
            home_uid, title_id, video
        ):
            if self.config.requeue_attempts > 0:
                return self._requeue_request(request, video, home_server, dma_stored, span)
            return self._block_request(request, video, home_server, dma_stored, span)

        session = self._build_session(request, video, home_server, dma_stored, span)
        self.sessions.append(session.record)
        process = Process(
            self.sim, session.run(), name=f"session:{client_id}:{title_id}"
        )
        if self.supervisor is not None:
            self.supervisor.adopt(session, process)
        return request, session, process

    def _build_session(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan],
    ) -> StreamingSession:
        """The fully wired streaming session for an admitted request."""
        home_uid, title_id = request.home_uid, request.title_id
        decide = lambda: self.decide(home_uid, title_id)  # noqa: E731
        if self.decide_wrapper is not None:
            decide = self.decide_wrapper(decide)
        if span is not None:
            # Wrap *outside* decide_wrapper so the span sees the decision
            # the session actually uses (e.g. NeverSwitch's frozen one).
            decide = self._span_decide(decide, span)
        decide_for_cluster = None
        if self.placement_config.fractional:
            # Prefix-serving fast path: while a requested cluster is
            # resident on the home server's healthy disks and a stream
            # slot is free, serve it locally; the VRA routes the suffix.
            decide_for_cluster = self._prefix_cluster_decider(
                home_uid, title_id, decide
            )

        return StreamingSession(
            sim=self.sim,
            request=request,
            video=video,
            cluster_mb=self.config.cluster_mb,
            decide=decide,
            flows=self.flows,
            servers=self.servers,
            decide_for_cluster=decide_for_cluster,
            local_read_mbps=self.config.local_read_mbps,
            rate_update_period_s=self.config.rate_update_period_s,
            retry=self._retry_policy,
            failover=self.supervisor,
            on_failover=(
                self._failover_hook(span) if self.supervisor is not None else None
            ),
            on_finish=lambda record: self._on_session_finish(
                record, home_server, dma_stored, span
            ),
            on_cluster=(
                self._cluster_hook(span)
                if self._obs_enabled or self.breakers is not None
                else None
            ),
            on_retry=self._note_retry,
            on_recover=self._note_recovery,
        )

    def _prefix_cluster_decider(
        self,
        home_uid: str,
        title_id: str,
        decide: Callable[[], VraDecision],
    ) -> Callable[[int], VraDecision]:
        """Per-cluster decision function for fractional placements: local
        serve while the cluster is resident at home, VRA otherwise."""

        def decide_cluster(cluster_index: int) -> VraDecision:
            home = self.servers[home_uid]
            # serves_segment excludes a full store whose download is still
            # in flight (pending advertisement): those bytes arrive via
            # this very session, so they cannot source it.
            if (
                home.online
                and home.admission.has_capacity
                and home.serves_segment(title_id)
                and home.array.cluster_servable(title_id, cluster_index)
            ):
                return VraDecision(
                    title_id=title_id,
                    home_uid=home_uid,
                    chosen_uid=home_uid,
                    served_locally=True,
                    path=Path(nodes=(home_uid,), cost=0.0),
                )
            return decide()

        return decide_cluster

    def _failover_hook(self, span: Optional[SessionSpan]) -> Callable[[float], None]:
        """Session callback: one mid-stream failover completed."""

        def hook(stall_s: float) -> None:
            if span is not None:
                span.add(self.sim.now, "failover", stall_s=stall_s)

        return hook

    def _note_retry(self, wait_s: float) -> None:
        """Session callback: one cluster-boundary retry was taken."""
        self._m_retries.inc()

    def _note_recovery(self, outage_s: float) -> None:
        """Session callback: a blocked cluster boundary found a source."""
        self._m_recoveries.inc()
        self._m_recovery_s.observe(outage_s)

    def _span_decide(
        self, decide: Callable[[], VraDecision], span: SessionSpan
    ) -> Callable[[], VraDecision]:
        """Record each per-cluster VRA decision into the session span."""

        def wrapped() -> VraDecision:
            started = perf_counter()
            decision = decide()
            span.add(
                self.sim.now,
                "vra.decision",
                chosen_uid=decision.chosen_uid,
                cost=decision.cost,
                served_locally=decision.served_locally,
                epoch=list(self.routing_epoch()),
                latency_ms=(perf_counter() - started) * 1e3,
            )
            return decision

        return wrapped

    def _cluster_hook(
        self, span: Optional[SessionSpan]
    ) -> Callable[[ClusterRecord], None]:
        """Per-cluster delivery hook: counters plus span events."""

        def hook(record: ClusterRecord) -> None:
            self._m_clusters.inc()
            if record.switched:
                self._m_switches.inc()
            if self.breakers is not None:
                # A delivered cluster is the success signal that closes
                # half-open breakers along the serving path.
                link_names = (
                    [
                        link.name
                        for link in self.topology.path_links(record.path_nodes)
                    ]
                    if len(record.path_nodes) > 1
                    else []
                )
                self.breakers.path_success(record.server_uid, link_names)
            if span is None:
                return
            if record.switched:
                span.add(
                    record.start,
                    "switch",
                    cluster=record.index,
                    to_server=record.server_uid,
                )
            span.add(
                record.end,
                "cluster.delivered",
                index=record.index,
                server_uid=record.server_uid,
                rate_mbps=record.rate_mbps,
                size_mb=record.size_mb,
                qos_violated=record.qos_violated,
            )

        return hook

    def _qos_admissible(self, home_uid: str, title_id: str, video: VideoTitle) -> bool:
        """Strict-QoS check: can *some* candidate sustain the playback rate?

        Local serves are always admissible; remote candidates are checked
        against the current spare capacity along their least-cost paths.
        """
        try:
            decision = self.decide(home_uid, title_id)
        except ReproError:
            return False
        if decision.served_locally:
            return True
        paths = decision.candidate_paths or {decision.chosen_uid: decision.path}
        return any(
            self.flows.path_fits(list(path.nodes), video.bitrate_mbps)
            for path in paths.values()
        )

    def _fail_blocked(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan],
    ) -> None:
        """Terminal admission-rejection bookkeeping (shared by the
        reject-immediately and requeue-exhausted paths)."""
        request.mark_failed(
            "qos-blocked: no candidate path can sustain "
            f"{video.bitrate_mbps:.2f} Mbps"
        )
        self._m_blocked.inc()
        if span is not None:
            self._close_span(span, request.status.value)
        self.tracer.record(
            self.sim.now,
            "request.blocked",
            f"{request.client_id} at {request.home_uid}: {request.title_id} "
            f"blocked ({video.bitrate_mbps:.2f} Mbps unsustainable)",
            client_id=request.client_id,
            home_uid=request.home_uid,
            title_id=request.title_id,
        )
        if dma_stored:
            home_server.abort_download(request.title_id)

    def _requeue_request(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan] = None,
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Hold a strict-QoS-rejected request and re-attempt admission.

        Instead of dropping the request, it waits ``requeue_delay_s`` and
        re-checks admissibility up to ``requeue_attempts`` times (the
        crash-recovery-storm path: holders flapping back online usually
        re-admit the request on an early attempt).  Only after the budget
        is exhausted does the request fail with the ``qos-blocked`` reason.
        """
        session = self._build_session(request, video, home_server, dma_stored, span)
        self.sessions.append(session.record)
        process = Process(
            self.sim,
            self._requeue_body(request, video, home_server, dma_stored, span, session),
            name=f"requeued:{request.request_id}",
        )
        if self.supervisor is not None:
            self.supervisor.adopt(session, process)
        return request, session, process

    def _requeue_body(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan],
        session: StreamingSession,
    ):
        """The strict-QoS re-attempt loop (a sim-process generator),
        shared by :meth:`_requeue_request` and the delayed-admission path."""
        attempts = self.config.requeue_attempts
        delay = self.config.requeue_delay_s
        for attempt in range(1, attempts + 1):
            self._m_requeues.inc()
            self.tracer.record(
                self.sim.now,
                "request.requeued",
                f"{request.client_id} at {request.home_uid}: "
                f"{request.title_id} re-queued ({attempt}/{attempts})",
                client_id=request.client_id,
                home_uid=request.home_uid,
                title_id=request.title_id,
                attempt=attempt,
            )
            if span is not None:
                span.add(self.sim.now, "requeued", attempt=attempt, delay_s=delay)
            yield Delay(delay)
            if self._qos_admissible(request.home_uid, request.title_id, video):
                result = yield from session.run()
                return result
        self._fail_blocked(request, video, home_server, dma_stored, span)
        return session.record

    def _delay_request(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan],
        wait_s: float,
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Admit a queued request after its load-leveling delay.

        The strict-QoS admission check (when enabled) runs at *admit*
        time, not offer time — by then the flash crowd ahead of this
        request has already been leveled, so the check sees the state the
        session will actually start under.
        """
        session = self._build_session(request, video, home_server, dma_stored, span)
        session.record.admission_wait_s = wait_s
        self.sessions.append(session.record)
        queue = self.admission_queue

        def delayed():
            yield Delay(wait_s)
            queue.release()
            if self.config.strict_qos_admission and not self._qos_admissible(
                request.home_uid, request.title_id, video
            ):
                if self.config.requeue_attempts > 0:
                    result = yield from self._requeue_body(
                        request, video, home_server, dma_stored, span, session
                    )
                    return result
                self._fail_blocked(request, video, home_server, dma_stored, span)
                return session.record
            result = yield from session.run()
            return result

        process = Process(self.sim, delayed(), name=f"queued:{request.request_id}")
        if self.supervisor is not None:
            self.supervisor.adopt(session, process)
        return request, session, process

    def _shed_request(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan],
        slot: AdmissionSlot,
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Reject a request at the admission queue (overload shed)."""
        request.mark_failed(
            f"admission-shed: queue full ({slot.depth} waiting)"
        )
        if span is not None:
            self._close_span(span, request.status.value)
        self.tracer.record(
            self.sim.now,
            "request.shed",
            f"{request.client_id} at {request.home_uid}: {request.title_id} "
            f"shed (admission queue full, {slot.depth} waiting)",
            client_id=request.client_id,
            home_uid=request.home_uid,
            title_id=request.title_id,
            depth=slot.depth,
        )
        if dma_stored:
            home_server.abort_download(request.title_id)
        session = StreamingSession(
            sim=self.sim,
            request=request,
            video=video,
            cluster_mb=self.config.cluster_mb,
            decide=lambda: self.decide(request.home_uid, request.title_id),
            flows=self.flows,
            servers=self.servers,
        )
        self.sessions.append(session.record)

        def _already_shed():
            return session.record
            yield  # pragma: no cover - makes this a generator

        process = Process(self.sim, _already_shed(), name=f"shed:{request.request_id}")
        return request, session, process

    def _block_request(
        self,
        request: VideoRequest,
        video: VideoTitle,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan] = None,
    ) -> Tuple[VideoRequest, StreamingSession, Process]:
        """Reject a request at admission time (strict-QoS extension)."""
        self._fail_blocked(request, video, home_server, dma_stored, span)
        session = StreamingSession(
            sim=self.sim,
            request=request,
            video=video,
            cluster_mb=self.config.cluster_mb,
            decide=lambda: self.decide(request.home_uid, request.title_id),
            flows=self.flows,
            servers=self.servers,
        )
        self.sessions.append(session.record)

        def _already_blocked():
            return session.record
            yield  # pragma: no cover - makes this a generator

        process = Process(self.sim, _already_blocked(), name=f"blocked:{request.request_id}")
        return request, session, process

    def _on_session_finish(
        self,
        record: SessionRecord,
        home_server: VideoServer,
        dma_stored: bool,
        span: Optional[SessionSpan] = None,
    ) -> None:
        if dma_stored:
            if record.completed:
                home_server.commit_download(record.request.title_id)
            else:
                home_server.abort_download(record.request.title_id)
        if record.completed:
            self._m_completed.inc()
            self._m_startup.observe(record.startup_delay_s)
            self._m_stall.observe(record.stall_s)
        else:
            self._m_failed.inc()
        if span is not None:
            self._close_span(span, record.request.status.value)
        self.tracer.record(
            self.sim.now,
            "session.finished",
            f"{record.request.client_id}: {record.request.title_id} "
            f"{record.request.status.value}, sources {record.servers_used}, "
            f"{record.switch_count} switch(es)",
            client_id=record.request.client_id,
            title_id=record.request.title_id,
            status=record.request.status.value,
            servers_used=record.servers_used,
            switches=record.switch_count,
            startup_s=record.startup_delay_s,
            stall_s=record.stall_s,
        )

    def _server_hardware(self, node_uid: str) -> Dict[str, float]:
        """Effective hardware knobs for one node (uniform + overrides).

        Raises:
            ServiceError: If an override names an unknown knob.
        """
        hardware = {
            "disk_count": self.config.disk_count,
            "disk_capacity_mb": self.config.disk_capacity_mb,
            "max_streams": self.config.max_streams,
        }
        overrides = self.config.server_overrides.get(node_uid, {})
        unknown = set(overrides) - set(hardware)
        if unknown:
            raise ServiceError(
                f"unknown server override(s) for {node_uid!r}: {sorted(unknown)}"
            )
        hardware.update(overrides)
        hardware["disk_count"] = int(hardware["disk_count"])
        hardware["max_streams"] = int(hardware["max_streams"])
        return hardware

    def _resolve_client(self, client: Union[Client, str]) -> Client:
        if isinstance(client, Client):
            if client.client_id not in self._clients:
                raise ServiceError(
                    f"client {client.client_id!r} is not registered"
                )
            return client
        try:
            return self._clients[client]
        except KeyError:
            raise ServiceError(f"unknown client {client!r}") from None

    def _reported_used(self, link: Link) -> float:
        """Used bandwidth as last written by the SNMP statistics modules."""
        return self.database.link_entry(link.name).used_mbps

    def _guarded_used(self, link: Link) -> float:
        """Reported used bandwidth through the resilience interposers.

        An open link breaker makes the link look saturated (still
        routable — Dijkstra only deprioritises it); a stale sample keeps
        only ``1/factor`` of its reported headroom.  Links that are
        neither return the plain reported figure, bit-for-bit.
        """
        if self.breakers is not None and self.breakers.link_open(link.name):
            return link.capacity_mbps
        used = self.database.link_entry(link.name).used_mbps
        if self.staleness_guard is not None:
            return self.staleness_guard.adjusted_used(link, used)
        return used

    def _server_load(self, node_uid: str) -> float:
        """Stream-slot occupancy of a node's server, in [0, 1].

        The node-load term for the server-configuration VRA extension: a
        server sourcing many streams makes its adjacent links look worse.
        """
        server = self.servers[node_uid]
        return server.admission.active_count / server.admission.max_streams
