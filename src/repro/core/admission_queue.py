"""Queue-based load-leveling admission front-end for flash crowds.

A flash crowd lands hundreds of requests inside one simulated tick.  The
paper's service admits each one immediately, which is fine for decision
*correctness* (the VRA answers every request identically within a routing
epoch) but terrible for load shape: every session starts at once, every
stream slot is grabbed in the same instant, and the overload failure mode
is an avalanche of mid-decision rejections.

The :class:`AdmissionQueue` levels that burst instead.  Requests enter a
bounded deterministic FIFO that drains at a configured service rate,
quantised into ticks:

* up to ``rate_per_s * tick_s`` requests are admitted inside each tick
  (minimum one — the queue always makes progress);
* a request arriving while the current tick still has quota is admitted
  **immediately with zero delay** — the underloaded path is byte-identical
  to running without a queue;
* past the quota, requests are assigned to the next free tick, in arrival
  order, and wait ``admit_at - now`` simulated seconds;
* once ``capacity`` requests are waiting, further arrivals are **shed** —
  rejected outright with explicit telemetry rather than timing out later.

Everything is a pure function of the arrival sequence (times, order), so a
seeded replay produces the identical admit/delay/shed outcome for every
request — the property the determinism tests pin.

Requests admitted inside the same tick form a *batch cohort*: with the
decision cache on, the whole cohort for one ``(home, title)`` key resolves
against a single cached :class:`~repro.core.vra.VraDecision`, which is the
"batches of queued same-key requests are resolved with a single cached
decision" half of the flash-crowd story.  The queue tracks cohort sizes
and same-key coalescing counts so reports can show it happening.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.errors import ReproError
from repro.obs.phase import NO_PHASE_TIMER
from repro.obs.registry import MetricsRegistry

#: Default drain rate when the queue is enabled without an explicit rate.
DEFAULT_ADMISSION_RATE_PER_S = 100.0
#: Default drain-tick width (simulated seconds).
DEFAULT_ADMISSION_TICK_S = 1.0


@dataclass(frozen=True)
class AdmissionSlot:
    """Outcome of one :meth:`AdmissionQueue.offer`.

    Attributes:
        shed: True when the queue was full and the request was rejected.
        admit_at: Simulated time the request may start (equals the offer
            time for immediate admissions; meaningless when shed).
        wait_s: ``admit_at - now`` — zero for immediate admissions.
        depth: Requests waiting (delayed, not yet released) observed at
            offer time, before this request joined.
    """

    shed: bool
    admit_at: float
    wait_s: float
    depth: int


@dataclass
class AdmissionQueueStats:
    """Counters of one :class:`AdmissionQueue` (mirrors the RoutingCache
    stats style: a plain mutable dataclass plus ``as_dict``).

    Attributes:
        offered: Requests presented to the queue.
        queued: Requests accepted (immediate + delayed); ``offered -
            shed``.
        immediate: Accepted requests whose tick still had quota (zero
            delay — the byte-identical underload path).
        delayed: Accepted requests assigned to a later tick.
        shed: Requests rejected because ``capacity`` were already waiting.
        released: Delayed requests whose admission slot has fired.
        total_wait_s: Sum of assigned waits over delayed requests.
        max_wait_s: Largest single assigned wait.
        max_depth: High-water mark of simultaneously waiting requests.
        batches: Completed drain-tick cohorts (>= 1 admission each).
        max_batch: Largest completed cohort.
        coalesced: Same-key admissions beyond the first inside a cohort —
            each one is a request the decision cache answers for free.
    """

    offered: int = 0
    queued: int = 0
    immediate: int = 0
    delayed: int = 0
    shed: int = 0
    released: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0
    max_depth: int = 0
    batches: int = 0
    max_batch: int = 0
    coalesced: int = 0

    @property
    def mean_wait_s(self) -> float:
        """Mean assigned wait over delayed requests (0.0 when none)."""
        return self.total_wait_s / self.delayed if self.delayed else 0.0

    @property
    def shed_rate(self) -> float:
        """Shed requests over offered, in [0, 1] (0.0 before traffic)."""
        return self.shed / self.offered if self.offered else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for snapshots and reports."""
        return {
            "offered": self.offered,
            "queued": self.queued,
            "immediate": self.immediate,
            "delayed": self.delayed,
            "shed": self.shed,
            "released": self.released,
            "shed_rate": self.shed_rate,
            "mean_wait_s": self.mean_wait_s,
            "max_wait_s": self.max_wait_s,
            "max_depth": self.max_depth,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "coalesced": self.coalesced,
        }


class AdmissionQueue:
    """Bounded deterministic FIFO drained at a fixed service rate.

    Args:
        capacity: Maximum requests waiting at once; arrivals past it are
            shed.  Must be >= 1 (an off switch belongs to the caller —
            :class:`~repro.core.service.ServiceConfig` simply does not
            construct a queue when the knob is 0).
        rate_per_s: Drain rate; ``max(1, int(rate_per_s * tick_s))``
            admissions per tick.
        tick_s: Drain-tick width in simulated seconds.
    """

    def __init__(
        self,
        capacity: int,
        rate_per_s: float = DEFAULT_ADMISSION_RATE_PER_S,
        tick_s: float = DEFAULT_ADMISSION_TICK_S,
    ):
        if capacity < 1:
            raise ReproError(f"queue capacity must be >= 1, got {capacity!r}")
        if rate_per_s <= 0:
            raise ReproError(f"admission rate must be > 0, got {rate_per_s!r}")
        if tick_s <= 0:
            raise ReproError(f"admission tick must be > 0, got {tick_s!r}")
        self.capacity = capacity
        self.rate_per_s = rate_per_s
        self.tick_s = tick_s
        #: Admissions granted per tick; at least one so the queue always
        #: drains even at sub-1/tick rates.
        self.quota_per_tick = max(1, int(rate_per_s * tick_s + 1e-9))
        self.stats = AdmissionQueueStats()
        #: Wall-clock timer around offer() (obs.phase.admission_drain_ms);
        #: the service swaps in a live timer when phase profiling is on.
        self.phase_timer = NO_PHASE_TIMER
        self._cursor_tick = 0  # tick currently being filled
        self._cursor_used = 0  # admissions already assigned to it
        self._pending = 0  # delayed admissions not yet released
        self._cohort: Dict[Hashable, int] = {}
        self._cohort_tick: Optional[int] = None
        self._cohort_size = 0
        registry = MetricsRegistry(enabled=False)
        self._m_queued = registry.counter("admission.queued", subsystem="service")
        self._m_shed = registry.counter("admission.shed", subsystem="service")
        self._m_wait = registry.histogram("admission.wait_s", subsystem="service")
        self._m_batch = registry.histogram("admission.batch_size", subsystem="service")

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve the ``admission.*`` instruments against a registry."""
        self._m_queued = registry.counter(
            "admission.queued", subsystem="service",
            description="requests accepted by the admission queue",
        )
        self._m_shed = registry.counter(
            "admission.shed", subsystem="service",
            description="requests rejected because the queue was full",
        )
        self._m_wait = registry.histogram(
            "admission.wait_s", subsystem="service",
            description="load-leveling delay assigned per accepted request (s)",
        )
        self._m_batch = registry.histogram(
            "admission.batch_size", subsystem="service",
            description="admissions sharing one drain tick",
        )

    @property
    def depth(self) -> int:
        """Delayed admissions currently waiting for their slot."""
        return self._pending

    def offer(self, now: float, key: Hashable) -> AdmissionSlot:
        """Assign the next drain slot to a request, or shed it.

        Args:
            now: Current simulated time.
            key: The request's decision identity (``(home_uid,
                title_id)``) — used only for cohort coalescing stats.

        Returns:
            The :class:`AdmissionSlot`; the caller must invoke
            :meth:`release` when a *delayed* slot fires.
        """
        t_phase = self.phase_timer.start()
        try:
            return self._offer(now, key)
        finally:
            self.phase_timer.stop(t_phase)

    def _offer(self, now: float, key: Hashable) -> AdmissionSlot:
        self.stats.offered += 1
        if self._pending >= self.capacity:
            self.stats.shed += 1
            self._m_shed.inc()
            return AdmissionSlot(shed=True, admit_at=now, wait_s=0.0, depth=self._pending)
        tick_now = int(now / self.tick_s)
        if self._cursor_tick < tick_now:
            self._cursor_tick = tick_now
            self._cursor_used = 0
        if self._cursor_used >= self.quota_per_tick:
            self._cursor_tick += 1
            self._cursor_used = 0
        self._cursor_used += 1
        depth = self._pending
        self._note_cohort(self._cursor_tick, key)
        tick_start = self._cursor_tick * self.tick_s
        admit_at = tick_start if tick_start > now else now
        wait_s = admit_at - now
        self.stats.queued += 1
        self._m_queued.inc()
        self._m_wait.observe(wait_s)
        if wait_s > 0.0:
            self._pending += 1
            self.stats.delayed += 1
            self.stats.total_wait_s += wait_s
            if wait_s > self.stats.max_wait_s:
                self.stats.max_wait_s = wait_s
            if self._pending > self.stats.max_depth:
                self.stats.max_depth = self._pending
        else:
            self.stats.immediate += 1
        return AdmissionSlot(shed=False, admit_at=admit_at, wait_s=wait_s, depth=depth)

    def release(self) -> None:
        """A delayed admission slot fired; the request left the queue."""
        if self._pending > 0:
            self._pending -= 1
        self.stats.released += 1

    def finalize(self) -> None:
        """Flush the in-flight drain-tick cohort into the batch stats.

        Call at end of run (reports, benchmarks); cohorts otherwise only
        count once a later tick starts filling.
        """
        self._flush_cohort()
        self._cohort_tick = None

    def snapshot(self) -> Dict[str, float]:
        """Non-mutating stats view plus the live queue depth."""
        view = self.stats.as_dict()
        view["depth"] = self._pending
        return view

    # ------------------------------------------------------------------ #
    def _note_cohort(self, tick: int, key: Hashable) -> None:
        if self._cohort_tick != tick:
            self._flush_cohort()
            self._cohort_tick = tick
        self._cohort[key] = self._cohort.get(key, 0) + 1
        self._cohort_size += 1

    def _flush_cohort(self) -> None:
        if self._cohort_size:
            self.stats.batches += 1
            if self._cohort_size > self.stats.max_batch:
                self.stats.max_batch = self._cohort_size
            self.stats.coalesced += sum(
                count - 1 for count in self._cohort.values() if count > 1
            )
            self._m_batch.observe(float(self._cohort_size))
        self._cohort.clear()
        self._cohort_size = 0
