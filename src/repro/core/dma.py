"""The Disk Manipulation Algorithm (paper Figure 2).

The DMA runs on every video server.  Whenever the server begins downloading
(serving) a video it executes one pass of the Figure 2 loop body:

* video already on disk            -> give it a point;
* not on disk, array tolerates it  -> write it to the disks;
* otherwise                        -> give it a point, and if its points now
  exceed the least-popular cached video's points, delete that video and
  write the new one if the array now tolerates it.

Two faithful quirks of the pseudocode are preserved (and unit-tested):

1. A video stored because it fit immediately receives **no** point on that
   request — only already-cached or non-fitting videos are pointed.
2. The eviction branch deletes exactly one victim; if the newcomer still
   does not fit, the victim stays lost and the newcomer stays uncached.
   The ``evict_until_fits`` extension keeps evicting while the comparison
   still holds (see DESIGN.md X2 ablation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle


class DmaAction(enum.Enum):
    """What one DMA pass did."""

    #: Video was already cached; it received a point.
    HIT = "hit"
    #: Video fit immediately and was written to the disks.
    STORED = "stored"
    #: Video did not fit and did not out-score the least popular title.
    POINT_ONLY = "point_only"
    #: A victim was evicted and the video was written.
    REPLACED = "replaced"
    #: Victim(s) evicted, yet the video still did not fit.
    EVICTED_NOT_STORED = "evicted_not_stored"


@dataclass(frozen=True)
class DmaResult:
    """Outcome of one DMA pass.

    Attributes:
        title_id: The requested video.
        action: Which Figure 2 branch executed.
        points: The video's points after the pass.
        evicted: Title ids removed from the cache by this pass.
        cached: True if the video is on disk after the pass.
    """

    title_id: str
    action: DmaAction
    points: int
    evicted: Tuple[str, ...] = ()
    cached: bool = False


class DiskManipulationAlgorithm:
    """Figure 2, bound to one server's disk array.

    Args:
        array: The server's striped disk array.
        tracker: Popularity state; a fresh tracker is created if omitted.
        on_store: Callback invoked with a title id after it is written
            (the service advertises the title in the database here).
        on_evict: Callback invoked with a title id after it is deleted
            (the service withdraws the advertisement here).
        evict_until_fits: Extension — keep evicting successive least-popular
            victims while the newcomer still out-scores them and still does
            not fit.  Default False = exact Figure 2 behaviour.
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: Optional[Callable[[str], None]] = None,
        on_evict: Optional[Callable[[str], None]] = None,
        evict_until_fits: bool = False,
    ):
        self.array = array
        self.tracker = tracker if tracker is not None else PopularityTracker()
        self._on_store = on_store
        self._on_evict = on_evict
        self.evict_until_fits = evict_until_fits
        self.pass_count = 0
        #: Title ids exempt from eviction.  Figure 2 has no such notion —
        #: it will happily delete the only copy of a title in the whole
        #: network — so this set is empty unless the deployment opts into
        #: the seed-pinning extension (ServiceConfig.pin_seeded_titles).
        self.pinned: Set[str] = set()

    # ------------------------------------------------------------------ #
    def seed(self, video: VideoTitle) -> None:
        """Pre-load a video outside the DMA loop (service initialisation:
        "The video titles available on each VoD server").

        Raises:
            StorageError: If the video does not fit.
        """
        self.array.store(video)
        self.tracker.track(video.title_id)
        if self._on_store is not None:
            self._on_store(video.title_id)

    def on_request(self, video: VideoTitle) -> DmaResult:
        """Run one Figure 2 pass for a video the server begins serving."""
        self.pass_count += 1
        if self.array.has_video(video.title_id):
            points = self.tracker.give_point(video.title_id)
            return DmaResult(
                title_id=video.title_id, action=DmaAction.HIT, points=points, cached=True
            )

        if self.array.can_store(video):
            self._store(video)
            return DmaResult(
                title_id=video.title_id,
                action=DmaAction.STORED,
                points=self.tracker.points_of(video.title_id),
                cached=True,
            )

        points = self.tracker.give_point(video.title_id)
        evicted = self._try_replacement(video)
        if self.array.has_video(video.title_id):
            action = DmaAction.REPLACED
        elif evicted:
            action = DmaAction.EVICTED_NOT_STORED
        else:
            action = DmaAction.POINT_ONLY
        return DmaResult(
            title_id=video.title_id,
            action=action,
            points=points,
            evicted=tuple(evicted),
            cached=self.array.has_video(video.title_id),
        )

    # ------------------------------------------------------------------ #
    def cached_title_ids(self) -> List[str]:
        """Ids currently cached on the array, sorted."""
        return self.array.stored_title_ids()

    def points_of(self, title_id: str) -> int:
        """Current popularity points of a title."""
        return self.tracker.points_of(title_id)

    # ------------------------------------------------------------------ #
    def _try_replacement(self, video: VideoTitle) -> List[str]:
        """The eviction branch of Figure 2; returns evicted title ids."""
        evicted: List[str] = []
        while True:
            candidates = [
                tid for tid in self.array.stored_title_ids() if tid not in self.pinned
            ]
            victim = self.tracker.least_popular(candidates)
            if victim is None:
                break
            if not (self.tracker.points_of(video.title_id) > self.tracker.points_of(victim)):
                break
            self._evict(victim)
            evicted.append(victim)
            if self.array.can_store(video):
                self._store(video)
                break
            if not self.evict_until_fits:
                break  # exact Figure 2: one victim only
        return evicted

    def _store(self, video: VideoTitle) -> None:
        self.array.store(video)
        self.tracker.track(video.title_id)
        if self._on_store is not None:
            self._on_store(video.title_id)

    def _evict(self, title_id: str) -> None:
        self.array.remove(title_id)
        if self._on_evict is not None:
            self._on_evict(title_id)
