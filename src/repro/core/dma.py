"""Back-compat shim over :mod:`repro.placement` (deprecated module).

The Disk Manipulation Algorithm (paper Figure 2) now lives at
:class:`repro.placement.whole_title.WholeTitleDma`, one concrete policy
behind the :class:`~repro.placement.base.PlacementPolicy` interface.
This module keeps the historical names importable so existing code keeps
working unchanged:

* :class:`DmaAction` / :class:`DmaResult` are aliases of
  :class:`~repro.placement.base.PlacementAction` /
  :class:`~repro.placement.base.PlacementResult` — identity checks
  (``result.action is DmaAction.HIT``) and equality still hold.
* :class:`DiskManipulationAlgorithm` subclasses ``WholeTitleDma`` with
  the same constructor signature and behaviour, emitting a
  :class:`DeprecationWarning` on construction.

New code should import from :mod:`repro.placement` directly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

from repro.placement.base import PlacementAction, PlacementResult
from repro.placement.whole_title import WholeTitleDma
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker

#: Deprecated alias of :class:`repro.placement.base.PlacementAction`.
DmaAction = PlacementAction

#: Deprecated alias of :class:`repro.placement.base.PlacementResult`.
DmaResult = PlacementResult


class DiskManipulationAlgorithm(WholeTitleDma):
    """Deprecated name for :class:`repro.placement.whole_title.WholeTitleDma`.

    Same constructor, same Figure 2 behaviour.  A server running this
    shim also mirrors its ``placement.*`` telemetry under the historical
    ``dma.*`` names (see ``VideoServer.attach_metrics``).
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: Optional[Callable[[str], None]] = None,
        on_evict: Optional[Callable[[str], None]] = None,
        evict_until_fits: bool = False,
    ):
        warnings.warn(
            "DiskManipulationAlgorithm is deprecated; use "
            "repro.placement.WholeTitleDma (or ServiceConfig.placement / "
            "--placement=dma) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            array,
            tracker=tracker,
            on_store=on_store,
            on_evict=on_evict,
            evict_until_fits=evict_until_fits,
        )
